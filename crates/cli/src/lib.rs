//! # generic-cli
//!
//! A small command-line front end for the GENERIC HDC engine: train a
//! pipeline from a CSV file, persist it, classify new data, and cluster
//! unlabeled points — the workflow an edge-deployment prototype needs,
//! with no dependencies beyond the workspace crates.
//!
//! The binary is `generic`:
//!
//! ```console
//! $ generic train   --data train.csv --out model.ghdc --dim 4096 --epochs 20
//! $ generic predict --model model.ghdc --data test.csv --labeled
//! $ generic cluster --data points.csv --k 3
//! $ generic info    --model model.ghdc
//! $ generic serve   --ckpt-dir ckpts --data - --model model.ghdc --budget-us 500
//! ```
//!
//! CSV conventions: one sample per row, comma-separated numeric features;
//! with `--labeled` (and always for `train`) the **last column** is an
//! integer class label. Lines starting with `#` and blank lines are
//! ignored. With `--skip-bad-rows`, malformed rows are quarantined and
//! counted instead of aborting.
//!
//! `serve` is the long-lived-service entry point: it streams interleaved
//! learning/inference rows through the crash-safe
//! [`runtime`](generic_hdc::runtime) (atomic checkpoints in `--ckpt-dir`,
//! deadline-aware degraded inference under `--budget-us`, quarantine for
//! hostile input) and recovers from the newest intact checkpoint
//! generation on restart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod csv;

pub use args::{parse_args, CliCommand, CliError};

/// Runs the CLI against pre-split arguments, writing human-readable output
/// to `out`. Returns the process exit code.
pub fn run<W: std::io::Write>(argv: &[String], out: &mut W) -> i32 {
    match parse_args(argv) {
        Ok(command) => match commands::execute(command, out) {
            Ok(()) => 0,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}
