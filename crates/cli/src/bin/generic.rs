//! The `generic` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    ExitCode::from(u8::try_from(generic_cli::run(&argv, &mut stdout)).unwrap_or(1))
}
