//! Hand-rolled argument parsing (the CLI deliberately avoids external
//! dependencies; see DESIGN.md §4).

use std::fmt;
use std::path::PathBuf;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
generic — the GENERIC HDC learning engine

USAGE:
    generic train   --data <csv> --out <model> [--dim N] [--window N]
                    [--levels N] [--epochs N] [--seed N] [--no-id-binding]
    generic predict --model <model> --data <csv> [--labeled]
    generic cluster --data <csv> --k N [--dim N] [--window N] [--epochs N]
                    [--seed N] [--labeled]
    generic info    --model <model>

CSV format: one sample per row, numeric features separated by commas;
for `train` (and with --labeled) the last column is an integer label.
Lines starting with '#' and blank lines are ignored.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Train a pipeline and persist it.
    Train {
        /// Labeled training CSV.
        data: PathBuf,
        /// Output model path.
        out: PathBuf,
        /// Hypervector dimensionality.
        dim: usize,
        /// Sliding-window length.
        window: usize,
        /// Quantization levels.
        levels: usize,
        /// Retraining epochs.
        epochs: usize,
        /// Item-memory seed.
        seed: u64,
        /// Whether per-window id binding is enabled.
        id_binding: bool,
    },
    /// Classify samples with a persisted pipeline.
    Predict {
        /// Pipeline path.
        model: PathBuf,
        /// Input CSV.
        data: PathBuf,
        /// Whether the CSV carries labels (accuracy is reported).
        labeled: bool,
    },
    /// Cluster unlabeled samples.
    Cluster {
        /// Input CSV.
        data: PathBuf,
        /// Number of clusters.
        k: usize,
        /// Hypervector dimensionality.
        dim: usize,
        /// Sliding-window length.
        window: usize,
        /// Maximum clustering epochs.
        epochs: usize,
        /// Item-memory seed.
        seed: u64,
        /// Whether the CSV carries ground-truth labels (NMI is reported).
        labeled: bool,
    },
    /// Describe a persisted pipeline.
    Info {
        /// Pipeline path.
        model: PathBuf,
    },
    /// Print usage.
    Help,
}

/// An argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        CliError(message.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

struct Options {
    flags: Vec<String>,
    values: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = Vec::new();
        let mut values = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::new(format!("unexpected argument `{arg}`")));
            };
            match name {
                "labeled" | "no-id-binding" | "help" => flags.push(name.to_string()),
                "data" | "out" | "model" | "dim" | "window" | "levels" | "epochs" | "seed"
                | "k" => {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| CliError::new(format!("--{name} requires a value")))?;
                    values.push((name.to_string(), value.clone()));
                    i += 1;
                }
                _ => return Err(CliError::new(format!("unknown option `--{name}`"))),
            }
            i += 1;
        }
        Ok(Options { flags, values })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn required_path(&self, name: &str) -> Result<PathBuf, CliError> {
        self.value(name)
            .map(PathBuf::from)
            .ok_or_else(|| CliError::new(format!("missing required option --{name}")))
    }

    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("--{name} expects a number, got `{v}`"))),
        }
    }
}

/// Parses the argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first invalid argument.
pub fn parse_args(argv: &[String]) -> Result<CliCommand, CliError> {
    let Some((subcommand, rest)) = argv.split_first() else {
        return Err(CliError::new("missing subcommand"));
    };
    if subcommand == "--help" || subcommand == "help" {
        return Ok(CliCommand::Help);
    }
    let opts = Options::parse(rest)?;
    if opts.flag("help") {
        return Ok(CliCommand::Help);
    }
    match subcommand.as_str() {
        "train" => Ok(CliCommand::Train {
            data: opts.required_path("data")?,
            out: opts.required_path("out")?,
            dim: opts.numeric("dim", 4096)?,
            window: opts.numeric("window", 3)?,
            levels: opts.numeric("levels", 64)?,
            epochs: opts.numeric("epochs", 20)?,
            seed: opts.numeric("seed", 42)?,
            id_binding: !opts.flag("no-id-binding"),
        }),
        "predict" => Ok(CliCommand::Predict {
            model: opts.required_path("model")?,
            data: opts.required_path("data")?,
            labeled: opts.flag("labeled"),
        }),
        "cluster" => Ok(CliCommand::Cluster {
            data: opts.required_path("data")?,
            k: opts.numeric("k", 0).and_then(|k| {
                if k == 0 {
                    Err(CliError::new("missing required option --k"))
                } else {
                    Ok(k)
                }
            })?,
            dim: opts.numeric("dim", 4096)?,
            window: opts.numeric("window", 3)?,
            epochs: opts.numeric("epochs", 20)?,
            seed: opts.numeric("seed", 42)?,
            labeled: opts.flag("labeled"),
        }),
        "info" => Ok(CliCommand::Info {
            model: opts.required_path("model")?,
        }),
        other => Err(CliError::new(format!("unknown subcommand `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_train_with_defaults() {
        let cmd = parse_args(&argv(&["train", "--data", "a.csv", "--out", "m.ghdc"])).unwrap();
        assert_eq!(
            cmd,
            CliCommand::Train {
                data: "a.csv".into(),
                out: "m.ghdc".into(),
                dim: 4096,
                window: 3,
                levels: 64,
                epochs: 20,
                seed: 42,
                id_binding: true,
            }
        );
    }

    #[test]
    fn parses_overrides_and_flags() {
        let cmd = parse_args(&argv(&[
            "train",
            "--data",
            "a.csv",
            "--out",
            "m.ghdc",
            "--dim",
            "1024",
            "--no-id-binding",
            "--seed",
            "7",
        ]))
        .unwrap();
        match cmd {
            CliCommand::Train {
                dim,
                seed,
                id_binding,
                ..
            } => {
                assert_eq!(dim, 1024);
                assert_eq!(seed, 7);
                assert!(!id_binding);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["train", "--data"])).is_err());
        assert!(parse_args(&argv(&["train", "--wat", "1"])).is_err());
        assert!(parse_args(&argv(&["train", "--data", "a", "--out", "b", "--dim", "x"])).is_err());
        assert!(parse_args(&argv(&["cluster", "--data", "a.csv"])).is_err());
    }

    #[test]
    fn help_in_any_position() {
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), CliCommand::Help);
        assert_eq!(
            parse_args(&argv(&["predict", "--help"])).unwrap(),
            CliCommand::Help
        );
    }
}
