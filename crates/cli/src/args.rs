//! Hand-rolled argument parsing (the CLI deliberately avoids external
//! dependencies; see DESIGN.md §4).

use std::fmt;
use std::path::PathBuf;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
generic — the GENERIC HDC learning engine

USAGE:
    generic train   --data <csv> --out <model> [--dim N] [--window N]
                    [--levels N] [--epochs N] [--seed N] [--no-id-binding]
                    [--skip-bad-rows]
    generic predict --model <model> --data <csv> [--labeled] [--skip-bad-rows]
    generic cluster --data <csv> --k N [--dim N] [--window N] [--epochs N]
                    [--seed N] [--labeled] [--skip-bad-rows]
    generic info    --model <model>
    generic serve   --ckpt-dir <dir> --data <csv|-> [--model <model>]
                    [--budget-us N] [--checkpoint-every N] [--keep N]
                    [--batch-max N] [--shards N] [--dead-letter-out <csv>]
                    [--skip-bad-rows] [--registry <dir>] [--tenant-header]
                    [--listen <addr>]
    generic compress --model <pipeline> --data <csv> --target-accuracy A
                    [--max-bytes B] [--out <image>] [--holdout-every N]
                    [--epochs N] [--skip-bad-rows]
    generic conformance [--replay <token>] [--seed N] [--count N]
    generic registry history  --dir <dir> --tenant <name>
    generic registry rollback --dir <dir> --tenant <name> [--to N]
    generic registry gc       --dir <dir>
    generic registry fsck     --dir <dir>

CSV format: one sample per row, numeric features separated by commas;
for `train` (and with --labeled) the last column is an integer label.
Lines starting with '#' and blank lines are ignored. With
--skip-bad-rows, malformed rows are quarantined and counted instead of
aborting the command.

`serve` runs the crash-safe online-learning runtime over a stream
(`--data -` reads stdin): rows with one trailing extra column are
labeled learning samples, rows matching the model's feature count are
inference requests answered within the `--budget-us` deadline via
degraded dimension tiers. With --batch-max N > 1, consecutive inference
requests are coalesced into SIMD-scored micro-batches of up to N rows
(flushed whenever a labeled row or end-of-stream intervenes), preserving
per-row outputs. Progress is checkpointed atomically into
--ckpt-dir every --checkpoint-every samples (keeping --keep
generations); on startup the newest intact generation is recovered
unless --model bootstraps a fresh runtime. With --shards N > 0 the
stream is served by the supervised sharded runtime instead: N
panic-isolated worker shards score RCU model snapshots concurrently
behind a bounded queue with backpressure and deadline-aware admission
control, while a writer shard applies the labeled rows. On drain (end
of stream) quarantined rows are exported as CSV to --dead-letter-out
when given (this also works without --shards). With --registry <dir>
(requires --shards) the server additionally mmap-serves per-tenant
GHDC v3 models from <dir>/<tenant>.ghdc, zero-copy and LRU-cached;
with --tenant-header each inference row's leading cell is a tenant id
routing that row to its tenant's mapped model (learning rows keep
feeding the shared writer, tenant column stripped). With
--listen <addr> (requires --shards) the sharded server additionally
accepts framed TCP connections on <addr> (length-prefixed binary
frames with a CRC32 trailer; port 0 picks an ephemeral port, printed
on stdout as `listening on <addr>`); the CSV stream still drives the
writer, and the server drains when the stream ends.

`compress` shrinks a trained pipeline's model post-training: it scores
every dimension's class-margin saliency, sweeps pruned supports ×
quantization bit widths (recovering accuracy after each prune on the
training split), and picks the smallest GHDC v3 image whose held-out
accuracy reaches --target-accuracy (a fraction, e.g. 0.9) and fits
--max-bytes when given. Every --holdout-every'th CSV row forms the
held-out split; --epochs bounds the retrain-after-prune recovery. The
Pareto frontier is printed; with --out the chosen image is written,
ready to publish into a `serve --registry` directory (pruned images
carry their support mask and serve full-width queries unchanged).

`conformance` runs seeded differential scenarios through every
fast-kernel/scalar-oracle pair and reports divergences. With --replay it
re-executes one scenario from a reproducer token (as embedded in shrunk
fixture files); otherwise it fuzzes --count scenarios from --seed,
shrinking any divergence to a minimal reproducer.

`registry` administers the generational tenant ledger of a model
registry directory. `history` lists a tenant's retained generations
with sizes and the live marker; `rollback` re-points the tenant's live
generation to --to (or, without --to, the newest retained generation
below live) after re-validating the target image; `gc` removes staging
files and unreferenced images (requires the writer lock); `fsck`
validates every retained image and lists orphans, failing when a live
generation is missing or corrupt. Opening the directory runs the same
crash-recovery scan the serving registry performs.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Train a pipeline and persist it.
    Train {
        /// Labeled training CSV.
        data: PathBuf,
        /// Output model path.
        out: PathBuf,
        /// Hypervector dimensionality.
        dim: usize,
        /// Sliding-window length.
        window: usize,
        /// Quantization levels.
        levels: usize,
        /// Retraining epochs.
        epochs: usize,
        /// Item-memory seed.
        seed: u64,
        /// Whether per-window id binding is enabled.
        id_binding: bool,
        /// Quarantine malformed CSV rows instead of aborting.
        skip_bad_rows: bool,
    },
    /// Classify samples with a persisted pipeline.
    Predict {
        /// Pipeline path.
        model: PathBuf,
        /// Input CSV.
        data: PathBuf,
        /// Whether the CSV carries labels (accuracy is reported).
        labeled: bool,
        /// Quarantine malformed CSV rows instead of aborting.
        skip_bad_rows: bool,
    },
    /// Cluster unlabeled samples.
    Cluster {
        /// Input CSV.
        data: PathBuf,
        /// Number of clusters.
        k: usize,
        /// Hypervector dimensionality.
        dim: usize,
        /// Sliding-window length.
        window: usize,
        /// Maximum clustering epochs.
        epochs: usize,
        /// Item-memory seed.
        seed: u64,
        /// Whether the CSV carries ground-truth labels (NMI is reported).
        labeled: bool,
        /// Quarantine malformed CSV rows instead of aborting.
        skip_bad_rows: bool,
    },
    /// Describe a persisted pipeline.
    Info {
        /// Pipeline path.
        model: PathBuf,
    },
    /// Run the crash-safe online-learning runtime over a sample stream.
    Serve {
        /// Checkpoint directory (created if missing).
        ckpt_dir: PathBuf,
        /// Stream CSV path, or `-` for stdin.
        data: PathBuf,
        /// Optional pipeline to bootstrap from instead of recovering.
        model: Option<PathBuf>,
        /// Per-request inference budget in microseconds (0 = none).
        budget_us: u64,
        /// Labeled samples between automatic checkpoints.
        checkpoint_every: u64,
        /// Checkpoint generations kept on disk.
        keep: usize,
        /// Maximum unlabeled requests coalesced into one scoring batch
        /// (1 = per-row serving).
        batch_max: usize,
        /// Worker shards for the supervised sharded runtime (0 = the
        /// single-threaded streaming runtime).
        shards: usize,
        /// Export the quarantine buffer as CSV here on drain.
        dead_letter_out: Option<PathBuf>,
        /// Quarantine malformed CSV rows instead of aborting.
        skip_bad_rows: bool,
        /// Multi-tenant model registry directory (mmap-served GHDC v3
        /// models, one per tenant).
        registry: Option<PathBuf>,
        /// Leading CSV column carries a tenant id routing each row to
        /// its model in `--registry`.
        tenant_header: bool,
        /// Accept framed TCP connections on this address (requires
        /// `--shards`; port 0 = ephemeral).
        listen: Option<String>,
    },
    /// Compress a trained pipeline's model: saliency-guided pruning ×
    /// quantization with an accuracy/size Pareto search.
    Compress {
        /// Trained pipeline path.
        model: PathBuf,
        /// Labeled CSV the search trains and validates on.
        data: PathBuf,
        /// Minimum held-out accuracy the chosen model must reach
        /// (fraction in (0, 1]).
        target_accuracy: f64,
        /// Optional hard ceiling on the chosen image's byte size.
        max_bytes: Option<usize>,
        /// Write the chosen GHDC v3 image here.
        out: Option<PathBuf>,
        /// Every Nth row forms the held-out split.
        holdout_every: usize,
        /// Retrain-after-prune recovery epochs per support.
        epochs: usize,
        /// Quarantine malformed CSV rows instead of aborting.
        skip_bad_rows: bool,
    },
    /// Run differential conformance scenarios (or replay a reproducer).
    Conformance {
        /// Reproducer token to replay instead of fuzzing.
        replay: Option<String>,
        /// Base seed for fuzzed scenarios.
        seed: u64,
        /// Number of fuzzed scenarios.
        count: usize,
    },
    /// Administer a registry directory's generational tenant ledger.
    Registry {
        /// The ledger operation to perform.
        action: RegistryAction,
        /// Registry directory.
        dir: PathBuf,
        /// Tenant name (required by history and rollback).
        tenant: Option<String>,
        /// Explicit rollback target generation.
        to: Option<u64>,
    },
    /// Print usage.
    Help,
}

/// The `registry` subcommand's action verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryAction {
    /// List a tenant's retained generations.
    History,
    /// Re-point a tenant's live generation at an older one.
    Rollback,
    /// Remove staging files and unreferenced images.
    Gc,
    /// Validate every retained image and list orphans.
    Fsck,
}

/// An argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        CliError(message.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

struct Options {
    flags: Vec<String>,
    values: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = Vec::new();
        let mut values = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::new(format!("unexpected argument `{arg}`")));
            };
            match name {
                "labeled" | "no-id-binding" | "skip-bad-rows" | "tenant-header" | "help" => {
                    flags.push(name.to_string())
                }
                "data" | "out" | "model" | "dim" | "window" | "levels" | "epochs" | "seed"
                | "k" | "ckpt-dir" | "budget-us" | "checkpoint-every" | "keep" | "batch-max"
                | "shards" | "dead-letter-out" | "replay" | "count" | "registry" | "dir"
                | "tenant" | "to" | "listen" | "target-accuracy" | "max-bytes"
                | "holdout-every" => {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| CliError::new(format!("--{name} requires a value")))?;
                    values.push((name.to_string(), value.clone()));
                    i += 1;
                }
                _ => return Err(CliError::new(format!("unknown option `--{name}`"))),
            }
            i += 1;
        }
        Ok(Options { flags, values })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn required_path(&self, name: &str) -> Result<PathBuf, CliError> {
        self.value(name)
            .map(PathBuf::from)
            .ok_or_else(|| CliError::new(format!("missing required option --{name}")))
    }

    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("--{name} expects a number, got `{v}`"))),
        }
    }
}

/// Parses the argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first invalid argument.
pub fn parse_args(argv: &[String]) -> Result<CliCommand, CliError> {
    let Some((subcommand, rest)) = argv.split_first() else {
        return Err(CliError::new("missing subcommand"));
    };
    if subcommand == "--help" || subcommand == "help" {
        return Ok(CliCommand::Help);
    }
    if subcommand == "registry" {
        return parse_registry(rest);
    }
    let opts = Options::parse(rest)?;
    if opts.flag("help") {
        return Ok(CliCommand::Help);
    }
    match subcommand.as_str() {
        "train" => Ok(CliCommand::Train {
            data: opts.required_path("data")?,
            out: opts.required_path("out")?,
            dim: opts.numeric("dim", 4096)?,
            window: opts.numeric("window", 3)?,
            levels: opts.numeric("levels", 64)?,
            epochs: opts.numeric("epochs", 20)?,
            seed: opts.numeric("seed", 42)?,
            id_binding: !opts.flag("no-id-binding"),
            skip_bad_rows: opts.flag("skip-bad-rows"),
        }),
        "predict" => Ok(CliCommand::Predict {
            model: opts.required_path("model")?,
            data: opts.required_path("data")?,
            labeled: opts.flag("labeled"),
            skip_bad_rows: opts.flag("skip-bad-rows"),
        }),
        "cluster" => Ok(CliCommand::Cluster {
            data: opts.required_path("data")?,
            k: opts.numeric("k", 0).and_then(|k| {
                if k == 0 {
                    Err(CliError::new("missing required option --k"))
                } else {
                    Ok(k)
                }
            })?,
            dim: opts.numeric("dim", 4096)?,
            window: opts.numeric("window", 3)?,
            epochs: opts.numeric("epochs", 20)?,
            seed: opts.numeric("seed", 42)?,
            labeled: opts.flag("labeled"),
            skip_bad_rows: opts.flag("skip-bad-rows"),
        }),
        "info" => Ok(CliCommand::Info {
            model: opts.required_path("model")?,
        }),
        "compress" => {
            let target_accuracy: f64 = opts
                .value("target-accuracy")
                .ok_or_else(|| CliError::new("missing required option --target-accuracy"))?
                .parse()
                .map_err(|_| CliError::new("--target-accuracy expects a number"))?;
            if !(target_accuracy > 0.0 && target_accuracy <= 1.0) {
                return Err(CliError::new(
                    "--target-accuracy expects a fraction in (0, 1]",
                ));
            }
            let max_bytes = match opts.value("max-bytes") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| {
                    CliError::new(format!("--max-bytes expects a number, got `{v}`"))
                })?),
            };
            Ok(CliCommand::Compress {
                model: opts.required_path("model")?,
                data: opts.required_path("data")?,
                target_accuracy,
                max_bytes,
                out: opts.value("out").map(PathBuf::from),
                holdout_every: opts.numeric("holdout-every", 4).and_then(|n| {
                    if n < 2 {
                        Err(CliError::new("--holdout-every expects a number >= 2"))
                    } else {
                        Ok(n)
                    }
                })?,
                epochs: opts.numeric("epochs", 5)?,
                skip_bad_rows: opts.flag("skip-bad-rows"),
            })
        }
        "conformance" => Ok(CliCommand::Conformance {
            replay: opts.value("replay").map(str::to_owned),
            seed: opts.numeric("seed", 42)?,
            count: opts.numeric("count", 25)?,
        }),
        "serve" => Ok(CliCommand::Serve {
            ckpt_dir: opts.required_path("ckpt-dir")?,
            data: opts.required_path("data")?,
            model: opts.value("model").map(PathBuf::from),
            budget_us: opts.numeric("budget-us", 0)?,
            checkpoint_every: opts.numeric("checkpoint-every", 256)?,
            keep: opts.numeric("keep", 3)?,
            batch_max: opts.numeric("batch-max", 1).and_then(|b| {
                if b == 0 {
                    Err(CliError::new("--batch-max expects a positive number"))
                } else {
                    Ok(b)
                }
            })?,
            shards: opts.numeric("shards", 0)?,
            dead_letter_out: opts.value("dead-letter-out").map(PathBuf::from),
            skip_bad_rows: opts.flag("skip-bad-rows"),
            registry: opts.value("registry").map(PathBuf::from),
            tenant_header: opts.flag("tenant-header"),
            listen: opts.value("listen").map(str::to_owned),
        }),
        other => Err(CliError::new(format!("unknown subcommand `{other}`"))),
    }
}

/// Parses `registry <action> [options]`.
fn parse_registry(rest: &[String]) -> Result<CliCommand, CliError> {
    let Some((verb, rest)) = rest.split_first() else {
        return Err(CliError::new(
            "registry requires an action: history, rollback, gc, or fsck",
        ));
    };
    if verb == "--help" {
        return Ok(CliCommand::Help);
    }
    let action = match verb.as_str() {
        "history" => RegistryAction::History,
        "rollback" => RegistryAction::Rollback,
        "gc" => RegistryAction::Gc,
        "fsck" => RegistryAction::Fsck,
        other => {
            return Err(CliError::new(format!(
                "unknown registry action `{other}` (expected history, rollback, gc, or fsck)"
            )))
        }
    };
    let opts = Options::parse(rest)?;
    if opts.flag("help") {
        return Ok(CliCommand::Help);
    }
    let dir = opts.required_path("dir")?;
    let tenant = opts.value("tenant").map(str::to_owned);
    if matches!(action, RegistryAction::History | RegistryAction::Rollback) && tenant.is_none() {
        return Err(CliError::new(format!("registry {verb} requires --tenant")));
    }
    let to = match opts.value("to") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::new(format!("--to expects a number, got `{v}`")))?,
        ),
    };
    if to.is_some() && action != RegistryAction::Rollback {
        return Err(CliError::new("--to only applies to registry rollback"));
    }
    Ok(CliCommand::Registry {
        action,
        dir,
        tenant,
        to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_compress() {
        let cmd = parse_args(&argv(&[
            "compress",
            "--model",
            "m.ghdc",
            "--data",
            "d.csv",
            "--target-accuracy",
            "0.9",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            CliCommand::Compress {
                model: PathBuf::from("m.ghdc"),
                data: PathBuf::from("d.csv"),
                target_accuracy: 0.9,
                max_bytes: None,
                out: None,
                holdout_every: 4,
                epochs: 5,
                skip_bad_rows: false,
            }
        );
        let cmd = parse_args(&argv(&[
            "compress",
            "--model",
            "m.ghdc",
            "--data",
            "d.csv",
            "--target-accuracy",
            "0.85",
            "--max-bytes",
            "65536",
            "--out",
            "c.ghdc",
            "--holdout-every",
            "3",
            "--epochs",
            "2",
            "--skip-bad-rows",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            CliCommand::Compress {
                model: PathBuf::from("m.ghdc"),
                data: PathBuf::from("d.csv"),
                target_accuracy: 0.85,
                max_bytes: Some(65536),
                out: Some(PathBuf::from("c.ghdc")),
                holdout_every: 3,
                epochs: 2,
                skip_bad_rows: true,
            }
        );
    }

    #[test]
    fn compress_rejects_bad_options() {
        // Missing or out-of-range --target-accuracy.
        assert!(parse_args(&argv(&["compress", "--model", "m", "--data", "d"])).is_err());
        assert!(parse_args(&argv(&[
            "compress",
            "--model",
            "m",
            "--data",
            "d",
            "--target-accuracy",
            "1.5"
        ]))
        .is_err());
        assert!(parse_args(&argv(&[
            "compress",
            "--model",
            "m",
            "--data",
            "d",
            "--target-accuracy",
            "0"
        ]))
        .is_err());
        // A degenerate holdout split would leave nothing to train on.
        assert!(parse_args(&argv(&[
            "compress",
            "--model",
            "m",
            "--data",
            "d",
            "--target-accuracy",
            "0.9",
            "--holdout-every",
            "1"
        ]))
        .is_err());
    }

    #[test]
    fn parses_train_with_defaults() {
        let cmd = parse_args(&argv(&["train", "--data", "a.csv", "--out", "m.ghdc"])).unwrap();
        assert_eq!(
            cmd,
            CliCommand::Train {
                data: "a.csv".into(),
                out: "m.ghdc".into(),
                dim: 4096,
                window: 3,
                levels: 64,
                epochs: 20,
                seed: 42,
                id_binding: true,
                skip_bad_rows: false,
            }
        );
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let cmd = parse_args(&argv(&["serve", "--ckpt-dir", "ck", "--data", "-"])).unwrap();
        assert_eq!(
            cmd,
            CliCommand::Serve {
                ckpt_dir: "ck".into(),
                data: "-".into(),
                model: None,
                budget_us: 0,
                checkpoint_every: 256,
                keep: 3,
                batch_max: 1,
                shards: 0,
                dead_letter_out: None,
                skip_bad_rows: false,
                registry: None,
                tenant_header: false,
                listen: None,
            }
        );
        let cmd = parse_args(&argv(&[
            "serve",
            "--ckpt-dir",
            "ck",
            "--data",
            "s.csv",
            "--model",
            "m.ghdc",
            "--budget-us",
            "500",
            "--checkpoint-every",
            "32",
            "--keep",
            "5",
            "--batch-max",
            "64",
            "--shards",
            "4",
            "--dead-letter-out",
            "quarantine.csv",
            "--skip-bad-rows",
            "--registry",
            "tenants/",
            "--tenant-header",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap();
        match cmd {
            CliCommand::Serve {
                model,
                budget_us,
                checkpoint_every,
                keep,
                batch_max,
                shards,
                dead_letter_out,
                skip_bad_rows,
                registry,
                tenant_header,
                listen,
                ..
            } => {
                assert_eq!(model, Some("m.ghdc".into()));
                assert_eq!(budget_us, 500);
                assert_eq!(checkpoint_every, 32);
                assert_eq!(keep, 5);
                assert_eq!(batch_max, 64);
                assert_eq!(shards, 4);
                assert_eq!(dead_letter_out, Some("quarantine.csv".into()));
                assert!(skip_bad_rows);
                assert_eq!(registry, Some("tenants/".into()));
                assert!(tenant_header);
                assert_eq!(listen, Some("127.0.0.1:0".to_owned()));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // --ckpt-dir and --data are mandatory.
        assert!(parse_args(&argv(&["serve", "--data", "-"])).is_err());
        assert!(parse_args(&argv(&["serve", "--ckpt-dir", "ck"])).is_err());
        // --batch-max must be positive.
        assert!(parse_args(&argv(&[
            "serve",
            "--ckpt-dir",
            "ck",
            "--data",
            "-",
            "--batch-max",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_overrides_and_flags() {
        let cmd = parse_args(&argv(&[
            "train",
            "--data",
            "a.csv",
            "--out",
            "m.ghdc",
            "--dim",
            "1024",
            "--no-id-binding",
            "--seed",
            "7",
        ]))
        .unwrap();
        match cmd {
            CliCommand::Train {
                dim,
                seed,
                id_binding,
                ..
            } => {
                assert_eq!(dim, 1024);
                assert_eq!(seed, 7);
                assert!(!id_binding);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["train", "--data"])).is_err());
        assert!(parse_args(&argv(&["train", "--wat", "1"])).is_err());
        assert!(parse_args(&argv(&["train", "--data", "a", "--out", "b", "--dim", "x"])).is_err());
        assert!(parse_args(&argv(&["cluster", "--data", "a.csv"])).is_err());
    }

    #[test]
    fn parses_conformance() {
        assert_eq!(
            parse_args(&argv(&["conformance"])).unwrap(),
            CliCommand::Conformance {
                replay: None,
                seed: 42,
                count: 25,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "conformance",
                "--replay",
                "v1:seed=1:samples=2",
                "--seed",
                "9",
                "--count",
                "3",
            ]))
            .unwrap(),
            CliCommand::Conformance {
                replay: Some("v1:seed=1:samples=2".into()),
                seed: 9,
                count: 3,
            }
        );
        assert!(parse_args(&argv(&["conformance", "--count", "x"])).is_err());
        assert!(parse_args(&argv(&["conformance", "--replay"])).is_err());
    }

    #[test]
    fn parses_registry_actions() {
        assert_eq!(
            parse_args(&argv(&[
                "registry", "history", "--dir", "d", "--tenant", "acme"
            ]))
            .unwrap(),
            CliCommand::Registry {
                action: RegistryAction::History,
                dir: "d".into(),
                tenant: Some("acme".into()),
                to: None,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "registry", "rollback", "--dir", "d", "--tenant", "acme", "--to", "3",
            ]))
            .unwrap(),
            CliCommand::Registry {
                action: RegistryAction::Rollback,
                dir: "d".into(),
                tenant: Some("acme".into()),
                to: Some(3),
            }
        );
        assert_eq!(
            parse_args(&argv(&["registry", "fsck", "--dir", "d"])).unwrap(),
            CliCommand::Registry {
                action: RegistryAction::Fsck,
                dir: "d".into(),
                tenant: None,
                to: None,
            }
        );
        // Missing action, unknown action, missing --dir, missing
        // --tenant where required, --to outside rollback.
        assert!(parse_args(&argv(&["registry"])).is_err());
        assert!(parse_args(&argv(&["registry", "prune", "--dir", "d"])).is_err());
        assert!(parse_args(&argv(&["registry", "gc"])).is_err());
        assert!(parse_args(&argv(&["registry", "history", "--dir", "d"])).is_err());
        assert!(parse_args(&argv(&["registry", "gc", "--dir", "d", "--to", "1"])).is_err());
        assert!(parse_args(&argv(&[
            "registry", "rollback", "--dir", "d", "--tenant", "t", "--to", "x",
        ]))
        .is_err());
        assert_eq!(
            parse_args(&argv(&["registry", "--help"])).unwrap(),
            CliCommand::Help
        );
    }

    #[test]
    fn help_in_any_position() {
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), CliCommand::Help);
        assert_eq!(
            parse_args(&argv(&["predict", "--help"])).unwrap(),
            CliCommand::Help
        );
    }
}
