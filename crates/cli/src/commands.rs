//! Command implementations.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::metrics::normalized_mutual_information;
use generic_hdc::runtime::{
    CheckpointStore, MicroBatcher, OnlineRuntime, RetryPolicy, RuntimeConfig,
};
use generic_hdc::{
    HdcClustering, HdcClusteringSpec, HdcPipeline, Ledger, ModelRegistry, NetConfig, NetFrontend,
    RegistryConfig, RuntimeError, ServeConfig, ServeError, Server, SubmitError, Ticket,
};

use crate::args::{CliCommand, RegistryAction, USAGE};
use crate::csv;

type CommandResult = Result<(), Box<dyn Error>>;

/// Executes a parsed command, writing output to `out`.
///
/// # Errors
///
/// Returns a human-readable error for I/O failures, malformed CSV input,
/// or invalid learning configurations.
pub fn execute<W: Write>(command: CliCommand, out: &mut W) -> CommandResult {
    match command {
        CliCommand::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        CliCommand::Train {
            data,
            out: model_path,
            dim,
            window,
            levels,
            epochs,
            seed,
            id_binding,
            skip_bad_rows,
        } => {
            let report = csv::read_file_opts(&data, true, skip_bad_rows)?;
            report_skipped(&report, out)?;
            let parsed = report.data;
            let labels = parsed.labels.expect("labeled parse returns labels");
            let n_classes = csv::n_classes(&labels);
            if n_classes < 2 {
                return Err("training data must contain at least two classes".into());
            }
            let n_features = parsed.features[0].len();
            let spec = GenericEncoderSpec::new(dim, n_features)
                .with_window(window.min(n_features))
                .with_levels(levels)
                .with_id_binding(id_binding)
                .with_seed(seed);
            let pipeline = HdcPipeline::train(spec, &parsed.features, &labels, n_classes, epochs)?;
            let train_acc = pipeline.accuracy(&parsed.features, &labels)?;
            let file = File::create(&model_path)?;
            pipeline.write_to(BufWriter::new(file))?;
            writeln!(
                out,
                "trained on {} samples ({} features, {} classes): {:.1}% training accuracy",
                parsed.features.len(),
                n_features,
                n_classes,
                100.0 * train_acc
            )?;
            writeln!(out, "model written to {}", model_path.display())?;
            Ok(())
        }
        CliCommand::Predict {
            model,
            data,
            labeled,
            skip_bad_rows,
        } => {
            let pipeline = load_pipeline(&model)?;
            let report = csv::read_file_opts(&data, labeled, skip_bad_rows)?;
            report_skipped(&report, out)?;
            let parsed = report.data;
            let mut correct = 0usize;
            for (i, row) in parsed.features.iter().enumerate() {
                let prediction = pipeline.predict(row)?;
                writeln!(out, "{prediction}")?;
                if let Some(labels) = &parsed.labels {
                    if labels[i] == prediction {
                        correct += 1;
                    }
                }
            }
            if parsed.labels.is_some() {
                writeln!(
                    out,
                    "accuracy: {:.1}% ({correct}/{})",
                    100.0 * correct as f64 / parsed.features.len() as f64,
                    parsed.features.len()
                )?;
            }
            Ok(())
        }
        CliCommand::Cluster {
            data,
            k,
            dim,
            window,
            epochs,
            seed,
            labeled,
            skip_bad_rows,
        } => {
            let report = csv::read_file_opts(&data, labeled, skip_bad_rows)?;
            report_skipped(&report, out)?;
            let parsed = report.data;
            let n_features = parsed.features[0].len();
            let spec = GenericEncoderSpec::new(dim, n_features)
                .with_window(window.min(n_features))
                .with_seed(seed);
            let encoder = generic_hdc::encoding::GenericEncoder::from_data(spec, &parsed.features)?;
            use generic_hdc::encoding::Encoder;
            let encoded = encoder.encode_batch(&parsed.features)?;
            let (_, outcome) =
                HdcClustering::fit(&encoded, HdcClusteringSpec::new(k).with_max_epochs(epochs))?;
            for &assignment in &outcome.assignments {
                writeln!(out, "{assignment}")?;
            }
            writeln!(
                out,
                "clustered {} points into {k} groups in {} epochs (converged: {})",
                parsed.features.len(),
                outcome.epochs_run,
                outcome.converged
            )?;
            if let Some(labels) = &parsed.labels {
                let nmi = normalized_mutual_information(&outcome.assignments, labels)?;
                writeln!(out, "NMI vs provided labels: {nmi:.3}")?;
            }
            Ok(())
        }
        CliCommand::Info { model } => {
            let pipeline = load_pipeline(&model)?;
            let spec = pipeline.encoder().spec();
            writeln!(out, "GENERIC HDC pipeline: {}", model.display())?;
            writeln!(out, "  dimensions:  {}", spec.dim())?;
            writeln!(out, "  features:    {}", spec.n_features())?;
            writeln!(out, "  classes:     {}", pipeline.model().n_classes())?;
            writeln!(out, "  window:      {}", spec.window())?;
            writeln!(out, "  levels:      {}", spec.n_levels())?;
            writeln!(out, "  id binding:  {}", spec.id_binding())?;
            writeln!(out, "  seed:        {}", spec.seed())?;
            Ok(())
        }
        CliCommand::Serve {
            ckpt_dir,
            data,
            model,
            budget_us,
            checkpoint_every,
            keep,
            batch_max,
            skip_bad_rows,
            shards,
            dead_letter_out,
            registry,
            tenant_header,
            listen,
        } => serve(
            out,
            &ServeArgs {
                ckpt_dir,
                data,
                model,
                budget_us,
                checkpoint_every,
                keep,
                batch_max,
                skip_bad_rows,
                shards,
                dead_letter_out,
                registry,
                tenant_header,
                listen,
            },
        ),
        CliCommand::Compress {
            model,
            data,
            target_accuracy,
            max_bytes,
            out: image_out,
            holdout_every,
            epochs,
            skip_bad_rows,
        } => compress(
            out,
            &model,
            &data,
            target_accuracy,
            max_bytes,
            image_out.as_deref(),
            holdout_every,
            epochs,
            skip_bad_rows,
        ),
        CliCommand::Conformance {
            replay,
            seed,
            count,
        } => conformance(out, replay.as_deref(), seed, count),
        CliCommand::Registry {
            action,
            dir,
            tenant,
            to,
        } => registry_admin(out, action, &dir, tenant.as_deref(), to),
    }
}

/// The `compress` driver: encode the labeled CSV, split train/holdout,
/// run the accuracy/size Pareto search, report the frontier, and write
/// the chosen image when requested.
#[allow(clippy::too_many_arguments)]
fn compress<W: Write>(
    out: &mut W,
    model_path: &Path,
    data: &Path,
    target_accuracy: f64,
    max_bytes: Option<usize>,
    image_out: Option<&Path>,
    holdout_every: usize,
    epochs: usize,
    skip_bad_rows: bool,
) -> CommandResult {
    use generic_hdc::encoding::Encoder;

    let pipeline = load_pipeline(model_path)?;
    let report = csv::read_file_opts(data, true, skip_bad_rows)?;
    report_skipped(&report, out)?;
    let parsed = report.data;
    let labels = parsed.labels.expect("labeled parse returns labels");
    let encoded = pipeline.encoder().encode_batch(&parsed.features)?;

    // Deterministic split: every Nth row validates, the rest train.
    let mut train = Vec::new();
    let mut train_labels = Vec::new();
    let mut holdout = Vec::new();
    let mut holdout_labels = Vec::new();
    for (i, (hv, &label)) in encoded.into_iter().zip(&labels).enumerate() {
        if i % holdout_every == 0 {
            holdout.push(hv);
            holdout_labels.push(label);
        } else {
            train.push(hv);
            train_labels.push(label);
        }
    }
    if train.is_empty() || holdout.is_empty() {
        return Err("too few samples to split into train and holdout".into());
    }

    let opts = generic_hdc::CompressOptions {
        max_bytes,
        recover_epochs: epochs,
        n_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        ..generic_hdc::CompressOptions::new(target_accuracy)
    };
    let outcome = generic_hdc::pareto_search(
        pipeline.model(),
        &train,
        &train_labels,
        &holdout,
        &holdout_labels,
        &opts,
    )?;

    let baseline = {
        let full = generic_hdc::QuantizedModel::from_model(pipeline.model(), 8)?;
        let mut bytes = Vec::new();
        generic_hdc::io::write_packed(&full, &mut bytes)?;
        bytes.len()
    };
    writeln!(
        out,
        "searched {} candidates over {} samples ({} train / {} holdout)",
        outcome.points.len(),
        labels.len(),
        train_labels.len(),
        holdout_labels.len()
    )?;
    writeln!(out, "pareto frontier (size-ascending, non-dominated):")?;
    for p in &outcome.frontier {
        writeln!(
            out,
            "  {:>6} dims x {:>2} bit = {:>9} B  {:>6.2}% holdout accuracy",
            p.keep_dims,
            p.bit_width,
            p.bytes,
            100.0 * p.accuracy
        )?;
    }
    let chosen = &outcome.chosen_point;
    writeln!(
        out,
        "chosen: {} of {} dims x {} bit = {} B ({:.1}x smaller than the {} B full 8-bit \
         image), {:.2}% holdout accuracy",
        chosen.keep_dims,
        pipeline.model().dim(),
        chosen.bit_width,
        chosen.bytes,
        baseline as f64 / chosen.bytes as f64,
        baseline,
        100.0 * chosen.accuracy
    )?;
    if !outcome.meets_target {
        writeln!(
            out,
            "warning: no candidate met the {:.2}% target{}; emitted the most accurate one",
            100.0 * target_accuracy,
            max_bytes.map_or(String::new(), |b| format!(" within {b} B")),
        )?;
    }
    if let Some(path) = image_out {
        std::fs::write(path, outcome.chosen.image_bytes()?)?;
        writeln!(out, "compressed image written to {}", path.display())?;
    }
    Ok(())
}

/// The `registry` admin driver: history, rollback, gc, and fsck over a
/// ledger directory, reusing the serving registry's recovery scan.
fn registry_admin<W: Write>(
    out: &mut W,
    action: RegistryAction,
    dir: &Path,
    tenant: Option<&str>,
    to: Option<u64>,
) -> CommandResult {
    let (mut ledger, recovery) =
        Ledger::open(dir).map_err(|e| format!("cannot open registry {}: {e}", dir.display()))?;
    if recovery.repaired {
        writeln!(
            out,
            "recovery: manifest rebuilt from on-disk generations ({})",
            recovery.repair_reason.as_deref().unwrap_or("unknown cause")
        )?;
    }
    if recovery.swept_tmp > 0 {
        writeln!(
            out,
            "recovery: swept {} orphaned staging file(s)",
            recovery.swept_tmp
        )?;
    }
    match action {
        RegistryAction::History => {
            let tenant = tenant.expect("parser enforces --tenant");
            let records = ledger.history(tenant);
            if records.is_empty() {
                return Err(format!("tenant `{tenant}` has no retained generations").into());
            }
            writeln!(out, "tenant {tenant}: {} generation(s)", records.len())?;
            for record in records {
                let size = match record.bytes {
                    Some(bytes) => format!("{bytes} B"),
                    None => "missing".to_string(),
                };
                writeln!(
                    out,
                    "  g{:<4} {:>10}{}",
                    record.generation,
                    size,
                    if record.live { "  (live)" } else { "" }
                )?;
            }
            Ok(())
        }
        RegistryAction::Rollback => {
            let tenant = tenant.expect("parser enforces --tenant");
            if !ledger.try_acquire_writer()? {
                return Err("another process holds the registry writer lock".into());
            }
            let target = ledger.rollback_target(tenant, to).ok_or_else(|| match to {
                Some(gen) => format!("tenant `{tenant}` does not retain generation {gen}"),
                None => format!("tenant `{tenant}` has no generation older than live"),
            })?;
            Ledger::validate_image(&ledger.gen_path(tenant, target))
                .map_err(|reason| format!("generation {target} fails validation: {reason}"))?;
            ledger.commit_live(tenant, target)?;
            writeln!(out, "tenant {tenant}: live generation is now g{target}")?;
            Ok(())
        }
        RegistryAction::Gc => {
            let removed = ledger.gc()?;
            writeln!(out, "gc: removed {removed} unreferenced file(s)")?;
            Ok(())
        }
        RegistryAction::Fsck => {
            let report = ledger.fsck()?;
            for finding in &report.findings {
                let status = match &finding.status {
                    Ok(()) => "ok".to_string(),
                    Err(reason) => format!("BAD: {reason}"),
                };
                writeln!(
                    out,
                    "tenant {} g{}{}: {status}",
                    finding.tenant,
                    finding.generation,
                    if finding.live { " (live)" } else { "" }
                )?;
            }
            for orphan in &report.orphans {
                writeln!(out, "orphan: {}", orphan.display())?;
            }
            if report.findings.is_empty() && report.orphans.is_empty() {
                writeln!(out, "fsck: empty ledger, nothing to check")?;
            }
            if report.healthy() {
                writeln!(out, "fsck: healthy")?;
                Ok(())
            } else {
                Err("fsck: a live generation is missing or corrupt".into())
            }
        }
    }
}

/// The `conformance` driver: replay one reproducer token, or fuzz
/// `count` seeded scenarios, shrinking any divergence.
fn conformance<W: Write>(
    out: &mut W,
    replay: Option<&str>,
    seed: u64,
    count: usize,
) -> CommandResult {
    use generic_conformance::{run_scenario, shrink, Mutation, Scenario};

    if let Some(token) = replay {
        let scenario =
            Scenario::from_token(token).map_err(|e| format!("bad --replay token: {e}"))?;
        let report = run_scenario(&scenario);
        writeln!(out, "replaying {}", scenario.token())?;
        for (stage, checks) in &report.coverage {
            writeln!(out, "  {stage:<18} {checks} checks")?;
        }
        return match report.divergence {
            Some(divergence) => Err(format!("divergence reproduced: {divergence}").into()),
            None => {
                writeln!(out, "no divergence: every boundary agreed")?;
                Ok(())
            }
        };
    }

    let mut diverged = 0usize;
    let mut checks = 0u64;
    for i in 0..count {
        let scenario = Scenario::generate(seed.wrapping_add(i as u64));
        let report = run_scenario(&scenario);
        checks += report.total_checks();
        if let Some(divergence) = report.divergence {
            diverged += 1;
            writeln!(out, "DIVERGENCE in {}: {divergence}", scenario.token())?;
            let outcome = shrink(&scenario, Mutation::None, &divergence);
            writeln!(
                out,
                "  minimal reproducer: --replay \"{}\"",
                outcome.minimized.token()
            )?;
        }
    }
    writeln!(
        out,
        "{count} scenarios, {checks} boundary checks, {diverged} divergences"
    )?;
    if diverged > 0 {
        return Err(format!("{diverged} scenarios diverged").into());
    }
    Ok(())
}

/// Everything the `serve` subcommand parsed from the command line.
struct ServeArgs {
    ckpt_dir: PathBuf,
    data: PathBuf,
    model: Option<PathBuf>,
    budget_us: u64,
    checkpoint_every: u64,
    keep: usize,
    batch_max: usize,
    skip_bad_rows: bool,
    shards: usize,
    dead_letter_out: Option<PathBuf>,
    registry: Option<PathBuf>,
    tenant_header: bool,
    listen: Option<String>,
}

/// The `serve` driver: stream rows through an [`OnlineRuntime`].
///
/// Rows matching the model's feature count are inference requests
/// (answered within the budget via degraded tiers); rows with one extra
/// trailing column are labeled learning samples. Rows the runtime's
/// sanitizer refuses (NaN/Inf, out-of-range, bad label) are quarantined
/// and counted — the stream keeps flowing. Rows that are not numeric at
/// all abort unless `--skip-bad-rows` quarantines them too.
///
/// With `batch_max > 1`, consecutive inference requests are coalesced
/// into one SIMD-scored batch; labeled rows and end-of-stream flush the
/// queue first, so answers keep their per-row order and every request
/// is scored against the model state it would have seen unbatched.
///
/// With `--shards N > 0` the stream is served by the supervised sharded
/// runtime instead: N panic-isolated worker shards score concurrently
/// against RCU snapshots while a dedicated writer applies the labeled
/// rows; answers are printed in submission order once the stream ends.
fn serve<W: Write>(out: &mut W, args: &ServeArgs) -> CommandResult {
    if args.registry.is_some() && args.shards == 0 {
        return Err("--registry requires the sharded runtime (--shards N > 0)".into());
    }
    if args.tenant_header && args.registry.is_none() {
        return Err("--tenant-header requires --registry".into());
    }
    if args.listen.is_some() && args.shards == 0 {
        return Err("--listen requires the sharded runtime (--shards N > 0)".into());
    }
    let store = CheckpointStore::open(&args.ckpt_dir, args.keep, RetryPolicy::default())?;
    let config = RuntimeConfig {
        checkpoint_every: args.checkpoint_every,
        ..RuntimeConfig::default()
    };
    let runtime = match args.model.as_deref() {
        Some(path) => {
            let pipeline = load_pipeline(path)?;
            let mut rt = OnlineRuntime::new(pipeline, store, config)?;
            rt.checkpoint()?; // make the bootstrap durable before serving
            writeln!(
                out,
                "bootstrapped from {} (generation {})",
                path.display(),
                rt.generation()
            )?;
            rt
        }
        None => {
            let (rt, report) = OnlineRuntime::recover(store, config)?;
            writeln!(
                out,
                "recovered generation {} ({} samples learned) in {:.1} ms; \
                 scanned {} generation(s), rejected {}",
                rt.generation(),
                rt.seen(),
                report.elapsed.as_secs_f64() * 1e3,
                report.scanned,
                report.rejected.len()
            )?;
            rt
        }
    };
    if args.shards > 0 {
        serve_sharded(out, runtime, args)
    } else {
        serve_stream(out, runtime, args)
    }
}

/// Single-threaded streaming serve: one runtime answers and learns in
/// row order, micro-batching consecutive inference requests.
fn serve_stream<W: Write>(
    out: &mut W,
    mut runtime: OnlineRuntime,
    args: &ServeArgs,
) -> CommandResult {
    let budget = (args.budget_us > 0).then(|| Duration::from_micros(args.budget_us));
    let n_features = runtime.pipeline().encoder().spec().n_features();
    let text = read_stream(&args.data)?;
    let mut bad_rows = 0u64;
    let mut batcher = MicroBatcher::new(args.batch_max);
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_stream_row(line, n_features) {
            Ok(StreamRow::Infer(features)) => {
                if batcher.push(features) {
                    drain_batch(&mut batcher, &mut runtime, budget, out)?;
                }
            }
            Ok(StreamRow::Learn(features, label)) => {
                // A labeled row is an ordering barrier: answer every
                // queued request before learning mutates the model.
                drain_batch(&mut batcher, &mut runtime, budget, out)?;
                match runtime.learn(&features, label) {
                    Ok(_) | Err(RuntimeError::Rejected(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            Err(message) => {
                if !args.skip_bad_rows {
                    return Err(format!("line {}: {message}", line_no + 1).into());
                }
                bad_rows += 1;
            }
        }
    }
    drain_batch(&mut batcher, &mut runtime, budget, out)?;

    runtime.checkpoint()?;
    if let Some(path) = &args.dead_letter_out {
        let letters: Vec<_> = runtime.dead_letters().cloned().collect();
        export_dead_letters(out, path, &letters)?;
    }
    let stats = runtime.stats();
    writeln!(out, "stream done: generation {}", runtime.generation())?;
    writeln!(
        out,
        "  learned {} (corrected {}, held out {}), quarantined {}, bad rows {}",
        stats.learned, stats.corrected, stats.held_out, stats.quarantined, bad_rows
    )?;
    writeln!(
        out,
        "  answered {}/{} (degraded {}, deadline misses {}, rejected {})",
        stats.answered, stats.infer_requests, stats.degraded, stats.deadline_misses, stats.rejected
    )?;
    writeln!(
        out,
        "  checkpoints {}, retrains {}, rollbacks {}",
        stats.checkpoints, stats.retrains, stats.rollbacks
    )?;
    let ladder = runtime.ladder();
    let tiers: Vec<String> = ladder
        .tier_dims()
        .iter()
        .zip(ladder.hits())
        .map(|(dims, hits)| format!("{dims}d:{hits}"))
        .collect();
    writeln!(out, "  tier hits: {}", tiers.join(" "))?;
    Ok(())
}

/// Sharded serve: submit the whole stream through the supervised
/// [`Server`], honoring backpressure (a full work queue blocks the
/// submitter, it never drops), then wait for every ticket in submission
/// order so answers print deterministically, and drain.
///
/// Unlike the single-threaded path, labeled rows are *not* strict
/// ordering barriers here: the writer applies them concurrently and
/// readers pick up the new model at the next published snapshot.
fn serve_sharded<W: Write>(out: &mut W, runtime: OnlineRuntime, args: &ServeArgs) -> CommandResult {
    let budget = (args.budget_us > 0).then(|| Duration::from_micros(args.budget_us));
    let n_features = runtime.pipeline().encoder().spec().n_features();
    let config = ServeConfig {
        shards: args.shards,
        batch_max: args.batch_max.max(1),
        ..ServeConfig::default()
    };
    let registry = match &args.registry {
        Some(dir) => {
            let dim = runtime.pipeline().model().dim();
            let registry = std::sync::Arc::new(ModelRegistry::open(
                dir,
                RegistryConfig {
                    dim,
                    ..RegistryConfig::default()
                },
            )?);
            writeln!(
                out,
                "registry {} ({} tenant(s) on disk)",
                dir.display(),
                registry.tenants()?.len()
            )?;
            Some(registry)
        }
        None => None,
    };
    let server = Server::start_with_registry(runtime, config, registry.clone())?;
    let handle = server.handle();

    // The TCP front-end comes up *before* the CSV stream is consumed, so
    // with `--data -` the process serves sockets while it waits for rows
    // on stdin; closing stdin ends the session and drains everything.
    let frontend = match &args.listen {
        Some(addr) => {
            let frontend = NetFrontend::bind(addr, handle.clone(), NetConfig::default())?;
            writeln!(out, "listening on {}", frontend.local_addr())?;
            out.flush()?;
            Some(frontend)
        }
        None => None,
    };
    let text = read_stream(&args.data)?;

    let mut bad_rows = 0u64;
    let mut shed = 0u64;
    let mut quarantined_submit = 0u64;
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut tenant_refused = 0u64;
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // With --tenant-header the leading cell names the tenant whose
        // mapped model serves this row; the remaining cells are the
        // ordinary stream row.
        let (tenant, row) = if args.tenant_header {
            match line.split_once(',') {
                Some((t, rest)) => (Some(t.trim()), rest),
                None => (Some(line), ""),
            }
        } else {
            (None, line)
        };
        match parse_stream_row(row, n_features) {
            Ok(StreamRow::Infer(features)) => {
                loop {
                    let submitted = match tenant {
                        Some(t) => handle.submit_tenant(t, features.clone(), budget),
                        None => handle.submit(features.clone(), budget),
                    };
                    match submitted {
                        Ok(ticket) => {
                            tickets.push(ticket);
                            break;
                        }
                        Err(SubmitError::QueueFull) => {
                            // Backpressure: the stream source waits
                            // rather than dropping the request.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(SubmitError::DeadlineHopeless { .. }) => {
                            shed += 1;
                            break;
                        }
                        Err(SubmitError::Rejected(_)) => {
                            quarantined_submit += 1;
                            break;
                        }
                        Err(SubmitError::TenantUnavailable { .. }) => {
                            // An unknown or quarantined tenant sheds its
                            // own rows; the stream keeps flowing.
                            tenant_refused += 1;
                            break;
                        }
                        Err(e @ (SubmitError::Unavailable | SubmitError::ShuttingDown)) => {
                            return Err(format!("line {}: {e}", line_no + 1).into());
                        }
                    }
                }
            }
            Ok(StreamRow::Learn(features, label)) => loop {
                match handle.submit_learn(features.clone(), label) {
                    Ok(()) => break,
                    Err(SubmitError::QueueFull) => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(SubmitError::Rejected(_)) => {
                        quarantined_submit += 1;
                        break;
                    }
                    Err(e) => return Err(format!("line {}: {e}", line_no + 1).into()),
                }
            },
            Err(message) => {
                if !args.skip_bad_rows {
                    return Err(format!("line {}: {message}", line_no + 1).into());
                }
                bad_rows += 1;
            }
        }
    }

    // Redeem tickets in submission order so output is deterministic.
    let mut canceled = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(answer) => writeln!(out, "{}", answer.label)?,
            Err(ServeError::Rejected(_)) => {}
            Err(ServeError::Canceled) => canceled += 1,
        }
    }

    // Close the socket front-end (clients get a final GOODBYE frame)
    // before the drain tears down the shard queues beneath it.
    if let Some(frontend) = frontend {
        let net = frontend.shutdown();
        writeln!(
            out,
            "  net: {} connection(s), {} frame(s) in, answered {}, refused {}, malformed {}",
            net.connections, net.frames_received, net.answered, net.refused, net.malformed
        )?;
        if net.latency.count > 0 {
            writeln!(
                out,
                "  net latency: p50 {} us, p99 {} us, p999 {} us, max {} us",
                net.latency.p50_us, net.latency.p99_us, net.latency.p999_us, net.latency.max_us
            )?;
        }
    }

    let report = server.drain()?;
    if let Some(path) = &args.dead_letter_out {
        export_dead_letters(out, path, &report.dead_letters)?;
    }
    write_drain_report(out, &report, bad_rows, shed, quarantined_submit, canceled)?;
    if let Some(registry) = &registry {
        let stats = registry.stats();
        writeln!(
            out,
            "  registry: hits {}, cold loads {}, evictions {}, swaps {}, \
             quarantined {}, refused rows {}, resident {} B",
            stats.hits,
            stats.cold_loads,
            stats.evictions,
            stats.swaps,
            stats.quarantines,
            tenant_refused,
            registry.resident_bytes()
        )?;
        writeln!(
            out,
            "  ledger: publish retries {}, rollbacks {}, recoveries {}, tmp sweeps {}",
            stats.publish_retries, stats.rollbacks, stats.recoveries, stats.tmp_sweeps
        )?;
    }
    Ok(())
}

/// Prints the post-drain accounting for the sharded path in the same
/// style as the single-threaded stream summary.
fn write_drain_report<W: Write>(
    out: &mut W,
    report: &generic_hdc::DrainReport,
    bad_rows: u64,
    shed: u64,
    quarantined_submit: u64,
    canceled: u64,
) -> CommandResult {
    let serve = &report.serve;
    let writer = &report.writer;
    let workers = &report.workers;
    writeln!(
        out,
        "drained: generation {} (final checkpoint {})",
        report.generation,
        if report.final_checkpoint_ok {
            "ok"
        } else {
            "FAILED"
        }
    )?;
    writeln!(
        out,
        "  admitted {}/{} (queue-full {}, deadline-shed {}, malformed {}, bad rows {})",
        serve.admitted,
        serve.submitted,
        serve.rejected_queue_full,
        serve.rejected_deadline + shed,
        serve.rejected_malformed + quarantined_submit,
        bad_rows
    )?;
    writeln!(
        out,
        "  answered {} (degraded {}, deadline misses {}, canceled {})",
        workers.answered, workers.degraded, workers.deadline_misses, canceled
    )?;
    writeln!(
        out,
        "  learned {} (corrected {}, held out {}), quarantined {}, checkpoints {} (retries {})",
        writer.learned,
        writer.corrected,
        writer.held_out,
        writer.quarantined,
        writer.checkpoints,
        writer.checkpoint_retries
    )?;
    writeln!(
        out,
        "  supervision: panics {}, restarts {}, requeued {}, steals {}, circuit opens {}, \
         writer stalls {}",
        serve.shard_panics,
        serve.shard_restarts,
        serve.requeued,
        workers.steals,
        serve.circuit_opens,
        serve.writer_stalls
    )?;
    Ok(())
}

/// Writes the quarantine buffer as a dead-letter CSV (round-trippable
/// via `read_dead_letters_csv`).
fn export_dead_letters<W: Write>(
    out: &mut W,
    path: &Path,
    letters: &[generic_hdc::runtime::DeadLetter],
) -> CommandResult {
    let file = File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    let mut writer = BufWriter::new(file);
    let n = generic_hdc::runtime::write_dead_letters_csv(&mut writer, letters)?;
    writer.flush()?;
    writeln!(out, "exported {n} dead letter(s) to {}", path.display())?;
    Ok(())
}

/// Flushes the micro-batch scheduler, printing answers in push order.
/// Per-row soft failures (quarantined or shed requests) are silent,
/// exactly as in unbatched serving; hard runtime errors abort.
fn drain_batch<W: Write>(
    batcher: &mut MicroBatcher,
    runtime: &mut OnlineRuntime,
    budget: Option<Duration>,
    out: &mut W,
) -> CommandResult {
    for result in batcher.flush(runtime, budget) {
        match result {
            Ok(answer) => writeln!(out, "{}", answer.label)?,
            Err(RuntimeError::Rejected(_) | RuntimeError::DeadlineShed { .. }) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// One parsed stream row for `serve`.
enum StreamRow {
    /// An inference request (feature-count cells).
    Infer(Vec<f64>),
    /// A labeled learning sample (feature-count + 1 cells).
    Learn(Vec<f64>, usize),
}

/// Splits a stream row into features (and a trailing label when
/// present). Non-finite values pass through on purpose — the runtime's
/// sanitizer quarantines them, which is the behavior under test.
fn parse_stream_row(line: &str, n_features: usize) -> Result<StreamRow, String> {
    let cells: Vec<&str> = line.split(',').map(str::trim).collect();
    if cells.len() == n_features + 1 {
        let label: usize = cells[n_features].parse().map_err(|_| {
            format!(
                "label `{}` is not a non-negative integer",
                cells[n_features]
            )
        })?;
        let features = parse_cells(&cells[..n_features])?;
        Ok(StreamRow::Learn(features, label))
    } else if cells.len() == n_features {
        Ok(StreamRow::Infer(parse_cells(&cells)?))
    } else {
        Err(format!(
            "expected {n_features} or {} columns, found {}",
            n_features + 1,
            cells.len()
        ))
    }
}

fn parse_cells(cells: &[&str]) -> Result<Vec<f64>, String> {
    cells
        .iter()
        .map(|cell| {
            cell.parse()
                .map_err(|_| format!("`{cell}` is not a number"))
        })
        .collect()
}

/// Reads the stream source: a file path, or stdin for `-`.
fn read_stream(data: &Path) -> Result<String, Box<dyn Error>> {
    if data.as_os_str() == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        Ok(std::fs::read_to_string(data)
            .map_err(|e| format!("cannot read {}: {e}", data.display()))?)
    }
}

fn report_skipped<W: Write>(report: &csv::CsvReport, out: &mut W) -> std::io::Result<()> {
    if !report.skipped.is_empty() {
        writeln!(
            out,
            "skipped {} malformed row(s); first: {}",
            report.skipped.len(),
            report.skipped[0]
        )?;
    }
    Ok(())
}

fn load_pipeline(path: &Path) -> Result<HdcPipeline, Box<dyn Error>> {
    let file =
        File::open(path).map_err(|e| format!("cannot open model {}: {e}", path.display()))?;
    Ok(HdcPipeline::read_from(BufReader::new(file))?)
}
