//! Command implementations.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::metrics::normalized_mutual_information;
use generic_hdc::{HdcClustering, HdcClusteringSpec, HdcPipeline};

use crate::args::{CliCommand, USAGE};
use crate::csv;

type CommandResult = Result<(), Box<dyn Error>>;

/// Executes a parsed command, writing output to `out`.
///
/// # Errors
///
/// Returns a human-readable error for I/O failures, malformed CSV input,
/// or invalid learning configurations.
pub fn execute<W: Write>(command: CliCommand, out: &mut W) -> CommandResult {
    match command {
        CliCommand::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        CliCommand::Train {
            data,
            out: model_path,
            dim,
            window,
            levels,
            epochs,
            seed,
            id_binding,
        } => {
            let parsed = csv::read_file(&data, true)?;
            let labels = parsed.labels.expect("labeled parse returns labels");
            let n_classes = csv::n_classes(&labels);
            if n_classes < 2 {
                return Err("training data must contain at least two classes".into());
            }
            let n_features = parsed.features[0].len();
            let spec = GenericEncoderSpec::new(dim, n_features)
                .with_window(window.min(n_features))
                .with_levels(levels)
                .with_id_binding(id_binding)
                .with_seed(seed);
            let pipeline = HdcPipeline::train(spec, &parsed.features, &labels, n_classes, epochs)?;
            let train_acc = pipeline.accuracy(&parsed.features, &labels)?;
            let file = File::create(&model_path)?;
            pipeline.write_to(BufWriter::new(file))?;
            writeln!(
                out,
                "trained on {} samples ({} features, {} classes): {:.1}% training accuracy",
                parsed.features.len(),
                n_features,
                n_classes,
                100.0 * train_acc
            )?;
            writeln!(out, "model written to {}", model_path.display())?;
            Ok(())
        }
        CliCommand::Predict {
            model,
            data,
            labeled,
        } => {
            let pipeline = load_pipeline(&model)?;
            let parsed = csv::read_file(&data, labeled)?;
            let mut correct = 0usize;
            for (i, row) in parsed.features.iter().enumerate() {
                let prediction = pipeline.predict(row)?;
                writeln!(out, "{prediction}")?;
                if let Some(labels) = &parsed.labels {
                    if labels[i] == prediction {
                        correct += 1;
                    }
                }
            }
            if parsed.labels.is_some() {
                writeln!(
                    out,
                    "accuracy: {:.1}% ({correct}/{})",
                    100.0 * correct as f64 / parsed.features.len() as f64,
                    parsed.features.len()
                )?;
            }
            Ok(())
        }
        CliCommand::Cluster {
            data,
            k,
            dim,
            window,
            epochs,
            seed,
            labeled,
        } => {
            let parsed = csv::read_file(&data, labeled)?;
            let n_features = parsed.features[0].len();
            let spec = GenericEncoderSpec::new(dim, n_features)
                .with_window(window.min(n_features))
                .with_seed(seed);
            let encoder = generic_hdc::encoding::GenericEncoder::from_data(spec, &parsed.features)?;
            use generic_hdc::encoding::Encoder;
            let encoded = encoder.encode_batch(&parsed.features)?;
            let (_, outcome) =
                HdcClustering::fit(&encoded, HdcClusteringSpec::new(k).with_max_epochs(epochs))?;
            for &assignment in &outcome.assignments {
                writeln!(out, "{assignment}")?;
            }
            writeln!(
                out,
                "clustered {} points into {k} groups in {} epochs (converged: {})",
                parsed.features.len(),
                outcome.epochs_run,
                outcome.converged
            )?;
            if let Some(labels) = &parsed.labels {
                let nmi = normalized_mutual_information(&outcome.assignments, labels)?;
                writeln!(out, "NMI vs provided labels: {nmi:.3}")?;
            }
            Ok(())
        }
        CliCommand::Info { model } => {
            let pipeline = load_pipeline(&model)?;
            let spec = pipeline.encoder().spec();
            writeln!(out, "GENERIC HDC pipeline: {}", model.display())?;
            writeln!(out, "  dimensions:  {}", spec.dim())?;
            writeln!(out, "  features:    {}", spec.n_features())?;
            writeln!(out, "  classes:     {}", pipeline.model().n_classes())?;
            writeln!(out, "  window:      {}", spec.window())?;
            writeln!(out, "  levels:      {}", spec.n_levels())?;
            writeln!(out, "  id binding:  {}", spec.id_binding())?;
            writeln!(out, "  seed:        {}", spec.seed())?;
            Ok(())
        }
    }
}

fn load_pipeline(path: &std::path::Path) -> Result<HdcPipeline, Box<dyn Error>> {
    let file =
        File::open(path).map_err(|e| format!("cannot open model {}: {e}", path.display()))?;
    Ok(HdcPipeline::read_from(BufReader::new(file))?)
}
