//! Minimal CSV reading for numeric feature matrices.

use std::fmt;
use std::path::Path;

/// A parsed numeric CSV: features and (optionally) trailing integer
/// labels.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvData {
    /// Feature rows.
    pub features: Vec<Vec<f64>>,
    /// Labels, present only when parsed with `labeled = true`.
    pub labels: Option<Vec<usize>>,
}

/// A CSV parsing failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    message: String,
}

impl CsvError {
    fn new(message: impl Into<String>) -> Self {
        CsvError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CsvError {}

/// Reads a CSV file; with `labeled`, the last column becomes the label.
///
/// # Errors
///
/// Returns an error on I/O failure, non-numeric cells, ragged rows, or an
/// empty file.
pub fn read_file(path: &Path, labeled: bool) -> Result<CsvData, CsvError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CsvError::new(format!("cannot read {}: {e}", path.display())))?;
    parse(&text, labeled)
}

/// Parses CSV text; blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns an error on non-numeric cells, ragged rows, or empty input.
pub fn parse(text: &str, labeled: bool) -> Result<CsvData, CsvError> {
    let mut features = Vec::new();
    let mut labels = if labeled { Some(Vec::new()) } else { None };
    let mut width: Option<usize> = None;

    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if let Some(w) = width {
            if cells.len() != w {
                return Err(CsvError::new(format!(
                    "line {}: expected {w} columns, found {}",
                    line_no + 1,
                    cells.len()
                )));
            }
        } else {
            let min = if labeled { 2 } else { 1 };
            if cells.len() < min {
                return Err(CsvError::new(format!(
                    "line {}: need at least {min} columns",
                    line_no + 1
                )));
            }
            width = Some(cells.len());
        }
        let feature_cells = if labeled {
            &cells[..cells.len() - 1]
        } else {
            &cells[..]
        };
        let mut row = Vec::with_capacity(feature_cells.len());
        for cell in feature_cells {
            let v: f64 = cell.parse().map_err(|_| {
                CsvError::new(format!("line {}: `{cell}` is not a number", line_no + 1))
            })?;
            if !v.is_finite() {
                return Err(CsvError::new(format!(
                    "line {}: non-finite value `{cell}`",
                    line_no + 1
                )));
            }
            row.push(v);
        }
        features.push(row);
        if let Some(labels) = &mut labels {
            let cell = cells[cells.len() - 1];
            let label: usize = cell.parse().map_err(|_| {
                CsvError::new(format!(
                    "line {}: label `{cell}` is not a non-negative integer",
                    line_no + 1
                ))
            })?;
            labels.push(label);
        }
    }
    if features.is_empty() {
        return Err(CsvError::new("no data rows found"));
    }
    Ok(CsvData { features, labels })
}

/// Number of classes implied by a label column (`max + 1`).
pub fn n_classes(labels: &[usize]) -> usize {
    labels.iter().max().map_or(0, |&m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labeled_rows() {
        let data = parse("1.0, 2.0, 0\n3.5,4.5,1\n", true).unwrap();
        assert_eq!(data.features, vec![vec![1.0, 2.0], vec![3.5, 4.5]]);
        assert_eq!(data.labels, Some(vec![0, 1]));
        assert_eq!(n_classes(data.labels.as_ref().unwrap()), 2);
    }

    #[test]
    fn parses_unlabeled_rows_and_skips_comments() {
        let data = parse("# header\n\n1,2,3\n4,5,6\n", false).unwrap();
        assert_eq!(data.features.len(), 2);
        assert_eq!(data.features[1], vec![4.0, 5.0, 6.0]);
        assert!(data.labels.is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("", false).is_err());
        assert!(parse("1,2\n1,2,3\n", false).is_err()); // ragged
        assert!(parse("1,abc\n", false).is_err()); // non-numeric
        assert!(parse("1.0,1.5\n", true).is_err()); // non-integer label
        assert!(parse("5\n", true).is_err()); // label but no features
        assert!(parse("1,inf,0\n", true).is_err()); // non-finite
    }
}
