//! Minimal CSV reading for numeric feature matrices.
//!
//! Two modes: strict ([`parse`]/[`read_file`]) fails on the first
//! malformed row with an error carrying the line and column; tolerant
//! ([`parse_tolerant`]/[`read_file_opts`] with `skip_bad_rows`)
//! quarantines malformed rows into the report and keeps going — the
//! `--skip-bad-rows` serving posture, where one corrupt sensor reading
//! must not take down the stream.

use std::fmt;
use std::path::Path;

/// A parsed numeric CSV: features and (optionally) trailing integer
/// labels.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvData {
    /// Feature rows.
    pub features: Vec<Vec<f64>>,
    /// Labels, present only when parsed with `labeled = true`.
    pub labels: Option<Vec<usize>>,
}

/// A CSV parsing failure with line and column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    message: String,
    line: Option<usize>,
    column: Option<usize>,
}

impl CsvError {
    fn new(message: impl Into<String>) -> Self {
        CsvError {
            message: message.into(),
            line: None,
            column: None,
        }
    }

    fn at(message: impl Into<String>, line: usize, column: Option<usize>) -> Self {
        CsvError {
            message: message.into(),
            line: Some(line),
            column,
        }
    }

    /// 1-based line number of the offending row, when known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// 1-based column number of the offending cell, when known.
    pub fn column(&self) -> Option<usize> {
        self.column
    }
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (Some(l), Some(c)) => write!(f, "line {l}, column {c}: {}", self.message),
            (Some(l), None) => write!(f, "line {l}: {}", self.message),
            _ => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for CsvError {}

/// The outcome of a tolerant parse: the clean rows plus every
/// quarantined failure (with its line and column preserved).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvReport {
    /// Rows that parsed cleanly.
    pub data: CsvData,
    /// Malformed rows, in input order.
    pub skipped: Vec<CsvError>,
}

/// Reads a CSV file; with `labeled`, the last column becomes the label.
///
/// # Errors
///
/// Returns an error on I/O failure, non-numeric cells, ragged rows, or an
/// empty file; parse errors carry the line and column.
pub fn read_file(path: &Path, labeled: bool) -> Result<CsvData, CsvError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CsvError::new(format!("cannot read {}: {e}", path.display())))?;
    parse(&text, labeled)
}

/// Reads a CSV file, optionally quarantining malformed rows instead of
/// failing on the first one (`--skip-bad-rows`).
///
/// # Errors
///
/// Returns an error on I/O failure; in strict mode also on the first
/// malformed row; in tolerant mode only when no row parses at all.
pub fn read_file_opts(
    path: &Path,
    labeled: bool,
    skip_bad_rows: bool,
) -> Result<CsvReport, CsvError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CsvError::new(format!("cannot read {}: {e}", path.display())))?;
    if skip_bad_rows {
        parse_tolerant(&text, labeled)
    } else {
        parse(&text, labeled).map(|data| CsvReport {
            data,
            skipped: Vec::new(),
        })
    }
}

/// Parses CSV text strictly; blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns an error on non-numeric cells, ragged rows, or empty input;
/// the error carries the 1-based line and column of the first offense.
pub fn parse(text: &str, labeled: bool) -> Result<CsvData, CsvError> {
    let mut features = Vec::new();
    let mut labels = if labeled { Some(Vec::new()) } else { None };
    let mut width: Option<usize> = None;

    for (line_no, raw) in text.lines().enumerate() {
        let Some((row, label)) = parse_row(raw, line_no + 1, labeled, &mut width)? else {
            continue;
        };
        features.push(row);
        if let (Some(labels), Some(label)) = (&mut labels, label) {
            labels.push(label);
        }
    }
    if features.is_empty() {
        return Err(CsvError::new("no data rows found"));
    }
    Ok(CsvData { features, labels })
}

/// Parses CSV text, quarantining malformed rows instead of failing:
/// every bad row lands in the report's `skipped` list (with line and
/// column) and parsing continues.
///
/// # Errors
///
/// Returns an error only when not a single row parses cleanly.
pub fn parse_tolerant(text: &str, labeled: bool) -> Result<CsvReport, CsvError> {
    let mut features = Vec::new();
    let mut labels = if labeled { Some(Vec::new()) } else { None };
    let mut width: Option<usize> = None;
    let mut skipped = Vec::new();

    for (line_no, raw) in text.lines().enumerate() {
        match parse_row(raw, line_no + 1, labeled, &mut width) {
            Ok(Some((row, label))) => {
                features.push(row);
                if let (Some(labels), Some(label)) = (&mut labels, label) {
                    labels.push(label);
                }
            }
            Ok(None) => {}
            Err(e) => skipped.push(e),
        }
    }
    if features.is_empty() {
        return Err(CsvError::new(format!(
            "no clean data rows found ({} malformed)",
            skipped.len()
        )));
    }
    Ok(CsvReport {
        data: CsvData { features, labels },
        skipped,
    })
}

/// A parsed data row: features plus the label when the file is labeled.
type ParsedRow = (Vec<f64>, Option<usize>);

/// Parses one raw line. Returns `Ok(None)` for blank/comment lines,
/// `Ok(Some((features, label)))` for a data row. The first valid data
/// row fixes the column count in `width`; later rows must match it.
fn parse_row(
    raw: &str,
    line_no: usize,
    labeled: bool,
    width: &mut Option<usize>,
) -> Result<Option<ParsedRow>, CsvError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let cells: Vec<&str> = line.split(',').map(str::trim).collect();
    if let Some(w) = *width {
        if cells.len() != w {
            return Err(CsvError::at(
                format!("expected {w} columns, found {}", cells.len()),
                line_no,
                None,
            ));
        }
    } else {
        let min = if labeled { 2 } else { 1 };
        if cells.len() < min {
            return Err(CsvError::at(
                format!("need at least {min} columns"),
                line_no,
                None,
            ));
        }
    }
    let feature_cells = if labeled {
        &cells[..cells.len() - 1]
    } else {
        &cells[..]
    };
    let mut row = Vec::with_capacity(feature_cells.len());
    for (col, cell) in feature_cells.iter().enumerate() {
        let v: f64 = cell.parse().map_err(|_| {
            CsvError::at(format!("`{cell}` is not a number"), line_no, Some(col + 1))
        })?;
        if !v.is_finite() {
            return Err(CsvError::at(
                format!("non-finite value `{cell}`"),
                line_no,
                Some(col + 1),
            ));
        }
        row.push(v);
    }
    let label = if labeled {
        let col = cells.len();
        let cell = cells[col - 1];
        Some(cell.parse().map_err(|_| {
            CsvError::at(
                format!("label `{cell}` is not a non-negative integer"),
                line_no,
                Some(col),
            )
        })?)
    } else {
        None
    };
    // Only a fully clean row may fix the width: a malformed first row
    // must not poison the width for tolerant parsing.
    if width.is_none() {
        *width = Some(cells.len());
    }
    Ok(Some((row, label)))
}

/// Number of classes implied by a label column (`max + 1`).
pub fn n_classes(labels: &[usize]) -> usize {
    labels.iter().max().map_or(0, |&m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labeled_rows() {
        let data = parse("1.0, 2.0, 0\n3.5,4.5,1\n", true).unwrap();
        assert_eq!(data.features, vec![vec![1.0, 2.0], vec![3.5, 4.5]]);
        assert_eq!(data.labels, Some(vec![0, 1]));
        assert_eq!(n_classes(data.labels.as_ref().unwrap()), 2);
    }

    #[test]
    fn parses_unlabeled_rows_and_skips_comments() {
        let data = parse("# header\n\n1,2,3\n4,5,6\n", false).unwrap();
        assert_eq!(data.features.len(), 2);
        assert_eq!(data.features[1], vec![4.0, 5.0, 6.0]);
        assert!(data.labels.is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("", false).is_err());
        assert!(parse("1,2\n1,2,3\n", false).is_err()); // ragged
        assert!(parse("1,abc\n", false).is_err()); // non-numeric
        assert!(parse("1.0,1.5\n", true).is_err()); // non-integer label
        assert!(parse("5\n", true).is_err()); // label but no features
        assert!(parse("1,inf,0\n", true).is_err()); // non-finite
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("1,2,0\n1,abc,1\n", true).unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert_eq!(err.column(), Some(2));
        assert!(err.to_string().contains("line 2, column 2"));

        let err = parse("1,2,0\n1,2,x\n", true).unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert_eq!(err.column(), Some(3));

        // Ragged rows know the line but not a single offending column.
        let err = parse("1,2,0\n1,2,3,0\n", true).unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert_eq!(err.column(), None);
    }

    #[test]
    fn tolerant_parse_quarantines_and_counts() {
        let text = "1,2,0\nnan,2,1\n3,4,1\n5,6\n7,8,oops\n9,10,1\n";
        let report = parse_tolerant(text, true).unwrap();
        assert_eq!(
            report.data.features,
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![9.0, 10.0]]
        );
        assert_eq!(report.data.labels, Some(vec![0, 1, 1]));
        assert_eq!(report.skipped.len(), 3);
        assert_eq!(report.skipped[0].line(), Some(2));
        assert_eq!(report.skipped[1].line(), Some(4));
        assert_eq!(report.skipped[2].line(), Some(5));
    }

    #[test]
    fn tolerant_parse_ignores_a_malformed_first_row() {
        // The bad first row must not fix the expected width.
        let report = parse_tolerant("bad,row,here,x\n1,2,0\n3,4,1\n", true).unwrap();
        assert_eq!(report.data.features.len(), 2);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].line(), Some(1));
    }

    #[test]
    fn tolerant_parse_fails_when_nothing_is_clean() {
        let err = parse_tolerant("a,b,c\nx,y,z\n", true).unwrap_err();
        assert!(err.to_string().contains("2 malformed"));
    }
}
