//! End-to-end socket test: spawn the real `generic` binary with
//! `serve --listen`, speak the framed TCP protocol against it, and
//! verify the drain summary accounts for the network traffic.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use generic_cli::run;
use generic_hdc::net::{read_frame, write_frame};
use generic_hdc::{Frame, NetStatus};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("generic-net-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// Writes a small separable 3-class CSV and returns its path.
fn write_dataset(dir: &std::path::Path) -> PathBuf {
    let mut text = String::new();
    for i in 0..90 {
        let class = i % 3;
        for j in 0..9 {
            let band = j / 3;
            let v = if band == class { 8.0 } else { 1.0 } + ((i * 3 + j) % 4) as f64 * 0.15;
            let _ = write!(text, "{v:.3},");
        }
        let _ = writeln!(text, "{class}");
    }
    let path = dir.join("train.csv");
    std::fs::write(&path, text).expect("temp dir is writable");
    path
}

/// Features squarely inside the given class's band.
fn class_features(class: usize) -> Vec<f64> {
    (0..9)
        .map(|j| if j / 3 == class { 8.0 } else { 1.0 })
        .collect()
}

#[test]
fn serve_listen_answers_frames_and_says_goodbye() {
    let dir = temp_dir("frames");
    let train_csv = write_dataset(&dir);
    let model = dir.join("model.ghdc");
    let ckpt_dir = dir.join("ckpts");

    // Train in-process (same code path as the binary, much faster than
    // shelling out twice).
    let mut out = Vec::new();
    let code = run(
        &[
            "train".into(),
            "--data".into(),
            train_csv.to_str().expect("utf-8 path").into(),
            "--out".into(),
            model.to_str().expect("utf-8 path").into(),
            "--dim".into(),
            "1024".into(),
        ],
        &mut out,
    );
    assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

    // Spawn the real binary: stdin is the control stream (`--data -`),
    // so the TCP front-end stays up until we close it.
    let mut child = Command::new(env!("CARGO_BIN_EXE_generic"))
        .args([
            "serve",
            "--ckpt-dir",
            ckpt_dir.to_str().expect("utf-8 path"),
            "--data",
            "-",
            "--model",
            model.to_str().expect("utf-8 path"),
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");

    let stdin = child.stdin.take().expect("stdin is piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout is piped"));

    // The bound address (port 0 resolved) is announced before the CSV
    // stream is consumed.
    let addr = loop {
        let mut line = String::new();
        let n = stdout.read_line(&mut line).expect("stdout is readable");
        assert_ne!(n, 0, "binary exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_owned();
        }
    };

    let mut conn = TcpStream::connect(&addr).expect("front-end accepts");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout is settable");

    // Ping → Accepted with the same request id.
    write_frame(&mut conn, &Frame::Ping { request_id: 7 }).expect("ping writes");
    match read_frame(&mut conn).expect("response arrives") {
        Some(Frame::Accepted { request_id }) => assert_eq!(request_id, 7),
        other => panic!("expected Accepted, got {other:?}"),
    }

    // Infer → Answer carrying the predicted label for a clean class-1
    // point, with latency accounted end-to-end by the server.
    write_frame(
        &mut conn,
        &Frame::Infer {
            request_id: 8,
            deadline_us: 0,
            tenant: None,
            features: class_features(1),
        },
    )
    .expect("infer writes");
    match read_frame(&mut conn).expect("response arrives") {
        Some(Frame::Answer {
            request_id, label, ..
        }) => {
            assert_eq!(request_id, 8);
            assert_eq!(label, 1);
        }
        other => panic!("expected Answer, got {other:?}"),
    }

    // Learn → Accepted (fire-and-forget write path).
    write_frame(
        &mut conn,
        &Frame::Learn {
            request_id: 9,
            label: 2,
            features: class_features(2),
        },
    )
    .expect("learn writes");
    match read_frame(&mut conn).expect("response arrives") {
        Some(Frame::Accepted { request_id }) => assert_eq!(request_id, 9),
        other => panic!("expected Accepted, got {other:?}"),
    }

    // A response-direction opcode is protocol abuse: the server refuses
    // it as malformed and drops this connection.
    let mut abusive = TcpStream::connect(&addr).expect("front-end accepts");
    abusive
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout is settable");
    write_frame(&mut abusive, &Frame::Goodbye).expect("frame writes");
    match read_frame(&mut abusive).expect("refusal arrives") {
        Some(Frame::Refusal { status, .. }) => assert_eq!(status, NetStatus::Malformed),
        other => panic!("expected Refusal, got {other:?}"),
    }
    // After the refusal the server hangs up.
    let mut rest = Vec::new();
    let eof = abusive.read_to_end(&mut rest);
    assert!(
        eof.is_ok() && rest.is_empty(),
        "connection should be dropped"
    );

    // Closing stdin ends the control stream: the front-end shuts down,
    // sending a final GOODBYE frame before the socket closes.
    drop(stdin);
    match read_frame(&mut conn).expect("goodbye arrives") {
        Some(Frame::Goodbye) => {}
        other => panic!("expected Goodbye, got {other:?}"),
    }
    assert!(
        matches!(read_frame(&mut conn), Ok(None)),
        "clean EOF after GOODBYE"
    );

    let status = child.wait().expect("binary exits");
    let mut text = String::new();
    stdout.read_to_string(&mut text).expect("stdout drains");
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("stderr is piped")
        .read_to_string(&mut err)
        .expect("stderr drains");
    assert!(status.success(), "exit {status:?}\nstdout:\n{text}\n{err}");
    assert!(text.contains("net: 2 connection(s)"), "{text}");
    assert!(
        text.contains("answered 1, refused 1, malformed 1"),
        "{text}"
    );
    assert!(text.contains("net latency: p50"), "{text}");
    assert!(text.contains("drained: generation"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn listen_without_shards_is_a_configuration_error() {
    let dir = temp_dir("listen-no-shards");
    let mut out = Vec::new();
    let code = run(
        &[
            "serve".into(),
            "--ckpt-dir".into(),
            dir.join("ckpts").to_str().expect("utf-8 path").into(),
            "--data".into(),
            "/dev/null".into(),
            "--listen".into(),
            "127.0.0.1:0".into(),
        ],
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_ne!(code, 0);
    assert!(
        text.contains("--listen requires the sharded runtime"),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
