//! End-to-end CLI tests: train → info → predict → cluster against real
//! temp files, driving the same `run` entry point as the binary.

use std::fmt::Write as _;
use std::path::PathBuf;

use generic_cli::run;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// Writes a small separable 3-class CSV and returns its path.
fn write_dataset(dir: &std::path::Path, name: &str, labeled: bool) -> PathBuf {
    let mut text = String::from("# synthetic three-band data\n");
    for i in 0..90 {
        let class = i % 3;
        for j in 0..9 {
            let band = j / 3;
            let v = if band == class { 8.0 } else { 1.0 } + ((i * 3 + j) % 4) as f64 * 0.15;
            let _ = write!(text, "{v:.3},");
        }
        if labeled {
            let _ = writeln!(text, "{class}");
        } else {
            text.pop(); // trailing comma
            text.push('\n');
        }
    }
    let path = dir.join(name);
    std::fs::write(&path, text).expect("temp dir is writable");
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("generic-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

#[test]
fn train_info_predict_round_trip() {
    let dir = temp_dir("round-trip");
    let train_csv = write_dataset(&dir, "train.csv", true);
    let model = dir.join("model.ghdc");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "train",
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--out",
            model.to_str().expect("utf-8 path"),
            "--dim",
            "1024",
            "--epochs",
            "10",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "train failed: {text}");
    assert!(text.contains("trained on 90 samples"), "{text}");
    assert!(model.exists());

    let mut out = Vec::new();
    let code = run(
        &argv(&["info", "--model", model.to_str().expect("utf-8 path")]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("dimensions:  1024"), "{text}");
    assert!(text.contains("classes:     3"), "{text}");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "predict",
            "--model",
            model.to_str().expect("utf-8 path"),
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--labeled",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    let accuracy_line = text
        .lines()
        .find(|l| l.starts_with("accuracy:"))
        .expect("accuracy line present");
    assert!(accuracy_line.contains("100.0%"), "{accuracy_line}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_reports_nmi_for_labeled_data() {
    let dir = temp_dir("cluster");
    let csv = write_dataset(&dir, "points.csv", true);

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "cluster",
            "--data",
            csv.to_str().expect("utf-8 path"),
            "--k",
            "3",
            "--dim",
            "1024",
            "--labeled",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("clustered 90 points into 3 groups"), "{text}");
    let nmi_line = text
        .lines()
        .find(|l| l.starts_with("NMI"))
        .expect("NMI line present");
    let nmi: f64 = nmi_line
        .rsplit(' ')
        .next()
        .expect("value present")
        .parse()
        .expect("numeric NMI");
    assert!(nmi > 0.9, "NMI too low: {nmi}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_streams_learns_and_survives_restart() {
    let dir = temp_dir("serve");
    let train_csv = write_dataset(&dir, "train.csv", true);
    let model = dir.join("model.ghdc");
    let ckpt_dir = dir.join("ckpts");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "train",
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--out",
            model.to_str().expect("utf-8 path"),
            "--dim",
            "1024",
        ]),
        &mut out,
    );
    assert_eq!(code, 0);

    // An interleaved stream: learning rows (10 cols), inference rows
    // (9 cols), a NaN row the runtime must quarantine, and a ragged row
    // that --skip-bad-rows must absorb.
    let stream = dir.join("stream.csv");
    let mut text = String::new();
    for i in 0..30 {
        let class = i % 3;
        for j in 0..9 {
            let band = j / 3;
            let v = if band == class { 8.0 } else { 1.0 };
            let _ = write!(text, "{v:.1},");
        }
        if i % 5 == 0 {
            text.pop();
            text.push('\n'); // inference request
        } else {
            let _ = writeln!(text, "{class}"); // learning sample
        }
    }
    text.push_str("nan,1,1,1,1,1,1,1,1,0\n"); // quarantined by the runtime
    text.push_str("1,2,3\n"); // ragged: needs --skip-bad-rows
    std::fs::write(&stream, text).expect("temp dir is writable");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "serve",
            "--ckpt-dir",
            ckpt_dir.to_str().expect("utf-8 path"),
            "--data",
            stream.to_str().expect("utf-8 path"),
            "--model",
            model.to_str().expect("utf-8 path"),
            "--checkpoint-every",
            "8",
            "--skip-bad-rows",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "serve failed: {text}");
    assert!(text.contains("bootstrapped from"), "{text}");
    assert!(text.contains("quarantined 1, bad rows 1"), "{text}");
    assert!(text.contains("stream done"), "{text}");

    // Restart without --model: the runtime must recover from the newest
    // checkpoint generation and keep serving.
    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "serve",
            "--ckpt-dir",
            ckpt_dir.to_str().expect("utf-8 path"),
            "--data",
            stream.to_str().expect("utf-8 path"),
            "--skip-bad-rows",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "recovery serve failed: {text}");
    assert!(text.contains("recovered generation"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_serve_answers_and_exports_dead_letters() {
    let dir = temp_dir("serve-sharded");
    let train_csv = write_dataset(&dir, "train.csv", true);
    let model = dir.join("model.ghdc");
    let ckpt_dir = dir.join("ckpts");
    let dead_letters = dir.join("quarantine.csv");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "train",
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--out",
            model.to_str().expect("utf-8 path"),
            "--dim",
            "1024",
        ]),
        &mut out,
    );
    assert_eq!(code, 0);

    // Interleaved stream with one quarantined row (NaN label row) and
    // one ragged row absorbed by --skip-bad-rows.
    let stream = dir.join("stream.csv");
    let mut text = String::new();
    let mut inferences = 0usize;
    for i in 0..40 {
        let class = i % 3;
        for j in 0..9 {
            let band = j / 3;
            let v = if band == class { 8.0 } else { 1.0 };
            let _ = write!(text, "{v:.1},");
        }
        if i % 4 == 0 {
            text.pop();
            text.push('\n');
            inferences += 1;
        } else {
            let _ = writeln!(text, "{class}");
        }
    }
    text.push_str("nan,1,1,1,1,1,1,1,1,0\n"); // writer quarantines this
    text.push_str("1,2,3\n"); // ragged
    std::fs::write(&stream, text).expect("temp dir is writable");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "serve",
            "--ckpt-dir",
            ckpt_dir.to_str().expect("utf-8 path"),
            "--data",
            stream.to_str().expect("utf-8 path"),
            "--model",
            model.to_str().expect("utf-8 path"),
            "--shards",
            "2",
            "--dead-letter-out",
            dead_letters.to_str().expect("utf-8 path"),
            "--skip-bad-rows",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "sharded serve failed: {text}");
    assert!(text.contains("drained: generation"), "{text}");
    assert!(text.contains("final checkpoint ok"), "{text}");
    assert!(text.contains("supervision: panics 0"), "{text}");

    // Every inference row printed one predicted label, in order.
    let answers: Vec<&str> = text
        .lines()
        .filter(|l| l.len() == 1 && l.chars().all(|c| c.is_ascii_digit()))
        .collect();
    assert_eq!(answers.len(), inferences, "{text}");

    // The dead-letter export exists and round-trips losslessly.
    let csv = std::fs::read_to_string(&dead_letters).expect("export written");
    let letters = generic_hdc::runtime::read_dead_letters_csv(&csv).expect("valid CSV");
    assert_eq!(letters.len(), 1, "{csv}");
    assert!(letters[0].features[0].is_nan());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn skip_bad_rows_quarantines_malformed_training_rows() {
    let dir = temp_dir("skip-bad");
    let train_csv = write_dataset(&dir, "train.csv", true);
    // Poison the file with malformed rows.
    let mut text = std::fs::read_to_string(&train_csv).expect("readable");
    text.push_str("not,a,number,at,all,x,y,z,w,0\n");
    text.push_str("1,2\n");
    std::fs::write(&train_csv, text).expect("writable");
    let model = dir.join("model.ghdc");

    // Strict mode fails with line context.
    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "train",
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--out",
            model.to_str().expect("utf-8 path"),
            "--dim",
            "512",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("line 92"), "{text}");

    // Tolerant mode trains on the clean rows and reports the skips.
    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "train",
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--out",
            model.to_str().expect("utf-8 path"),
            "--dim",
            "512",
            "--skip-bad-rows",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("skipped 2 malformed row(s)"), "{text}");
    assert!(text.contains("trained on 90 samples"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_prints_help_and_fails() {
    let mut out = Vec::new();
    let code = run(&argv(&["frobnicate"]), &mut out);
    assert_eq!(code, 2);
    let text = String::from_utf8(out).expect("utf-8 output");
    assert!(text.contains("USAGE"), "{text}");

    let mut out = Vec::new();
    let code = run(&argv(&["--help"]), &mut out);
    assert_eq!(code, 0);
}

#[test]
fn missing_files_are_reported_not_panicked() {
    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "predict",
            "--model",
            "/nonexistent.ghdc",
            "--data",
            "/nonexistent.csv",
        ]),
        &mut out,
    );
    assert_eq!(code, 1);
    let text = String::from_utf8(out).expect("utf-8 output");
    assert!(text.contains("error:"), "{text}");
}

#[test]
fn sharded_serve_routes_tenant_rows_through_the_registry() {
    use generic_hdc::{HdcPipeline, ModelRegistry, QuantizedModel, RegistryConfig};

    let dir = temp_dir("serve-tenant");
    let train_csv = write_dataset(&dir, "train.csv", true);
    let model = dir.join("model.ghdc");
    let ckpt_dir = dir.join("ckpts");
    let registry_dir = dir.join("tenants");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "train",
            "--data",
            train_csv.to_str().expect("utf-8 path"),
            "--out",
            model.to_str().expect("utf-8 path"),
            "--dim",
            "1024",
        ]),
        &mut out,
    );
    assert_eq!(code, 0);

    // Publish the trained class memory for one tenant (the registry
    // shares the serving encoder, so dims line up by construction).
    let pipeline = {
        let file = std::fs::File::open(&model).expect("model written");
        HdcPipeline::read_from(std::io::BufReader::new(file)).expect("model parses")
    };
    let registry = ModelRegistry::open(
        &registry_dir,
        RegistryConfig {
            dim: 1024,
            ..RegistryConfig::default()
        },
    )
    .expect("registry opens");
    let quantized = QuantizedModel::from_model(pipeline.model(), 8).expect("valid width");
    registry.publish("acme", &quantized).expect("publish");
    drop(registry);

    // Tenant-prefixed inference rows; one row names an unknown tenant
    // (shed, counted) and plain rows would be rejected by --tenant-header
    // parsing so all rows carry a tenant cell.
    let stream = dir.join("stream.csv");
    let mut text = String::new();
    let mut served = 0usize;
    for i in 0..12 {
        let tenant = if i == 5 { "ghost" } else { "acme" };
        let class = i % 3;
        let _ = write!(text, "{tenant},");
        for j in 0..9 {
            let band = j / 3;
            let v = if band == class { 8.0 } else { 1.0 };
            let _ = write!(text, "{v:.1},");
        }
        text.pop();
        text.push('\n');
        if tenant == "acme" {
            served += 1;
        }
    }
    std::fs::write(&stream, text).expect("temp dir is writable");

    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "serve",
            "--ckpt-dir",
            ckpt_dir.to_str().expect("utf-8 path"),
            "--data",
            stream.to_str().expect("utf-8 path"),
            "--model",
            model.to_str().expect("utf-8 path"),
            "--shards",
            "2",
            "--registry",
            registry_dir.to_str().expect("utf-8 path"),
            "--tenant-header",
        ]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "tenant serve failed: {text}");
    assert!(text.contains("registry "), "{text}");
    assert!(text.contains("1 tenant(s) on disk"), "{text}");
    assert!(text.contains("refused rows 1"), "{text}");

    let answers: Vec<&str> = text
        .lines()
        .filter(|l| l.len() == 1 && l.chars().all(|c| c.is_ascii_digit()))
        .collect();
    assert_eq!(answers.len(), served, "{text}");

    // Registry without shards (or tenant-header without registry) is a
    // configuration error, not a silent fallback.
    let mut out = Vec::new();
    let code = run(
        &argv(&[
            "serve",
            "--ckpt-dir",
            ckpt_dir.to_str().expect("utf-8 path"),
            "--data",
            stream.to_str().expect("utf-8 path"),
            "--registry",
            registry_dir.to_str().expect("utf-8 path"),
        ]),
        &mut out,
    );
    assert_ne!(code, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_admin_round_trip_pins_golden_output() {
    use generic_hdc::{BinaryHv, HdcModel, IntHv, ModelRegistry, QuantizedModel, RegistryConfig};

    let dir = temp_dir("registry-admin");
    let reg_dir = dir.join("tenants");
    std::fs::remove_dir_all(&reg_dir).ok();

    // Publish two generations of the same-shaped model so both images
    // have identical, deterministic sizes.
    let model = |seed: u64| {
        let encoded: Vec<IntHv> = (0..3)
            .map(|c| IntHv::from(BinaryHv::random_seeded(256, seed * 31 + c).unwrap()))
            .collect();
        let trained = HdcModel::fit(&encoded, &[0, 1, 2], 3).unwrap();
        QuantizedModel::from_model(&trained, 8).unwrap()
    };
    let first = model(1);
    let registry = ModelRegistry::open(
        &reg_dir,
        RegistryConfig {
            dim: 256,
            ..RegistryConfig::default()
        },
    )
    .expect("registry dir is creatable");
    registry.publish("acme", &first).unwrap();
    registry.publish("acme", &model(2)).unwrap();
    drop(registry);

    let mut bytes = Vec::new();
    generic_hdc::io::write_packed(&first, &mut bytes).unwrap();
    let size = format!("{} B", bytes.len());
    let reg = reg_dir.to_str().expect("utf-8 path");

    // Golden: `registry history` output is pinned byte-for-byte.
    let mut out = Vec::new();
    let code = run(
        &argv(&["registry", "history", "--dir", reg, "--tenant", "acme"]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    let expected = format!(
        "tenant acme: 2 generation(s)\n  g{:<4} {:>10}\n  g{:<4} {:>10}  (live)\n",
        1, size, 2, size
    );
    assert_eq!(text, expected);

    // Rollback to the previous generation, then history shows g1 live.
    let mut out = Vec::new();
    let code = run(
        &argv(&["registry", "rollback", "--dir", reg, "--tenant", "acme"]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    assert_eq!(text, "tenant acme: live generation is now g1\n");

    let mut out = Vec::new();
    let code = run(
        &argv(&["registry", "history", "--dir", reg, "--tenant", "acme"]),
        &mut out,
    );
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    let expected = format!(
        "tenant acme: 2 generation(s)\n  g{:<4} {:>10}  (live)\n  g{:<4} {:>10}\n",
        1, size, 2, size
    );
    assert_eq!(text, expected);

    // Fsck reports both generations healthy.
    let mut out = Vec::new();
    let code = run(&argv(&["registry", "fsck", "--dir", reg]), &mut out);
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    assert_eq!(
        text,
        "tenant acme g1 (live): ok\ntenant acme g2: ok\nfsck: healthy\n"
    );

    // A planted staging orphan is swept by the open-time recovery scan,
    // leaving gc itself nothing to remove — both counts are reported.
    std::fs::write(reg_dir.join("acme.g9.ghdc.tmp"), b"torn").unwrap();
    let mut out = Vec::new();
    let code = run(&argv(&["registry", "gc", "--dir", reg]), &mut out);
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_eq!(code, 0, "{text}");
    assert_eq!(
        text,
        "recovery: swept 1 orphaned staging file(s)\ngc: removed 0 unreferenced file(s)\n"
    );

    // Corrupting the live image makes fsck fail loudly.
    let live = reg_dir.join("acme.g1.ghdc");
    let mut image = std::fs::read(&live).unwrap();
    let mid = image.len() / 2;
    image[mid] ^= 0x40;
    std::fs::write(&live, image).unwrap();
    let mut out = Vec::new();
    let code = run(&argv(&["registry", "fsck", "--dir", reg]), &mut out);
    let text = String::from_utf8(out).expect("utf-8 output");
    assert_ne!(code, 0, "{text}");
    assert!(text.contains("tenant acme g1 (live): BAD"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}
