//! Argument handling shared by the figure/table binaries.
//!
//! Every binary takes one optional positional argument — the RNG seed —
//! plus the shared flags `--threads N` (worker threads for parallel
//! encoding and retraining; defaults to the machine parallelism) and
//! `--smoke` (where supported: a fast reduced-size run). A malformed
//! argument prints a usage message to stderr and exits with a nonzero
//! status instead of panicking with a backtrace.

/// Parses the optional positional seed argument of the current process,
/// defaulting to `default` when absent. Shared flags (`--threads`,
/// `--smoke`) are skipped. On a malformed argument, prints a usage
/// message to stderr and exits with status 2.
pub fn seed_arg(default: u64) -> u64 {
    let (bin, args) = current_args();
    match parse_seed(&args, default) {
        Ok(seed) => seed,
        Err(got) => {
            eprintln!("error: seed must be an unsigned integer, got {got:?}");
            usage_exit(&bin);
        }
    }
}

/// Parses the shared `--threads N` (or `--threads=N`) flag of the current
/// process, defaulting to the machine parallelism when absent. On a
/// malformed value, prints a usage message to stderr and exits with
/// status 2.
pub fn threads_arg() -> usize {
    let (bin, args) = current_args();
    match parse_threads(&args) {
        Ok(Some(n)) => n,
        Ok(None) => default_threads(),
        Err(got) => {
            eprintln!("error: --threads expects a positive integer, got {got:?}");
            usage_exit(&bin);
        }
    }
}

/// True when the current process was invoked with `--smoke`.
pub fn smoke_flag() -> bool {
    let (_, args) = current_args();
    parse_smoke(&args)
}

/// The machine parallelism (1 when unknown) — the `--threads` default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn current_args() -> (String, Vec<String>) {
    let mut args = std::env::args();
    let bin = args.next().unwrap_or_else(|| "generic-bench".to_owned());
    (bin, args.collect())
}

fn usage_exit(bin: &str) -> ! {
    eprintln!("usage: {bin} [seed] [--threads N] [--smoke]");
    std::process::exit(2);
}

/// The testable core of [`seed_arg`]: first non-flag token is the seed;
/// `Err` carries the offending argument.
fn parse_seed(args: &[String], default: u64) -> Result<u64, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--smoke" || arg.starts_with("--threads=") {
            continue;
        }
        if arg == "--threads" {
            iter.next(); // the flag's value; validated by `parse_threads`
            continue;
        }
        return arg.trim().parse().map_err(|_| arg.clone());
    }
    Ok(default)
}

/// The testable core of [`threads_arg`]: `Ok(None)` when the flag is
/// absent; `Err` carries the offending value.
fn parse_threads(args: &[String]) -> Result<Option<usize>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix("--threads=") {
            v.to_owned()
        } else if arg == "--threads" {
            match iter.next() {
                Some(v) => v.clone(),
                None => return Err(String::new()),
            }
        } else {
            continue;
        };
        return match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(value),
        };
    }
    Ok(None)
}

/// The testable core of [`smoke_flag`].
fn parse_smoke(args: &[String]) -> bool {
    args.iter().any(|a| a == "--smoke")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn missing_argument_uses_the_default() {
        assert_eq!(parse_seed(&[], 42), Ok(42));
    }

    #[test]
    fn valid_seeds_parse() {
        assert_eq!(parse_seed(&argv(&["7"]), 42), Ok(7));
        assert_eq!(parse_seed(&argv(&[" 123 "]), 42), Ok(123));
    }

    #[test]
    fn malformed_seeds_are_errors_not_panics() {
        for bad in ["x", "-1", "1.5", ""] {
            assert_eq!(
                parse_seed(&argv(&[bad]), 42),
                Err(bad.to_owned()),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn seed_skips_shared_flags() {
        assert_eq!(parse_seed(&argv(&["--smoke", "9"]), 42), Ok(9));
        assert_eq!(parse_seed(&argv(&["--threads", "4", "9"]), 42), Ok(9));
        assert_eq!(parse_seed(&argv(&["--threads=4", "9"]), 42), Ok(9));
        assert_eq!(
            parse_seed(&argv(&["--threads", "4", "--smoke"]), 42),
            Ok(42)
        );
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        assert_eq!(parse_threads(&[]), Ok(None));
        assert_eq!(parse_threads(&argv(&["7", "--threads", "4"])), Ok(Some(4)));
        assert_eq!(parse_threads(&argv(&["--threads=2", "7"])), Ok(Some(2)));
    }

    #[test]
    fn malformed_thread_counts_are_errors() {
        assert_eq!(
            parse_threads(&argv(&["--threads", "0"])),
            Err("0".to_owned())
        );
        assert_eq!(
            parse_threads(&argv(&["--threads", "x"])),
            Err("x".to_owned())
        );
        assert_eq!(parse_threads(&argv(&["--threads"])), Err(String::new()));
        assert_eq!(
            parse_threads(&argv(&["--threads=-1"])),
            Err("-1".to_owned())
        );
    }

    #[test]
    fn smoke_flag_detected() {
        assert!(!parse_smoke(&argv(&["7"])));
        assert!(parse_smoke(&argv(&["7", "--smoke"])));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
