//! Argument handling shared by the figure/table binaries.
//!
//! Every binary takes one optional positional argument — the RNG seed.
//! A malformed seed prints a usage message to stderr and exits with a
//! nonzero status instead of panicking with a backtrace.

/// Parses the optional positional seed argument of the current process,
/// defaulting to `default` when absent. On a malformed argument, prints
/// a usage message to stderr and exits with status 2.
pub fn seed_arg(default: u64) -> u64 {
    let mut args = std::env::args();
    let bin = args.next().unwrap_or_else(|| "generic-bench".to_owned());
    match parse_seed(args.next(), default) {
        Ok(seed) => seed,
        Err(got) => {
            eprintln!("error: seed must be an unsigned integer, got {got:?}");
            eprintln!("usage: {bin} [seed]");
            std::process::exit(2);
        }
    }
}

/// The testable core of [`seed_arg`]: `Err` carries the offending
/// argument.
fn parse_seed(arg: Option<String>, default: u64) -> Result<u64, String> {
    match arg {
        None => Ok(default),
        Some(s) => s.trim().parse().map_err(|_| s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_argument_uses_the_default() {
        assert_eq!(parse_seed(None, 42), Ok(42));
    }

    #[test]
    fn valid_seeds_parse() {
        assert_eq!(parse_seed(Some("7".to_owned()), 42), Ok(7));
        assert_eq!(parse_seed(Some(" 123 ".to_owned()), 42), Ok(123));
    }

    #[test]
    fn malformed_seeds_are_errors_not_panics() {
        for bad in ["x", "-1", "1.5", ""] {
            assert_eq!(
                parse_seed(Some(bad.to_owned()), 42),
                Err(bad.to_owned()),
                "{bad:?}"
            );
        }
    }
}
