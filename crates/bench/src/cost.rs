//! Bridges between datasets, trained models, the accelerator simulator,
//! and the device cost models — the shared plumbing of the Fig. 3 and
//! Figs. 8–10 harnesses.

use generic_datasets::Dataset;
use generic_devices::workload::{
    ForestShape, HdcShape, KMeansShape, KnnShape, LrShape, MlpShape, SvmShape,
};
use generic_devices::OpCounts;
use generic_sim::{Accelerator, AcceleratorConfig, TrainOutcome};

use crate::runners::{choose_id_binding, MlAlgorithm, DEFAULT_EPOCHS};

/// The HDC workload shape of a dataset at dimensionality `dim` (GENERIC
/// encoding, window 3, id binding chosen per application).
pub fn hdc_shape(dataset: &Dataset, dim: usize, seed: u64) -> HdcShape {
    HdcShape {
        dim,
        n_features: dataset.n_features,
        window: 3.min(dataset.n_features).max(1),
        n_classes: dataset.n_classes,
        id_binding: choose_id_binding(dataset, dim, seed),
    }
}

/// Per-input inference op counts of a classical-ML baseline on a dataset
/// (model shapes mirror the defaults `evaluate_ml` trains).
pub fn ml_infer_ops(algo: MlAlgorithm, dataset: &Dataset) -> OpCounts {
    let d = dataset.n_features;
    let k = dataset.n_classes;
    let n = dataset.train.len();
    match algo {
        MlAlgorithm::Mlp => MlpShape {
            layers: vec![d, 100, k],
        }
        .infer(),
        MlAlgorithm::Dnn => MlpShape {
            layers: vec![d, 128, 64, k],
        }
        .infer(),
        MlAlgorithm::Svm => SvmShape {
            n_support: n,
            n_features: d,
            n_classes: k,
        }
        .infer(),
        MlAlgorithm::RandomForest => ForestShape {
            n_trees: 40,
            depth: 12,
            n_features: d,
        }
        .infer(),
        MlAlgorithm::Knn => KnnShape {
            n_train: n,
            n_features: d,
        }
        .infer(),
        MlAlgorithm::LogisticRegression => LrShape {
            n_features: d,
            n_classes: k,
        }
        .infer(),
    }
}

/// Full-training op counts of a classical-ML baseline on a dataset.
pub fn ml_train_ops(algo: MlAlgorithm, dataset: &Dataset) -> OpCounts {
    let d = dataset.n_features;
    let k = dataset.n_classes;
    let n = dataset.train.len();
    match algo {
        MlAlgorithm::Mlp => MlpShape {
            layers: vec![d, 100, k],
        }
        .train(n, 80),
        MlAlgorithm::Dnn => {
            let shape = MlpShape {
                layers: vec![d, 128, 64, k],
            };
            shape.search_train(n, 40, 5) + shape.train(n, 100)
        }
        MlAlgorithm::Svm => SvmShape {
            n_support: n,
            n_features: d,
            n_classes: k,
        }
        .train(n, 30),
        MlAlgorithm::RandomForest => ForestShape {
            n_trees: 40,
            depth: 12,
            n_features: d,
        }
        .train(n),
        MlAlgorithm::Knn => KnnShape {
            n_train: n,
            n_features: d,
        }
        .train(),
        MlAlgorithm::LogisticRegression => LrShape {
            n_features: d,
            n_classes: k,
        }
        .train(n, 200),
    }
}

/// Builds and trains the accelerator simulator on a dataset, returning the
/// accelerator (with its cumulative training activity) and the training
/// outcome.
///
/// # Panics
///
/// Panics if the dataset exceeds the architecture's limits (none of the
/// bundled benchmarks does).
pub fn sim_train(dataset: &Dataset, dim: usize, seed: u64) -> (Accelerator, TrainOutcome) {
    let id_binding = choose_id_binding(dataset, dim, seed);
    let config = AcceleratorConfig::new(dim, dataset.n_features, dataset.n_classes)
        .with_window(3.min(dataset.n_features).max(1))
        .with_id_binding(id_binding)
        .with_seed(seed);
    let mut acc = Accelerator::new(config, &dataset.train.features)
        .expect("benchmark datasets fit the architecture");
    let outcome = acc
        .train(
            &dataset.train.features,
            &dataset.train.labels,
            DEFAULT_EPOCHS,
        )
        .expect("dataset validated");
    (acc, outcome)
}

/// The K-means workload of a clustering dataset.
pub fn kmeans_shape(n_points: usize, k: usize, n_features: usize) -> KMeansShape {
    KMeansShape {
        n_points,
        k,
        n_features,
    }
}
