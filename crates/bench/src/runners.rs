//! Shared evaluation runners: train an HDC pipeline or a classical-ML
//! baseline on a [`Dataset`] and report test accuracy.

use generic_datasets::Dataset;
use generic_hdc::encoding::{build_encoder, encode_batch_parallel, Encoder, EncodingKind};
use generic_hdc::{HdcModel, IntHv};
use generic_ml::{
    Classifier, DnnSearch, DnnSearchSpec, KNearestNeighbors, LogisticRegression,
    LogisticRegressionSpec, Mlp, MlpSpec, RandomForest, RandomForestSpec, RbfSvm, RbfSvmSpec,
};

/// Default hypervector dimensionality (the accelerator's class memories
/// hold D = 4K for up to 32 classes, §4.1).
pub const DEFAULT_DIM: usize = 4096;

/// Default retraining epochs (the paper trains GENERIC for a constant 20
/// epochs, §5.2.1).
pub const DEFAULT_EPOCHS: usize = 20;

/// A trained HDC pipeline together with its encoded splits, so callers can
/// run further studies (dimension reduction, quantization, fault
/// injection) without re-encoding.
pub struct HdcRun {
    /// The encoder used.
    pub encoder: Box<dyn Encoder + Send + Sync>,
    /// The trained model (after retraining).
    pub model: HdcModel,
    /// Encoded training split.
    pub train_encoded: Vec<IntHv>,
    /// Encoded test split.
    pub test_encoded: Vec<IntHv>,
    /// Per-epoch training error counts.
    pub retrain_errors: Vec<usize>,
}

impl HdcRun {
    /// Test accuracy of the trained model.
    pub fn test_accuracy(&self, dataset: &Dataset) -> f64 {
        self.model
            .accuracy(&self.test_encoded, &dataset.test.labels)
    }
}

/// Trains an HDC pipeline (encode → fit → retrain) on a dataset.
///
/// For the GENERIC encoding, per-window id binding is chosen per
/// application on a validation split — the flexibility §3.1 describes
/// ("to skip the global binding in certain applications, id hypervectors
/// are set to {0}^D"): sequence tasks like LANG disable the binding,
/// spatio-temporal tasks keep it.
///
/// # Panics
///
/// Panics if the dataset is internally inconsistent (the generators
/// validate on construction, so this only fires on hand-built data).
pub fn train_hdc(
    kind: EncodingKind,
    dataset: &Dataset,
    dim: usize,
    epochs: usize,
    seed: u64,
) -> HdcRun {
    let encoder = match kind {
        EncodingKind::Generic => build_generic_auto(dataset, dim, seed),
        _ => build_encoder(kind, dim, &dataset.train.features, seed)
            .expect("dataset validated; encoder construction cannot fail"),
    };
    let threads = crate::cli::threads_arg();
    let train_encoded = encode_batch_parallel(encoder.as_ref(), &dataset.train.features, threads)
        .expect("row widths validated");
    let test_encoded = encode_batch_parallel(encoder.as_ref(), &dataset.test.features, threads)
        .expect("row widths validated");
    let mut model = HdcModel::fit(&train_encoded, &dataset.train.labels, dataset.n_classes)
        .expect("labels validated");
    let retrain_errors = model
        .retrain_parallel(&train_encoded, &dataset.train.labels, epochs, threads)
        .expect("inputs validated");
    HdcRun {
        encoder,
        model,
        train_encoded,
        test_encoded,
        retrain_errors,
    }
}

/// Selects the GENERIC id-binding mode on a deterministic validation split
/// of the training data (the `spec` port lets the accelerator run either
/// mode; the choice is an application characteristic): sequence tasks like
/// LANG disable the binding, spatio-temporal tasks keep it.
///
/// The probe trains two throw-away models, so the decision is memoized per
/// (dataset identity, dim, seed) — the harness binaries ask for the same
/// dataset once per device and per phase.
pub fn choose_id_binding(dataset: &Dataset, dim: usize, seed: u64) -> bool {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    type Key = (&'static str, usize, usize, usize, usize, u64);
    static CACHE: OnceLock<Mutex<HashMap<Key, bool>>> = OnceLock::new();

    let key = (
        dataset.name,
        dataset.n_features,
        dataset.n_classes,
        dataset.train.len(),
        dim,
        seed,
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&cached) = cache.lock().expect("cache lock never poisoned").get(&key) {
        return cached;
    }
    let decision = probe_id_binding_modes(dataset, dim, seed).0;
    cache
        .lock()
        .expect("cache lock never poisoned")
        .insert(key, decision);
    decision
}

fn build_generic_auto(dataset: &Dataset, dim: usize, seed: u64) -> Box<dyn Encoder + Send + Sync> {
    let (_, enc) = probe_id_binding_modes(dataset, dim, seed);
    enc
}

fn probe_id_binding_modes(
    dataset: &Dataset,
    dim: usize,
    seed: u64,
) -> (bool, Box<dyn Encoder + Send + Sync>) {
    use generic_hdc::encoding::{GenericEncoder, GenericEncoderSpec};

    let n = dataset.train.features.len();
    let stride = 4; // every 4th sample validates
    let mut fit_x = Vec::new();
    let mut fit_y = Vec::new();
    let mut val_x = Vec::new();
    let mut val_y = Vec::new();
    for i in 0..n {
        if i % stride == 0 {
            val_x.push(dataset.train.features[i].clone());
            val_y.push(dataset.train.labels[i]);
        } else {
            fit_x.push(dataset.train.features[i].clone());
            fit_y.push(dataset.train.labels[i]);
        }
    }

    let window = 3.min(dataset.n_features).max(1);
    let probe = |id_binding: bool| -> (f64, GenericEncoder) {
        let spec = GenericEncoderSpec::new(dim, dataset.n_features)
            .with_window(window)
            .with_id_binding(id_binding)
            .with_seed(seed);
        let encoder =
            GenericEncoder::from_data(spec, &dataset.train.features).expect("dataset validated");
        let enc_fit = encoder.encode_batch(&fit_x).expect("row widths validated");
        let enc_val = encoder.encode_batch(&val_x).expect("row widths validated");
        let mut model =
            HdcModel::fit(&enc_fit, &fit_y, dataset.n_classes).expect("labels validated");
        model
            .retrain(&enc_fit, &fit_y, 5)
            .expect("inputs validated");
        (model.accuracy(&enc_val, &val_y), encoder)
    };

    let (acc_with, enc_with) = probe(true);
    let (acc_without, enc_without) = probe(false);
    if acc_with >= acc_without {
        (true, Box::new(enc_with))
    } else {
        (false, Box::new(enc_without))
    }
}

/// Trains an HDC pipeline and returns its test accuracy.
pub fn evaluate_hdc(
    kind: EncodingKind,
    dataset: &Dataset,
    dim: usize,
    epochs: usize,
    seed: u64,
) -> f64 {
    let run = train_hdc(kind, dataset, dim, epochs, seed);
    run.test_accuracy(dataset)
}

/// The classical-ML baselines of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MlAlgorithm {
    /// Multi-layer perceptron (scikit-learn-style single hidden layer).
    Mlp,
    /// One-vs-rest RBF-kernel SVM (scikit-learn SVC equivalent).
    Svm,
    /// Random forest.
    RandomForest,
    /// Architecture-searched DNN (AutoKeras stand-in).
    Dnn,
    /// Multinomial logistic regression (discarded in Table 1 but used in
    /// the Fig. 3 device sweep).
    LogisticRegression,
    /// k-nearest neighbours (likewise).
    Knn,
}

impl MlAlgorithm {
    /// The four Table 1 baselines, in column order.
    pub const TABLE1: [MlAlgorithm; 4] = [
        MlAlgorithm::Mlp,
        MlAlgorithm::Svm,
        MlAlgorithm::RandomForest,
        MlAlgorithm::Dnn,
    ];

    /// All implemented baselines.
    pub const ALL: [MlAlgorithm; 6] = [
        MlAlgorithm::Mlp,
        MlAlgorithm::Svm,
        MlAlgorithm::RandomForest,
        MlAlgorithm::Dnn,
        MlAlgorithm::LogisticRegression,
        MlAlgorithm::Knn,
    ];

    /// Column header used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MlAlgorithm::Mlp => "MLP",
            MlAlgorithm::Svm => "SVM",
            MlAlgorithm::RandomForest => "RF",
            MlAlgorithm::Dnn => "DNN",
            MlAlgorithm::LogisticRegression => "LR",
            MlAlgorithm::Knn => "KNN",
        }
    }
}

impl std::fmt::Display for MlAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Trains a classical-ML baseline and returns its test accuracy.
///
/// # Panics
///
/// Panics if the dataset is internally inconsistent.
pub fn evaluate_ml(algo: MlAlgorithm, dataset: &Dataset, seed: u64) -> f64 {
    let x = &dataset.train.features;
    let y = &dataset.train.labels;
    let k = dataset.n_classes;
    let model: Box<dyn Classifier> = match algo {
        MlAlgorithm::Mlp => Box::new(
            Mlp::fit(
                x,
                y,
                k,
                MlpSpec {
                    seed,
                    ..Default::default()
                },
            )
            .expect("dataset validated"),
        ),
        MlAlgorithm::Svm => Box::new(
            RbfSvm::fit(
                x,
                y,
                k,
                RbfSvmSpec {
                    seed,
                    ..Default::default()
                },
            )
            .expect("dataset validated"),
        ),
        MlAlgorithm::RandomForest => Box::new(
            RandomForest::fit(
                x,
                y,
                k,
                RandomForestSpec {
                    seed,
                    ..Default::default()
                },
            )
            .expect("dataset validated"),
        ),
        MlAlgorithm::Dnn => Box::new(
            DnnSearch::fit(
                x,
                y,
                k,
                DnnSearchSpec {
                    seed,
                    ..Default::default()
                },
            )
            .expect("dataset validated"),
        ),
        MlAlgorithm::LogisticRegression => Box::new(
            LogisticRegression::fit(x, y, k, LogisticRegressionSpec::default())
                .expect("dataset validated"),
        ),
        MlAlgorithm::Knn => {
            Box::new(KNearestNeighbors::fit(x, y, k, 5).expect("dataset validated"))
        }
    };
    model.accuracy(&dataset.test.features, &dataset.test.labels)
}
