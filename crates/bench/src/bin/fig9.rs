//! Regenerates **Fig. 9**: per-input inference energy of GENERIC and
//! GENERIC-LP against published HDC accelerators (scaled to 14 nm) and the
//! commodity-device baselines.
//!
//! GENERIC-LP applies the §4.3 techniques on top of the base design:
//! power gating (always on), per-application on-demand dimension
//! reduction, and voltage over-scaling — each validated to cost at most
//! ~3 % accuracy on a held-out probe split (the paper's own LP operating
//! points in Figs. 5-6 sit at comparable losses).
//!
//! Usage: `cargo run -p generic-bench --release --bin fig9 [seed]`

use generic_bench::cost::{hdc_shape, ml_infer_ops, sim_train};
use generic_bench::report::{render_table, si};
use generic_bench::MlAlgorithm;
use generic_datasets::{Benchmark, Dataset};
use generic_devices::reported::ReportedAccelerator;
use generic_devices::Device;
use generic_hdc::metrics::geometric_mean;
use generic_sim::{Accelerator, EnergyOptions, VosOperatingPoint};

const PROBE_INPUTS: usize = 100;
const ACCURACY_TOLERANCE: f64 = 0.03;

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Fig. 9: inference energy of GENERIC vs baselines (seed {seed})\n");

    let mut base_uj = Vec::new();
    let mut lp_uj = Vec::new();
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let dataset = benchmark.load(seed);
        let (mut acc, _) = sim_train(&dataset, 4096, seed);

        // Base GENERIC: full dimensionality, nominal voltage.
        acc.reset_activity();
        for sample in dataset.test.features.iter().take(PROBE_INPUTS) {
            acc.infer(sample).expect("model trained");
        }
        let n = dataset.test.features.len().min(PROBE_INPUTS) as f64;
        let base = acc.energy_report(&EnergyOptions::default()).total_energy_uj / n;

        // LP: pick the smallest dimensionality and deepest voltage scaling
        // that keep probe accuracy within tolerance.
        let full_acc = probe_accuracy(&mut acc, &dataset, 4096);
        let mut dims = 4096;
        for candidate in [512usize, 1024, 2048] {
            if probe_accuracy(&mut acc, &dataset, candidate) >= full_acc - ACCURACY_TOLERANCE {
                dims = candidate;
                break;
            }
        }
        // Narrow the model before over-scaling the voltage: quantized
        // elements tolerate far more bit flips (Fig. 6).
        let mut quant_probe = acc.clone();
        if quant_probe.requantize(8).is_ok()
            && probe_accuracy(&mut quant_probe, &dataset, dims) >= full_acc - ACCURACY_TOLERANCE
        {
            acc.requantize(8).expect("model present and bw valid");
        }
        let mut vos = None;
        for ber in [0.06f64, 0.04, 0.02, 0.01] {
            let mut probe = acc.clone();
            probe
                .inject_class_bit_errors(ber, seed)
                .expect("ber is a probability");
            if probe_accuracy(&mut probe, &dataset, dims) >= full_acc - ACCURACY_TOLERANCE {
                vos = Some(VosOperatingPoint::at_bit_error_rate(ber));
                break;
            }
        }
        acc.reset_activity();
        for sample in dataset.test.features.iter().take(PROBE_INPUTS) {
            acc.infer_reduced(sample, dims).expect("model trained");
        }
        let lp_opts = EnergyOptions {
            power_gating: true,
            vos,
        };
        let lp = acc.energy_report(&lp_opts).total_energy_uj / n;

        base_uj.push(base);
        lp_uj.push(lp);
        rows.push(vec![
            benchmark.name().to_string(),
            si(base * 1e-6, "J"),
            si(lp * 1e-6, "J"),
            format!("{dims}"),
            vos.map_or("off".to_string(), |v| {
                format!("{:.0}%V", 100.0 * v.voltage_scale)
            }),
        ]);
        eprintln!("  finished {}", benchmark.name());
    }

    let header = vec![
        "Dataset".to_string(),
        "GENERIC".to_string(),
        "GENERIC-LP".to_string(),
        "LP dims".to_string(),
        "LP volt".to_string(),
    ];
    println!("{}", render_table(&header, &rows));

    let base_mean = geometric_mean(&base_uj).expect("positive energies");
    let lp_mean = geometric_mean(&lp_uj).expect("positive energies");
    println!("geomean GENERIC:    {}", si(base_mean * 1e-6, "J"));
    println!(
        "geomean GENERIC-LP: {}  ({:.1}x below base; paper: 15.5x)\n",
        si(lp_mean * 1e-6, "J"),
        base_mean / lp_mean
    );

    // Published accelerators, scaled to 14 nm (§5.2.2).
    for acc in ReportedAccelerator::all() {
        let e = acc.inference_energy_uj_14nm();
        println!(
            "{:<18} {}  (GENERIC-LP is {:.1}x below; paper: {})",
            acc.name,
            si(e * 1e-6, "J"),
            e / lp_mean,
            if acc.supports_training {
                "15.7x"
            } else {
                "4.1x"
            }
        );
    }

    // Commodity baselines (geomean over datasets).
    println!();
    let cpu = Device::desktop_cpu();
    let egpu = Device::jetson_tx2_egpu();
    let mut table = Vec::new();
    for (label, device, algo) in [
        ("RF (CPU)", cpu, Some(MlAlgorithm::RandomForest)),
        ("SVM (CPU)", cpu, Some(MlAlgorithm::Svm)),
        ("DNN (eGPU)", egpu, Some(MlAlgorithm::Dnn)),
        ("HDC (eGPU)", egpu, None),
    ] {
        let energies: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|b| {
                let ds = b.load(seed);
                let ops = match algo {
                    Some(a) => ml_infer_ops(a, &ds),
                    None => hdc_shape(&ds, 4096, seed).infer(),
                };
                device.energy_j(&ops, 1) * 1e6
            })
            .collect();
        let mean = geometric_mean(&energies).expect("positive energies");
        table.push(vec![
            label.to_string(),
            si(mean * 1e-6, "J"),
            format!("{:.0}x", mean / lp_mean),
        ]);
    }
    let header = vec![
        "Baseline".to_string(),
        "Energy/input".to_string(),
        "vs GENERIC-LP".to_string(),
    ];
    println!("{}", render_table(&header, &table));
    println!(
        "Paper reference: GENERIC-LP is 1593x below the most efficient ML (RF on CPU) and \
         8796x below HDC on the eGPU."
    );
}

/// Accuracy of the accelerator on a probe slice of the test split at the
/// given dimensionality (does not mutate the model).
fn probe_accuracy(acc: &mut Accelerator, dataset: &Dataset, dims: usize) -> f64 {
    let n = dataset.test.features.len().min(PROBE_INPUTS);
    let correct = dataset.test.features[..n]
        .iter()
        .zip(&dataset.test.labels[..n])
        .filter(|&(x, &y)| {
            acc.infer_reduced(x, dims)
                .expect("model trained and dims valid")
                .prediction
                == y
        })
        .count();
    correct as f64 / n as f64
}
