//! Load generator for the supervised sharded serving runtime: drives a
//! closed-loop client fleet against [`Server`] at 1 shard and at N
//! shards, and writes `BENCH_serve.json` with QPS and latency
//! percentiles per configuration.
//!
//! Acceptance gate (enforced in full mode on machines with ≥ 4 cores;
//! always recorded): multi-shard QPS ≥ 2× single-shard QPS.
//!
//! Usage: `cargo run -p generic-bench --release --bin serve
//! [seed] [--smoke]`

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use generic_bench::cli;
use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
use generic_hdc::{HdcPipeline, ServeConfig, Server, ServerHandle, SubmitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 10;
const N_CLASSES: usize = 3;

struct Config {
    dim: usize,
    bootstrap_samples: usize,
    requests: usize,
    clients: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 2048,
            bootstrap_samples: 240,
            requests: 24_000,
            clients: 8,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 512,
            bootstrap_samples: 90,
            requests: 3_000,
            clients: 4,
        }
    }
}

/// One measured server configuration.
struct Run {
    shards: usize,
    answered: u64,
    wall: Duration,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

fn sample(rng: &mut StdRng, class: usize) -> Vec<f64> {
    (0..N_FEATURES)
        .map(|j| {
            let band = j / (N_FEATURES / N_CLASSES).max(1);
            let base = if band == class { 8.0 } else { 1.0 };
            base + rng.random_range(-0.5..0.5)
        })
        .collect()
}

fn scratch_dir(seed: u64, shards: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ghdc-serve-bench-{}-{seed}-{shards}",
        std::process::id()
    ))
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index].as_secs_f64() * 1e6
}

/// One closed-loop measurement: `clients` threads each submit and wait,
/// one request at a time, until the shared budget is spent.
fn measure(pipeline: &HdcPipeline, config: &Config, shards: usize, seed: u64) -> Run {
    let dir = scratch_dir(seed, shards);
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        CheckpointStore::open(&dir, 2, RetryPolicy::default()).expect("scratch dir is creatable");
    let rt_config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime =
        OnlineRuntime::new(pipeline.clone(), store, rt_config).expect("valid runtime config");
    let serve_config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let server = Server::start(runtime, serve_config).expect("server starts");
    let handle = server.handle();

    // Warm-up: fill every shard's ladder estimate before the clock runs.
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..64 {
        let class = rng.random_range(0..N_CLASSES);
        if let Ok(ticket) = handle.submit(sample(&mut rng, class), None) {
            let _ = ticket.wait();
        }
    }

    let remaining = AtomicU64::new(config.requests as u64);
    let start = Instant::now();
    let latencies: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let handle: ServerHandle = handle.clone();
                let remaining = &remaining;
                scope.spawn(move || client_loop(&handle, remaining, seed ^ (client as u64 + 1)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread completes"))
            .collect()
    });
    let wall = start.elapsed();
    let report = server.drain().expect("drain joins the fleet");
    let _ = std::fs::remove_dir_all(&dir);

    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let answered = all.len() as u64;
    assert_eq!(
        report.workers.answered,
        answered + 64, // the warm-up requests
        "every admitted request must be answered"
    );
    Run {
        shards,
        answered,
        wall,
        qps: answered as f64 / wall.as_secs_f64(),
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        p999_us: percentile_us(&all, 0.999),
        max_us: percentile_us(&all, 1.0),
    }
}

fn client_loop(handle: &ServerHandle, remaining: &AtomicU64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::new();
    loop {
        if remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_err()
        {
            return latencies;
        }
        let class = rng.random_range(0..N_CLASSES);
        let features = sample(&mut rng, class);
        loop {
            match handle.submit(features.clone(), None) {
                Ok(ticket) => {
                    let answer = ticket.wait().expect("unbudgeted request is answered");
                    latencies.push(answer.elapsed);
                    break;
                }
                Err(SubmitError::QueueFull) => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => panic!("clean request refused: {e}"),
            }
        }
    }
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    let cores = cli::default_threads();
    let multi_shards = cores.clamp(2, 4);
    println!(
        "serve bench: dim={} requests={} clients={} cores={cores} shards=[1, {multi_shards}] \
         seed={seed} mode={}",
        config.dim,
        config.requests,
        config.clients,
        if smoke { "smoke" } else { "full" }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let features: Vec<Vec<f64>> = (0..config.bootstrap_samples)
        .map(|i| sample(&mut rng, i % N_CLASSES))
        .collect();
    let labels: Vec<usize> = (0..config.bootstrap_samples)
        .map(|i| i % N_CLASSES)
        .collect();
    let spec = GenericEncoderSpec::new(config.dim, N_FEATURES).with_seed(seed);
    let pipeline = HdcPipeline::train(spec, &features, &labels, N_CLASSES, 5)
        .expect("separable bootstrap data");

    let runs: Vec<Run> = [1, multi_shards]
        .iter()
        .map(|&shards| {
            let run = measure(&pipeline, &config, shards, seed);
            println!(
                "  {} shard(s): {:.0} QPS ({} answered in {:.2} s), p50 {:.1} µs, \
                 p99 {:.1} µs, p999 {:.1} µs, max {:.1} µs",
                run.shards,
                run.qps,
                run.answered,
                run.wall.as_secs_f64(),
                run.p50_us,
                run.p99_us,
                run.p999_us,
                run.max_us
            );
            run
        })
        .collect();

    let speedup = runs[1].qps / runs[0].qps;
    // The 2× scaling gate is a perf gate: enforce it only on full runs
    // with enough cores to host 4 shards + clients; always record it.
    let enforced = !smoke && cores >= 4;
    let passed = speedup >= 2.0;
    println!(
        "multi-shard speedup: {speedup:.2}× ({} shards vs 1) — gate {}{}",
        multi_shards,
        if passed { "PASS" } else { "FAIL" },
        if enforced { "" } else { " (not enforced)" }
    );

    let json = render_json(
        &config, seed, smoke, cores, &runs, speedup, enforced, passed,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if enforced && !passed {
        eprintln!("GATE FAILED: multi-shard QPS must be >= 2x single-shard");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    seed: u64,
    smoke: bool,
    cores: usize,
    runs: &[Run],
    speedup: f64,
    enforced: bool,
    passed: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!(
        "  \"config\": {{\"dim\": {}, \"requests\": {}, \"clients\": {}}},\n",
        config.dim, config.requests, config.clients
    ));
    s.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"qps\": {:.1}, \"answered\": {}, \"wall_s\": {:.4}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"max_us\": {:.2}}}{}\n",
            run.shards,
            run.qps,
            run.answered,
            run.wall.as_secs_f64(),
            run.p50_us,
            run.p99_us,
            run.p999_us,
            run.max_us,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"gates\": {{\n    \"multi_shard_2x\": {{\"passed\": {passed}, \"enforced\": {enforced}, \
         \"speedup\": {speedup:.3}}}\n  }}\n"
    ));
    s.push_str("}\n");
    s
}
