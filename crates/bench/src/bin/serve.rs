//! Load generator for the supervised sharded serving runtime: drives a
//! closed-loop client fleet against [`Server`] at 1 shard and at N
//! shards, then a **netload** stage — the same fleet pipelined (window
//! B = 64) in-process and over real loopback TCP sockets through
//! [`NetFrontend`] — and writes `BENCH_serve.json` with QPS and latency
//! percentiles per configuration.
//!
//! Acceptance gates:
//! - multi-shard QPS ≥ 2× single-shard (enforced in full mode, ≥ 4
//!   cores; always recorded)
//! - loopback socket QPS ≥ 0.5× in-process QPS at B = 64 (enforced in
//!   full mode, ≥ 2 cores; always recorded)
//! - netload answered > 0 with zero scalar-oracle divergences (always
//!   enforced — every socket answer is replayed against the pinned
//!   model at the tier the worker reported)
//!
//! Usage: `cargo run -p generic-bench --release --bin serve
//! [seed] [--smoke]`

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use generic_bench::cli;
use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::net::{read_frame, write_frame, NetConfig, NetFrontend};
use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
use generic_hdc::{
    Frame, HdcPipeline, NetStatus, NormMode, PredictOptions, ServeConfig, Server, ServerHandle,
    SubmitError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 10;
const N_CLASSES: usize = 3;

/// Pipeline window for the netload stage: each client keeps up to this
/// many requests in flight per connection.
const NET_WINDOW: usize = 64;

/// Distinct feature vectors the netload stage cycles through (shared by
/// the clients and the oracle replay cache).
const POOL_SIZE: usize = 256;

struct Config {
    dim: usize,
    bootstrap_samples: usize,
    requests: usize,
    clients: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 2048,
            bootstrap_samples: 240,
            requests: 24_000,
            clients: 8,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 512,
            bootstrap_samples: 90,
            requests: 3_000,
            clients: 4,
        }
    }
}

/// One measured server configuration.
struct Run {
    shards: usize,
    answered: u64,
    wall: Duration,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

fn sample(rng: &mut StdRng, class: usize) -> Vec<f64> {
    (0..N_FEATURES)
        .map(|j| {
            let band = j / (N_FEATURES / N_CLASSES).max(1);
            let base = if band == class { 8.0 } else { 1.0 };
            base + rng.random_range(-0.5..0.5)
        })
        .collect()
}

fn scratch_dir(seed: u64, shards: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ghdc-serve-bench-{}-{seed}-{shards}",
        std::process::id()
    ))
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index].as_secs_f64() * 1e6
}

/// One closed-loop measurement: `clients` threads each submit and wait,
/// one request at a time, until the shared budget is spent.
fn measure(pipeline: &HdcPipeline, config: &Config, shards: usize, seed: u64) -> Run {
    let dir = scratch_dir(seed, shards);
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        CheckpointStore::open(&dir, 2, RetryPolicy::default()).expect("scratch dir is creatable");
    let rt_config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime =
        OnlineRuntime::new(pipeline.clone(), store, rt_config).expect("valid runtime config");
    let serve_config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let server = Server::start(runtime, serve_config).expect("server starts");
    let handle = server.handle();

    // Warm-up: fill every shard's ladder estimate before the clock runs.
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..64 {
        let class = rng.random_range(0..N_CLASSES);
        if let Ok(ticket) = handle.submit(sample(&mut rng, class), None) {
            let _ = ticket.wait();
        }
    }

    let remaining = AtomicU64::new(config.requests as u64);
    let start = Instant::now();
    let latencies: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let handle: ServerHandle = handle.clone();
                let remaining = &remaining;
                scope.spawn(move || client_loop(&handle, remaining, seed ^ (client as u64 + 1)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread completes"))
            .collect()
    });
    let wall = start.elapsed();
    let report = server.drain().expect("drain joins the fleet");
    let _ = std::fs::remove_dir_all(&dir);

    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let answered = all.len() as u64;
    assert_eq!(
        report.workers.answered,
        answered + 64, // the warm-up requests
        "every admitted request must be answered"
    );
    Run {
        shards,
        answered,
        wall,
        qps: answered as f64 / wall.as_secs_f64(),
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        p999_us: percentile_us(&all, 0.999),
        max_us: percentile_us(&all, 1.0),
    }
}

fn client_loop(handle: &ServerHandle, remaining: &AtomicU64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::new();
    loop {
        if remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_err()
        {
            return latencies;
        }
        let class = rng.random_range(0..N_CLASSES);
        let features = sample(&mut rng, class);
        loop {
            match handle.submit(features.clone(), None) {
                Ok(ticket) => {
                    let answer = ticket.wait().expect("unbudgeted request is answered");
                    latencies.push(answer.elapsed);
                    break;
                }
                Err(SubmitError::QueueFull) => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => panic!("clean request refused: {e}"),
            }
        }
    }
}

/// The shared request pool for the pipelined stages: `POOL_SIZE`
/// deterministic vectors cycled by every client, so the netload oracle
/// can cache its replays by (pool index, tier) instead of re-encoding
/// every answer.
fn request_pool(seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    (0..POOL_SIZE)
        .map(|i| sample(&mut rng, i % N_CLASSES))
        .collect()
}

/// Closed-loop **pipelined** in-process measurement: each client keeps
/// up to [`NET_WINDOW`] tickets in flight and redeems them in FIFO
/// order, measuring client-side submit→answer latency. This is the
/// apples-to-apples baseline for the socket stage (same window, same
/// request pool, same accounting).
fn measure_pipelined(pipeline: &HdcPipeline, config: &Config, shards: usize, seed: u64) -> Run {
    let dir = scratch_dir(seed, shards + 100);
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        CheckpointStore::open(&dir, 2, RetryPolicy::default()).expect("scratch dir is creatable");
    let rt_config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime =
        OnlineRuntime::new(pipeline.clone(), store, rt_config).expect("valid runtime config");
    let server = Server::start(
        runtime,
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    let pool = request_pool(seed);

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..64 {
        if let Ok(ticket) = handle.submit(pool[rng.random_range(0..POOL_SIZE)].clone(), None) {
            let _ = ticket.wait();
        }
    }

    let remaining = AtomicU64::new(config.requests as u64);
    let start = Instant::now();
    let latencies: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let handle: ServerHandle = handle.clone();
                let remaining = &remaining;
                let pool = &pool;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (client as u64 + 1));
                    let mut latencies = Vec::new();
                    let mut inflight: std::collections::VecDeque<(Instant, _)> =
                        std::collections::VecDeque::new();
                    loop {
                        // Fill the window while budget remains.
                        while inflight.len() < NET_WINDOW
                            && remaining
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                    n.checked_sub(1)
                                })
                                .is_ok()
                        {
                            let features = pool[rng.random_range(0..POOL_SIZE)].clone();
                            loop {
                                match handle.submit(features.clone(), None) {
                                    Ok(ticket) => {
                                        inflight.push_back((Instant::now(), ticket));
                                        break;
                                    }
                                    Err(SubmitError::QueueFull) => {
                                        std::thread::sleep(Duration::from_micros(50));
                                    }
                                    Err(e) => panic!("clean request refused: {e}"),
                                }
                            }
                        }
                        // Redeem the oldest; empty window means done.
                        match inflight.pop_front() {
                            Some((sent, ticket)) => {
                                ticket.wait().expect("unbudgeted request is answered");
                                latencies.push(sent.elapsed());
                            }
                            None => return latencies,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread completes"))
            .collect()
    });
    let wall = start.elapsed();
    let report = server.drain().expect("drain joins the fleet");
    let _ = std::fs::remove_dir_all(&dir);

    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let answered = all.len() as u64;
    assert_eq!(
        report.workers.answered,
        answered + 64,
        "every admitted request must be answered"
    );
    Run {
        shards,
        answered,
        wall,
        qps: answered as f64 / wall.as_secs_f64(),
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        p999_us: percentile_us(&all, 0.999),
        max_us: percentile_us(&all, 1.0),
    }
}

/// The **netload** measurement: the same pipelined fleet, but every
/// request travels the framed TCP protocol over a real loopback socket
/// through [`NetFrontend`] — one connection per client, window
/// [`NET_WINDOW`], client-side latency from frame write to answer read.
///
/// Every answer is replayed against the scalar oracle (the model is
/// pinned: no learn traffic) at the `dims_used` tier the worker
/// reported; the second return value counts divergences (must be 0).
fn measure_netload(
    pipeline: &HdcPipeline,
    config: &Config,
    shards: usize,
    seed: u64,
) -> (Run, u64) {
    let dir = scratch_dir(seed, shards + 200);
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        CheckpointStore::open(&dir, 2, RetryPolicy::default()).expect("scratch dir is creatable");
    let rt_config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime =
        OnlineRuntime::new(pipeline.clone(), store, rt_config).expect("valid runtime config");
    let server = Server::start(
        runtime,
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    let frontend = NetFrontend::bind("127.0.0.1:0", handle.clone(), NetConfig::default())
        .expect("loopback binds");
    let addr = frontend.local_addr();
    let pool = request_pool(seed);

    // Warm-up in-process: fills every shard's ladder estimate without
    // counting against the socket clock.
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..64 {
        if let Ok(ticket) = handle.submit(pool[rng.random_range(0..POOL_SIZE)].clone(), None) {
            let _ = ticket.wait();
        }
    }

    let remaining = AtomicU64::new(config.requests as u64);
    let start = Instant::now();
    let results: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let remaining = &remaining;
                let pool = &pool;
                scope.spawn(move || {
                    net_client_loop(addr, remaining, pool, pipeline, seed ^ (client as u64 + 1))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net client completes"))
            .collect()
    });
    let wall = start.elapsed();
    let net_stats = frontend.shutdown();
    let report = server.drain().expect("drain joins the fleet");
    let _ = std::fs::remove_dir_all(&dir);

    let mut all = Vec::new();
    let mut divergences = 0u64;
    for (latencies, diverged) in results {
        all.extend(latencies);
        divergences += diverged;
    }
    all.sort_unstable();
    let answered = all.len() as u64;
    assert_eq!(net_stats.answered, answered, "socket answer accounting");
    assert_eq!(
        report.workers.answered,
        answered + 64,
        "every admitted request must be answered"
    );
    (
        Run {
            shards,
            answered,
            wall,
            qps: answered as f64 / wall.as_secs_f64(),
            p50_us: percentile_us(&all, 0.50),
            p99_us: percentile_us(&all, 0.99),
            p999_us: percentile_us(&all, 0.999),
            max_us: percentile_us(&all, 1.0),
        },
        divergences,
    )
}

/// One netload client: a single framed TCP connection pipelining up to
/// [`NET_WINDOW`] requests, replaying every answer against the scalar
/// oracle (cached by pool index × tier).
fn net_client_loop(
    addr: SocketAddr,
    remaining: &AtomicU64,
    pool: &[Vec<f64>],
    pipeline: &HdcPipeline,
    seed: u64,
) -> (Vec<Duration>, u64) {
    let stream = TcpStream::connect(addr).expect("loopback connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout is settable");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::new();
    let mut divergences = 0u64;
    // request id → (write instant, pool index)
    let mut inflight: HashMap<u64, (Instant, usize)> = HashMap::new();
    let mut next_id = 0u64;
    // (pool index, dims_used) → oracle label; encodes each pool entry
    // at most once.
    let mut encoded_cache: HashMap<usize, _> = HashMap::new();
    let mut oracle_cache: HashMap<(usize, u32), usize> = HashMap::new();

    let send = |id: &mut u64,
                pool_idx: usize,
                writer: &mut TcpStream,
                inflight: &mut HashMap<u64, (Instant, usize)>| {
        let frame = Frame::Infer {
            request_id: *id,
            deadline_us: 0,
            tenant: None,
            features: pool[pool_idx].clone(),
        };
        inflight.insert(*id, (Instant::now(), pool_idx));
        *id += 1;
        write_frame(writer, &frame).expect("request writes");
    };

    loop {
        while inflight.len() < NET_WINDOW
            && remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        {
            let pool_idx = rng.random_range(0..pool.len());
            send(&mut next_id, pool_idx, &mut writer, &mut inflight);
        }
        if inflight.is_empty() {
            return (latencies, divergences);
        }
        match read_frame(&mut reader).expect("response arrives") {
            Some(Frame::Answer {
                request_id,
                label,
                dims_used,
                ..
            }) => {
                let (sent, pool_idx) = inflight
                    .remove(&request_id)
                    .expect("answer matches an in-flight request");
                latencies.push(sent.elapsed());
                let oracle = *oracle_cache
                    .entry((pool_idx, dims_used))
                    .or_insert_with(|| {
                        let encoded = encoded_cache.entry(pool_idx).or_insert_with(|| {
                            pipeline.encode(&pool[pool_idx]).expect("clean row encodes")
                        });
                        let opts = PredictOptions::reduced(dims_used as usize, NormMode::Updated);
                        pipeline
                            .model()
                            .try_predict_with(encoded, opts)
                            .expect("oracle scores")
                    });
                if oracle as u64 != label {
                    divergences += 1;
                }
            }
            Some(Frame::Refusal {
                request_id,
                status: NetStatus::QueueFull,
                ..
            }) => {
                // Backpressure: retry the same pool entry, like the
                // in-process clients do.
                let (_, pool_idx) = inflight
                    .remove(&request_id)
                    .expect("refusal matches an in-flight request");
                std::thread::sleep(Duration::from_micros(50));
                send(&mut next_id, pool_idx, &mut writer, &mut inflight);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    let cores = cli::default_threads();
    let multi_shards = cores.clamp(2, 4);
    println!(
        "serve bench: dim={} requests={} clients={} cores={cores} shards=[1, {multi_shards}] \
         seed={seed} mode={}",
        config.dim,
        config.requests,
        config.clients,
        if smoke { "smoke" } else { "full" }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let features: Vec<Vec<f64>> = (0..config.bootstrap_samples)
        .map(|i| sample(&mut rng, i % N_CLASSES))
        .collect();
    let labels: Vec<usize> = (0..config.bootstrap_samples)
        .map(|i| i % N_CLASSES)
        .collect();
    let spec = GenericEncoderSpec::new(config.dim, N_FEATURES).with_seed(seed);
    let pipeline = HdcPipeline::train(spec, &features, &labels, N_CLASSES, 5)
        .expect("separable bootstrap data");

    let runs: Vec<Run> = [1, multi_shards]
        .iter()
        .map(|&shards| {
            let run = measure(&pipeline, &config, shards, seed);
            println!(
                "  {} shard(s): {:.0} QPS ({} answered in {:.2} s), p50 {:.1} µs, \
                 p99 {:.1} µs, p999 {:.1} µs, max {:.1} µs",
                run.shards,
                run.qps,
                run.answered,
                run.wall.as_secs_f64(),
                run.p50_us,
                run.p99_us,
                run.p999_us,
                run.max_us
            );
            run
        })
        .collect();

    let speedup = runs[1].qps / runs[0].qps;
    // The 2× scaling gate is a perf gate: enforce it only on full runs
    // with enough cores to host 4 shards + clients; always record it.
    let enforced = !smoke && cores >= 4;
    let passed = speedup >= 2.0;
    println!(
        "multi-shard speedup: {speedup:.2}× ({} shards vs 1) — gate {}{}",
        multi_shards,
        if passed { "PASS" } else { "FAIL" },
        if enforced { "" } else { " (not enforced)" }
    );

    // Netload stage: the same fleet pipelined at B = NET_WINDOW,
    // in-process vs. over real loopback sockets.
    let inproc = measure_pipelined(&pipeline, &config, multi_shards, seed);
    println!(
        "  inproc  B={NET_WINDOW}: {:.0} QPS ({} answered in {:.2} s), p50 {:.1} µs, \
         p99 {:.1} µs, p999 {:.1} µs, max {:.1} µs",
        inproc.qps,
        inproc.answered,
        inproc.wall.as_secs_f64(),
        inproc.p50_us,
        inproc.p99_us,
        inproc.p999_us,
        inproc.max_us
    );
    let (loopback, divergences) = measure_netload(&pipeline, &config, multi_shards, seed);
    println!(
        "  netload B={NET_WINDOW}: {:.0} QPS ({} answered in {:.2} s), p50 {:.1} µs, \
         p99 {:.1} µs, p999 {:.1} µs, max {:.1} µs, oracle divergences {divergences}",
        loopback.qps,
        loopback.answered,
        loopback.wall.as_secs_f64(),
        loopback.p50_us,
        loopback.p99_us,
        loopback.p999_us,
        loopback.max_us
    );

    // Socket-transport overhead gate: the framed protocol over loopback
    // must keep at least half the in-process pipelined throughput. A
    // perf gate, so enforced only with ≥ 2 cores (one can't host the
    // fleet and the socket threads at once); always recorded.
    let net_ratio = loopback.qps / inproc.qps;
    let net_ratio_enforced = !smoke && cores >= 2;
    let net_ratio_passed = net_ratio >= 0.5;
    println!(
        "loopback/in-process ratio: {net_ratio:.2} — gate {}{}",
        if net_ratio_passed { "PASS" } else { "FAIL" },
        if net_ratio_enforced {
            ""
        } else {
            " (not enforced)"
        }
    );
    // Correctness gate, always enforced: the socket path answered real
    // traffic and never diverged from the scalar oracle.
    let net_answered_passed = loopback.answered > 0 && divergences == 0;
    println!(
        "netload correctness: answered {} with {divergences} divergence(s) — gate {}",
        loopback.answered,
        if net_answered_passed { "PASS" } else { "FAIL" }
    );

    let net = NetSection {
        inproc,
        loopback,
        divergences,
        ratio: net_ratio,
        ratio_enforced: net_ratio_enforced,
        ratio_passed: net_ratio_passed,
        answered_passed: net_answered_passed,
    };
    let json = render_json(
        &config, seed, smoke, cores, &runs, speedup, enforced, passed, &net,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    let mut failed = false;
    if enforced && !passed {
        eprintln!("GATE FAILED: multi-shard QPS must be >= 2x single-shard");
        failed = true;
    }
    if net_ratio_enforced && !net_ratio_passed {
        eprintln!("GATE FAILED: loopback QPS must be >= 0.5x in-process at B={NET_WINDOW}");
        failed = true;
    }
    if !net_answered_passed {
        eprintln!("GATE FAILED: netload must answer traffic with zero oracle divergences");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Everything the netload stage contributes to `BENCH_serve.json`.
struct NetSection {
    inproc: Run,
    loopback: Run,
    divergences: u64,
    ratio: f64,
    ratio_enforced: bool,
    ratio_passed: bool,
    answered_passed: bool,
}

fn render_run_json(run: &Run) -> String {
    format!(
        "{{\"shards\": {}, \"qps\": {:.1}, \"answered\": {}, \"wall_s\": {:.4}, \
         \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"max_us\": {:.2}}}",
        run.shards,
        run.qps,
        run.answered,
        run.wall.as_secs_f64(),
        run.p50_us,
        run.p99_us,
        run.p999_us,
        run.max_us
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    seed: u64,
    smoke: bool,
    cores: usize,
    runs: &[Run],
    speedup: f64,
    enforced: bool,
    passed: bool,
    net: &NetSection,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!(
        "  \"config\": {{\"dim\": {}, \"requests\": {}, \"clients\": {}}},\n",
        config.dim, config.requests, config.clients
    ));
    s.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"qps\": {:.1}, \"answered\": {}, \"wall_s\": {:.4}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"max_us\": {:.2}}}{}\n",
            run.shards,
            run.qps,
            run.answered,
            run.wall.as_secs_f64(),
            run.p50_us,
            run.p99_us,
            run.p999_us,
            run.max_us,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"network\": {{\n    \"window\": {NET_WINDOW},\n    \"inproc\": {},\n    \
         \"loopback\": {},\n    \"divergences\": {}\n  }},\n",
        render_run_json(&net.inproc),
        render_run_json(&net.loopback),
        net.divergences
    ));
    s.push_str(&format!(
        "  \"gates\": {{\n    \"multi_shard_2x\": {{\"passed\": {passed}, \"enforced\": {enforced}, \
         \"speedup\": {speedup:.3}}},\n    \"net_half_inproc\": {{\"passed\": {}, \"enforced\": {}, \
         \"ratio\": {:.3}}},\n    \"net_answered\": {{\"passed\": {}, \"enforced\": true, \
         \"answered\": {}, \"divergences\": {}}}\n  }}\n",
        net.ratio_passed,
        net.ratio_enforced,
        net.ratio,
        net.answered_passed,
        net.loopback.answered,
        net.divergences
    ));
    s.push_str("}\n");
    s
}
