//! Regenerates **Fig. 8**: per-input training energy and execution time of
//! the GENERIC accelerator versus the most efficient (RF) and most
//! accurate (SVM) conventional baselines on the CPU, and DNN / HDC on the
//! edge GPU (geometric mean over the eleven benchmarks).
//!
//! Usage: `cargo run -p generic-bench --release --bin fig8 [seed]`

use generic_bench::cost::{hdc_shape, ml_train_ops, sim_train};
use generic_bench::report::{render_table, si};
use generic_bench::MlAlgorithm;
use generic_datasets::Benchmark;
use generic_devices::Device;
use generic_hdc::metrics::geometric_mean;
use generic_sim::EnergyOptions;

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Fig. 8: per-input training energy and time (seed {seed})\n");

    // GENERIC on the accelerator simulator.
    let mut sim_energy = Vec::new();
    let mut sim_time = Vec::new();
    let mut sim_power = Vec::new();
    for benchmark in Benchmark::ALL {
        let dataset = benchmark.load(seed);
        let n = dataset.train.len() as f64;
        let (acc, _) = sim_train(&dataset, 4096, seed);
        let report = acc.energy_report(&EnergyOptions::default());
        sim_energy.push(report.total_energy_uj * 1e-6 / n);
        sim_time.push(report.duration_s / n);
        sim_power.push(report.total_power_mw());
        eprintln!("  simulated {}", benchmark.name());
    }
    let gm = |v: &[f64]| geometric_mean(v).expect("positive values");
    let generic_e = gm(&sim_energy);
    let generic_t = gm(&sim_time);

    let cpu = Device::desktop_cpu();
    let egpu = Device::jetson_tx2_egpu();
    let baselines = [
        ("GENERIC", None, None),
        ("RF (CPU)", Some(cpu), Some(MlAlgorithm::RandomForest)),
        ("SVM (CPU)", Some(cpu), Some(MlAlgorithm::Svm)),
        ("DNN (eGPU)", Some(egpu), Some(MlAlgorithm::Dnn)),
        ("HDC (eGPU)", Some(egpu), None),
    ];

    let header = vec![
        "Platform".to_string(),
        "Energy/input".to_string(),
        "Time/input".to_string(),
        "vs GENERIC (E)".to_string(),
        "vs GENERIC (t)".to_string(),
    ];
    let mut rows = Vec::new();
    for (label, device, algo) in baselines {
        let (e, t) = match device {
            None => (generic_e, generic_t),
            Some(device) => {
                let mut energies = Vec::new();
                let mut times = Vec::new();
                for b in Benchmark::ALL {
                    let ds = b.load(seed);
                    let n = ds.train.len() as f64;
                    let ops = match algo {
                        Some(a) => ml_train_ops(a, &ds),
                        // The paper's eGPU-HDC baseline: GENERIC encoding
                        // retrained 20 epochs on the GPU.
                        None => hdc_shape(&ds, 4096, seed).train(ds.train.len(), 20, 0.15),
                    };
                    energies.push(device.energy_j(&ops, 20) / n);
                    times.push(device.execution_time_s(&ops, 20) / n);
                }
                (gm(&energies), gm(&times))
            }
        };
        rows.push(vec![
            label.to_string(),
            si(e, "J"),
            si(t, "s"),
            format!("{:.0}x", e / generic_e),
            format!("{:.2}x", t / generic_t),
        ]);
    }
    println!("{}", render_table(&header, &rows));

    println!(
        "GENERIC average training power: {:.2} mW (paper: 2.06 mW)",
        sim_power.iter().sum::<f64>() / sim_power.len() as f64
    );
    println!(
        "Paper reference: GENERIC improves training energy 528x over RF, 1257x over DNN, \n\
         694x over HDC-on-eGPU; RF trains ~12x faster (but at ~3 orders more energy); \n\
         GENERIC trains ~11x faster than DNN and ~3.7x faster than HDC on the eGPU."
    );
}
