//! Perf-regression harness for the word-parallel HDC kernels: times the
//! four hot paths (encode, train, retrain, infer) on the ISOLET, MNIST,
//! and PAMAP2 synthetics with both the word-parallel kernels and their
//! retained scalar references, and writes `BENCH_hotpaths.json` with
//! median ns/op for each.
//!
//! In full mode the harness *enforces* the acceptance gates — at least
//! 4× on `encode_bins` (dim 4096, ISOLET-shaped) and at least 2× on the
//! full train+retrain end-to-end path — exiting nonzero on a regression.
//! `--smoke` runs a reduced-size configuration (CI-friendly) that prints
//! the speedups without enforcing them.
//!
//! Usage: `cargo run -p generic-bench --release --bin hotpaths
//! [seed] [--threads N] [--smoke]`

use std::hint::black_box;
use std::time::Instant;

use generic_bench::cli;
use generic_bench::report::render_table;
use generic_bench::runners::DEFAULT_EPOCHS;
use generic_datasets::{Benchmark, Dataset};
use generic_hdc::encoding::{GenericEncoder, GenericEncoderSpec};
use generic_hdc::{HdcModel, IntHv, PredictOptions};

/// The acceptance gates, in full mode: minimum median speedup of the
/// bit-sliced `encode_bins` over the scalar reference on ISOLET, and of
/// the end-to-end train+retrain path over the scalar baseline.
const GATE_ENCODE_SPEEDUP: f64 = 4.0;
const GATE_E2E_SPEEDUP: f64 = 2.0;
/// Retraining must never be slower than the scalar reference, on any
/// dataset — the adaptive thread/blocking thresholds fall back to the
/// scalar path whenever the problem is too small to amortise overhead.
const GATE_RETRAIN_SPEEDUP: f64 = 1.0;

struct Config {
    dim: usize,
    epochs: usize,
    encode_reps: usize,
    infer_reps: usize,
    retrain_reps: usize,
    e2e_reps: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 4096,
            epochs: DEFAULT_EPOCHS,
            encode_reps: 7,
            infer_reps: 7,
            retrain_reps: 3,
            e2e_reps: 3,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 1024,
            epochs: 3,
            encode_reps: 3,
            infer_reps: 3,
            retrain_reps: 2,
            e2e_reps: 2,
        }
    }
}

/// One measured hot path: median ns/op of the scalar reference and the
/// word-parallel kernel.
struct Measurement {
    path: &'static str,
    scalar_ns: f64,
    fast_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        if self.fast_ns > 0.0 {
            self.scalar_ns / self.fast_ns
        } else {
            f64::INFINITY
        }
    }
}

struct DatasetReport {
    name: &'static str,
    measurements: Vec<Measurement>,
}

impl DatasetReport {
    fn speedup_of(&self, path: &str) -> f64 {
        self.measurements
            .iter()
            .find(|m| m.path == path)
            .map_or(0.0, Measurement::speedup)
    }
}

fn main() {
    let seed = cli::seed_arg(42);
    let threads = cli::threads_arg();
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };

    println!(
        "hotpaths: dim={} epochs={} threads={} seed={} mode={}",
        config.dim,
        config.epochs,
        threads,
        seed,
        if smoke { "smoke" } else { "full" }
    );

    let benchmarks = [Benchmark::Isolet, Benchmark::Mnist, Benchmark::Pamap2];
    let mut reports = Vec::new();
    for benchmark in benchmarks {
        let dataset = benchmark.load(seed);
        println!("\n== {} ==", dataset.name);
        reports.push(measure_dataset(&dataset, &config, threads, seed));
    }

    let header: Vec<String> = ["dataset", "path", "scalar ns/op", "fast ns/op", "speedup"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let mut rows = Vec::new();
    for report in &reports {
        for m in &report.measurements {
            rows.push(vec![
                report.name.to_string(),
                m.path.to_string(),
                format!("{:.0}", m.scalar_ns),
                format!("{:.0}", m.fast_ns),
                format!("{:.2}x", m.speedup()),
            ]);
        }
    }
    println!("\n{}", render_table(&header, &rows));

    let json = render_json(&reports, &config, threads, seed, smoke);
    std::fs::write("BENCH_hotpaths.json", &json).expect("write BENCH_hotpaths.json");
    println!("wrote BENCH_hotpaths.json");

    let encode_speedup = reports[0].speedup_of("encode_bins");
    let e2e_speedup = reports[0].speedup_of("train_retrain_e2e");
    println!(
        "gates: encode_bins {encode_speedup:.2}x (need {GATE_ENCODE_SPEEDUP:.1}x), \
         train+retrain e2e {e2e_speedup:.2}x (need {GATE_E2E_SPEEDUP:.1}x), \
         retrain >= {GATE_RETRAIN_SPEEDUP:.1}x on every dataset"
    );
    if smoke {
        println!("smoke mode: gates reported, not enforced");
        return;
    }
    let mut failed = false;
    if encode_speedup < GATE_ENCODE_SPEEDUP {
        eprintln!(
            "GATE FAILED: encode_bins speedup {encode_speedup:.2}x < {GATE_ENCODE_SPEEDUP:.1}x"
        );
        failed = true;
    }
    if e2e_speedup < GATE_E2E_SPEEDUP {
        eprintln!("GATE FAILED: e2e speedup {e2e_speedup:.2}x < {GATE_E2E_SPEEDUP:.1}x");
        failed = true;
    }
    for report in &reports {
        let retrain_speedup = report.speedup_of("retrain");
        if retrain_speedup < GATE_RETRAIN_SPEEDUP {
            eprintln!(
                "GATE FAILED: retrain speedup {retrain_speedup:.2}x < \
                 {GATE_RETRAIN_SPEEDUP:.1}x on {}",
                report.name
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("all gates passed");
}

fn measure_dataset(dataset: &Dataset, config: &Config, threads: usize, seed: u64) -> DatasetReport {
    let spec = GenericEncoderSpec::new(config.dim, dataset.n_features)
        .with_window(3.min(dataset.n_features).max(1))
        .with_seed(seed);
    let encoder =
        GenericEncoder::from_data(spec, &dataset.train.features).expect("dataset validated");

    // Quantize once: both encode kernels consume the same bin vectors.
    let train_bins: Vec<Vec<usize>> = dataset
        .train
        .features
        .iter()
        .map(|x| encoder.quantizer().bins(x).expect("row widths validated"))
        .collect();
    let test_bins: Vec<Vec<usize>> = dataset
        .test
        .features
        .iter()
        .map(|x| encoder.quantizer().bins(x).expect("row widths validated"))
        .collect();

    // --- encode_bins: scalar reference vs bit-sliced bundling ---
    let encode_scalar = median_ns_per_op(config.encode_reps, train_bins.len(), || {
        for bins in &train_bins {
            black_box(encoder.encode_bins_scalar(bins).expect("bins validated"));
        }
    });
    let encode_fast = median_ns_per_op(config.encode_reps, train_bins.len(), || {
        for bins in &train_bins {
            black_box(encoder.encode_bins(bins).expect("bins validated"));
        }
    });

    let train_encoded = encode_all(&encoder, &train_bins, false, threads);
    let test_encoded = encode_all(&encoder, &test_bins, false, threads);
    let fitted = HdcModel::fit(&train_encoded, &dataset.train.labels, dataset.n_classes)
        .expect("labels validated");

    // --- inference: scalar scores vs blocked batched prediction ---
    let opts = PredictOptions::full(config.dim);
    let infer_scalar = median_ns_per_op(config.infer_reps, test_encoded.len(), || {
        for q in &test_encoded {
            black_box(argmax(&fitted.scores_scalar(q, opts)));
        }
    });
    let infer_fast = median_ns_per_op(config.infer_reps, test_encoded.len(), || {
        black_box(fitted.predict_batch(&test_encoded, opts));
    });

    // --- retraining: scalar-kernel epochs vs blocked + parallel gather ---
    let retrain_ops = config.epochs * train_encoded.len();
    let retrain_scalar = median_ns_per_op(config.retrain_reps, retrain_ops, || {
        let mut model = fitted.clone();
        black_box(
            model
                .retrain_scalar(&train_encoded, &dataset.train.labels, config.epochs)
                .expect("inputs validated"),
        );
    });
    let retrain_fast = median_ns_per_op(config.retrain_reps, retrain_ops, || {
        let mut model = fitted.clone();
        black_box(
            model
                .retrain_parallel(
                    &train_encoded,
                    &dataset.train.labels,
                    config.epochs,
                    threads,
                )
                .expect("inputs validated"),
        );
    });

    // --- end-to-end: encode + fit + retrain, scalar kernels vs fast ---
    // Both sides encode with the same thread count, so the speedup
    // isolates the kernels (bit-sliced bundling + parallel retraining),
    // not threading that was already there.
    let e2e = |scalar: bool| {
        let encoded = encode_all(&encoder, &train_bins, scalar, threads);
        let mut model = HdcModel::fit(&encoded, &dataset.train.labels, dataset.n_classes)
            .expect("labels validated");
        if scalar {
            black_box(
                model
                    .retrain_scalar(&encoded, &dataset.train.labels, config.epochs)
                    .expect("inputs validated"),
            );
        } else {
            black_box(
                model
                    .retrain_parallel(&encoded, &dataset.train.labels, config.epochs, threads)
                    .expect("inputs validated"),
            );
        }
    };
    let e2e_ops = train_bins.len() * (config.epochs + 1);
    let e2e_scalar = median_ns_per_op(config.e2e_reps, e2e_ops, || e2e(true));
    let e2e_fast = median_ns_per_op(config.e2e_reps, e2e_ops, || e2e(false));

    let measurements = vec![
        Measurement {
            path: "encode_bins",
            scalar_ns: encode_scalar,
            fast_ns: encode_fast,
        },
        Measurement {
            path: "infer",
            scalar_ns: infer_scalar,
            fast_ns: infer_fast,
        },
        Measurement {
            path: "retrain",
            scalar_ns: retrain_scalar,
            fast_ns: retrain_fast,
        },
        Measurement {
            path: "train_retrain_e2e",
            scalar_ns: e2e_scalar,
            fast_ns: e2e_fast,
        },
    ];
    for m in &measurements {
        println!(
            "  {:<18} scalar {:>12.0} ns/op   fast {:>12.0} ns/op   {:>6.2}x",
            m.path,
            m.scalar_ns,
            m.fast_ns,
            m.speedup()
        );
    }
    DatasetReport {
        name: dataset.name,
        measurements,
    }
}

/// Runs `op` (a whole batch of `ops` operations) `reps` times and returns
/// the median ns per operation.
fn median_ns_per_op<F: FnMut()>(reps: usize, ops: usize, mut op: F) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        op();
        samples.push(start.elapsed().as_nanos() as f64 / ops.max(1) as f64);
    }
    median(samples)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = v.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Encodes every bin vector with `threads` workers, through either the
/// scalar reference kernel or the bit-sliced one — the thread fan-out is
/// identical so end-to-end comparisons isolate the kernel.
fn encode_all(
    encoder: &GenericEncoder,
    bins: &[Vec<usize>],
    scalar: bool,
    threads: usize,
) -> Vec<IntHv> {
    let encode_one = |b: &Vec<usize>| {
        if scalar {
            encoder.encode_bins_scalar(b).expect("bins validated")
        } else {
            encoder.encode_bins(b).expect("bins validated")
        }
    };
    let threads = threads.max(1).min(bins.len().max(1));
    if threads == 1 {
        return bins.iter().map(encode_one).collect();
    }
    let chunk = bins.len().div_ceil(threads);
    let mut out: Vec<Option<IntHv>> = vec![None; bins.len()];
    std::thread::scope(|scope| {
        for (chunk_bins, chunk_out) in bins.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (b, slot) in chunk_bins.iter().zip(chunk_out.iter_mut()) {
                    *slot = Some(encode_one(b));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot written"))
        .collect()
}

/// Index of the best score (last max wins, matching `HdcModel::predict`).
fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("model has at least one class")
}

fn render_json(
    reports: &[DatasetReport],
    config: &Config,
    threads: usize,
    seed: u64,
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hotpaths-v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"dim\": {},\n", config.dim));
    out.push_str(&format!("  \"epochs\": {},\n", config.epochs));
    out.push_str("  \"datasets\": [\n");
    for (i, report) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", report.name));
        out.push_str("      \"paths\": [\n");
        for (j, m) in report.measurements.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"path\": \"{}\", \"scalar_ns_per_op\": {:.1}, \
                 \"fast_ns_per_op\": {:.1}, \"speedup\": {:.3}}}{}\n",
                m.path,
                m.scalar_ns,
                m.fast_ns,
                m.speedup(),
                if j + 1 < report.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gates\": {{\"encode_bins_min_speedup\": {GATE_ENCODE_SPEEDUP}, \
         \"e2e_min_speedup\": {GATE_E2E_SPEEDUP}, \
         \"retrain_min_speedup\": {GATE_RETRAIN_SPEEDUP}, \"enforced\": {}}}\n",
        !smoke
    ));
    out.push_str("}\n");
    out
}
