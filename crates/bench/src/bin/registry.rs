//! Multi-tenant registry bench: K-tenant churn against the mmap-served
//! GHDC v3 registry, and writes `BENCH_registry.json`.
//!
//! Measures three things the zero-copy design claims:
//!
//! 1. **Cold load**: mapping + validating a v3 file and scoring one
//!    query through the borrowed view, vs fully deserializing the same
//!    model from its v2 stream, repacking, and scoring. Gate (full
//!    mode): median mmap cold load ≥ 10× faster.
//! 2. **Bit-identity**: mapped-view scores equal the heap-packed
//!    [`PackedQuantizedModel`] scores bit-for-bit under **every**
//!    dispatched ISA. Always enforced.
//! 3. **Churn**: ≥ 64 tenants rotating through an LRU byte budget
//!    sized for a fraction of them; the resident set must stay under
//!    the budget after every single load. Always enforced. Steady-state
//!    QPS (get + score against resident mappings) is recorded.
//!
//! Usage: `cargo run -p generic-bench --release --bin registry
//! [seed] [--smoke]`

use std::path::Path;
use std::time::{Duration, Instant};

use generic_bench::cli;
use generic_hdc::io::{read_quantized, write_packed, write_quantized, PackedLayout};
use generic_hdc::kernels;
use generic_hdc::{
    BinaryHv, HdcModel, IntHv, Mapping, ModelRegistry, PackedModelView, QuantizedModel,
    RegistryConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Config {
    dim: usize,
    n_classes: usize,
    bit_width: u8,
    tenants: usize,
    /// Tenants the LRU budget holds at once during churn.
    resident_cap: usize,
    churn_gets: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 2048,
            n_classes: 8,
            bit_width: 8,
            tenants: 96,
            resident_cap: 24,
            churn_gets: 4_096,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 512,
            n_classes: 4,
            bit_width: 8,
            tenants: 12,
            resident_cap: 4,
            churn_gets: 256,
        }
    }
}

fn tenant_name(i: usize) -> String {
    format!("tenant-{i:03}")
}

fn tenant_model(config: &Config, seed: u64, i: usize) -> QuantizedModel {
    let mut rng = StdRng::seed_from_u64(seed ^ (0x7e4a_0000 + i as u64));
    let encoded: Vec<IntHv> = (0..config.n_classes * 4)
        .map(|_| IntHv::from(BinaryHv::random_seeded(config.dim, rng.random()).expect("dim > 0")))
        .collect();
    let labels: Vec<usize> = (0..encoded.len()).map(|s| s % config.n_classes).collect();
    let model =
        HdcModel::fit(&encoded, &labels, config.n_classes).expect("separable synthetic data");
    QuantizedModel::from_model(&model, config.bit_width).expect("valid bit width")
}

/// Median of an unsorted sample, in microseconds.
fn median_us(samples: &mut [Duration]) -> f64 {
    samples.sort_unstable();
    if samples.is_empty() {
        return f64::NAN;
    }
    samples[samples.len() / 2].as_secs_f64() * 1e6
}

/// The mmap cold path: map, validate (header + CRC), borrow the view,
/// score one query. Returns the predicted label so the work cannot be
/// optimized away.
fn cold_load_mmap(path: &Path, query: &BinaryHv) -> usize {
    let bytes = Mapping::map_file(path).expect("tenant file maps");
    let layout = PackedLayout::validate(&bytes).expect("sealed v3 stream");
    let view = PackedModelView::with_layout(&bytes, layout).expect("aligned mapping");
    view.predict(query).expect("dim matches")
}

/// The heap cold path this replaces: read the v2 stream, deserialize
/// every class element, repack the bit planes, score one query.
fn cold_load_v2(path: &Path, query: &BinaryHv) -> usize {
    let bytes = std::fs::read(path).expect("tenant v2 file reads");
    let model = read_quantized(bytes.as_slice()).expect("sealed v2 stream");
    let packed = model.pack().expect("packs");
    packed.predict(query).expect("dim matches")
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    println!(
        "registry bench: dim={} classes={} bw={} tenants={} resident_cap={} seed={seed} mode={}",
        config.dim,
        config.n_classes,
        config.bit_width,
        config.tenants,
        config.resident_cap,
        if smoke { "smoke" } else { "full" }
    );

    let dir =
        std::env::temp_dir().join(format!("ghdc-registry-bench-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");

    // Materialize every tenant twice: the v3 file the registry serves
    // and the v2 stream the heap baseline deserializes.
    let mut model_bytes = 0usize;
    let models: Vec<QuantizedModel> = (0..config.tenants)
        .map(|i| {
            let model = tenant_model(&config, seed, i);
            let v3 = dir.join(format!("{}.ghdc", tenant_name(i)));
            let mut file = std::fs::File::create(&v3).expect("v3 file creates");
            write_packed(&model, &mut file).expect("v3 writes");
            model_bytes = std::fs::metadata(&v3).expect("v3 exists").len() as usize;
            let v2 = dir.join(format!("{}.v2", tenant_name(i)));
            let mut file = std::fs::File::create(&v2).expect("v2 file creates");
            write_quantized(&model, &mut file).expect("v2 writes");
            model
        })
        .collect();
    println!(
        "  materialized {} tenants ({} B packed each)",
        config.tenants, model_bytes
    );

    // --- Gate 1: cross-ISA bit-identity of the mapped view. ----------
    let isas = kernels::available();
    let mut identity_checks = 0u64;
    let mut identity_ok = true;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb17);
    for (i, model) in models.iter().enumerate().take(8) {
        let path = dir.join(format!("{}.ghdc", tenant_name(i)));
        let bytes = Mapping::map_file(&path).expect("tenant file maps");
        let view = PackedModelView::new(&bytes).expect("sealed v3 stream");
        let packed = model.pack().expect("packs");
        for _ in 0..4 {
            let query = BinaryHv::random_seeded(config.dim, rng.random()).expect("dim > 0");
            let oracle = packed.scores(&query).expect("heap scores");
            for &isa in &isas {
                let kernel = kernels::for_isa(isa).expect("listed ISA resolves");
                let mut mapped = Vec::new();
                view.scores_into_with(&query, kernel, &mut mapped)
                    .expect("mapped scores");
                identity_checks += 1;
                if mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
                    != oracle.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
                {
                    identity_ok = false;
                    println!(
                        "  BIT-IDENTITY FAILURE: tenant {i}, isa {}",
                        kernel.isa().name()
                    );
                }
            }
        }
    }
    println!(
        "  bit-identity: {identity_checks} checks across {:?} — {}",
        isas.iter().map(|i| i.name()).collect::<Vec<_>>(),
        if identity_ok { "PASS" } else { "FAIL" }
    );

    // --- Cold-load latency: mmap view vs full v2 deserialization. ----
    let query = BinaryHv::random_seeded(config.dim, seed ^ 0xc01d).expect("dim > 0");
    let mut mmap_lat = Vec::with_capacity(config.tenants);
    let mut v2_lat = Vec::with_capacity(config.tenants);
    let mut checksum = 0usize;
    for i in 0..config.tenants {
        let v3 = dir.join(format!("{}.ghdc", tenant_name(i)));
        let v2 = dir.join(format!("{}.v2", tenant_name(i)));
        let t0 = Instant::now();
        checksum ^= cold_load_v2(&v2, &query);
        v2_lat.push(t0.elapsed());
        let t0 = Instant::now();
        checksum ^= cold_load_mmap(&v3, &query);
        mmap_lat.push(t0.elapsed());
    }
    let mmap_us = median_us(&mut mmap_lat);
    let v2_us = median_us(&mut v2_lat);
    let cold_speedup = v2_us / mmap_us;
    println!(
        "  cold load: mmap view {mmap_us:.1} µs vs v2 deserialize {v2_us:.1} µs \
         = {cold_speedup:.1}× (checksum {checksum})"
    );

    // --- Churn: K tenants through a budget holding resident_cap. -----
    let budget = model_bytes * config.resident_cap;
    let registry = ModelRegistry::open(
        &dir,
        RegistryConfig {
            byte_budget: budget,
            dim: config.dim,
            ..RegistryConfig::default()
        },
    )
    .expect("registry opens");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0c4a_7000);
    let mut budget_ok = true;
    let mut peak_resident = 0usize;
    let mut labels = 0usize;
    let churn_start = Instant::now();
    for _ in 0..config.churn_gets {
        // Zipf-ish skew: half the traffic hits a hot eighth of tenants,
        // the rest sprays uniformly — exercises both hits and evictions.
        let tenant = if rng.random_bool(0.5) {
            rng.random_range(0..(config.tenants / 8).max(1))
        } else {
            rng.random_range(0..config.tenants)
        };
        let handle = registry.get(&tenant_name(tenant)).expect("tenant loads");
        labels ^= handle.view().predict(&query).expect("dim matches");
        let resident = registry.resident_bytes();
        peak_resident = peak_resident.max(resident);
        if resident > budget {
            budget_ok = false;
        }
    }
    let churn_wall = churn_start.elapsed();
    let churn_qps = config.churn_gets as f64 / churn_wall.as_secs_f64();
    let stats = registry.stats();
    println!(
        "  churn: {} gets in {:.2} s = {:.0} QPS (hits {}, cold loads {}, evictions {}), \
         peak resident {} B / budget {} B — {} (labels {labels})",
        config.churn_gets,
        churn_wall.as_secs_f64(),
        churn_qps,
        stats.hits,
        stats.cold_loads,
        stats.evictions,
        peak_resident,
        budget,
        if budget_ok { "PASS" } else { "FAIL" }
    );

    // Gates: identity and budget always; the 10× cold-load ratio only
    // on full runs (smoke models are too small for stable timing).
    let cold_enforced = !smoke;
    let cold_ok = cold_speedup >= 10.0;
    println!(
        "  cold-load 10x gate: {:.1}× — {}{}",
        cold_speedup,
        if cold_ok { "PASS" } else { "FAIL" },
        if cold_enforced { "" } else { " (not enforced)" }
    );

    let json = render_json(
        &config,
        seed,
        smoke,
        &isas.iter().map(|i| i.name()).collect::<Vec<_>>(),
        identity_checks,
        identity_ok,
        mmap_us,
        v2_us,
        cold_speedup,
        cold_ok,
        cold_enforced,
        churn_qps,
        peak_resident,
        budget,
        budget_ok,
        &stats_json(&stats),
    );
    std::fs::write("BENCH_registry.json", &json).expect("write BENCH_registry.json");
    println!("wrote BENCH_registry.json");
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if !identity_ok {
        eprintln!("GATE FAILED: mapped-view scores must be bit-identical on every ISA");
        failed = true;
    }
    if !budget_ok {
        eprintln!("GATE FAILED: resident set exceeded the LRU byte budget during churn");
        failed = true;
    }
    if cold_enforced && !cold_ok {
        eprintln!("GATE FAILED: mmap cold load must be >= 10x faster than v2 deserialization");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn stats_json(stats: &generic_hdc::RegistryStats) -> String {
    format!(
        "{{\"hits\": {}, \"cold_loads\": {}, \"evictions\": {}, \"swaps\": {}, \
         \"quarantines\": {}, \"publish_retries\": {}, \"rollbacks\": {}, \
         \"recoveries\": {}, \"tmp_sweeps\": {}}}",
        stats.hits,
        stats.cold_loads,
        stats.evictions,
        stats.swaps,
        stats.quarantines,
        stats.publish_retries,
        stats.rollbacks,
        stats.recoveries,
        stats.tmp_sweeps
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    seed: u64,
    smoke: bool,
    isas: &[&str],
    identity_checks: u64,
    identity_ok: bool,
    mmap_us: f64,
    v2_us: f64,
    cold_speedup: f64,
    cold_ok: bool,
    cold_enforced: bool,
    churn_qps: f64,
    peak_resident: usize,
    budget: usize,
    budget_ok: bool,
    stats: &str,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!(
        "  \"config\": {{\"dim\": {}, \"n_classes\": {}, \"bit_width\": {}, \"tenants\": {}, \
         \"resident_cap\": {}, \"churn_gets\": {}}},\n",
        config.dim,
        config.n_classes,
        config.bit_width,
        config.tenants,
        config.resident_cap,
        config.churn_gets
    ));
    s.push_str(&format!(
        "  \"isas\": [{}],\n",
        isas.iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!(
        "  \"cold_load\": {{\"mmap_median_us\": {mmap_us:.2}, \"v2_median_us\": {v2_us:.2}, \
         \"speedup\": {cold_speedup:.2}}},\n"
    ));
    s.push_str(&format!(
        "  \"churn\": {{\"qps\": {churn_qps:.1}, \"peak_resident_bytes\": {peak_resident}, \
         \"budget_bytes\": {budget}, \"stats\": {stats}}},\n"
    ));
    s.push_str(&format!(
        "  \"gates\": {{\n    \"bit_identity\": {{\"passed\": {identity_ok}, \"enforced\": true, \
         \"checks\": {identity_checks}}},\n    \"resident_budget\": {{\"passed\": {budget_ok}, \
         \"enforced\": true}},\n    \"cold_load_10x\": {{\"passed\": {cold_ok}, \
         \"enforced\": {cold_enforced}, \"speedup\": {cold_speedup:.3}}}\n  }}\n"
    ));
    s.push_str("}\n");
    s
}
