//! Reproduces the §4.3.2 banking trade study: more class-memory banks
//! gate leakage at finer granularity but pay area for duplicated
//! peripherals — "the four-bank configuration yields the minimum
//! area × power cost" (with 4 banks, an average of 1.6 banks stay active
//! across the benchmark suite, saving ~59 % of class-memory static
//! power; 8 banks save 66 % but cost 55 % extra area vs 20 %).
//!
//! Usage: `cargo run -p generic-bench --release --bin ablation_banks [seed]`

use generic_bench::report::render_table;
use generic_datasets::Benchmark;
use generic_sim::{AcceleratorConfig, EnergyModel};

const BANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Ablation (§4.3.2): class-memory bank count vs area x power (seed {seed})\n");

    // Per-application class-memory utilization at D = 4K.
    let configs: Vec<AcceleratorConfig> = Benchmark::ALL
        .iter()
        .map(|b| {
            let ds = b.load(seed);
            AcceleratorConfig::new(4096, ds.n_features, ds.n_classes)
        })
        .collect();
    let mean_util = configs
        .iter()
        .map(AcceleratorConfig::class_memory_utilization)
        .sum::<f64>()
        / configs.len() as f64;
    println!(
        "mean class-memory utilization over the 11 benchmarks: {:.0}% (paper: 28%)\n",
        100.0 * mean_util
    );

    let header = vec![
        "Banks".to_string(),
        "Avg active".to_string(),
        "Static saving".to_string(),
        "Area overhead".to_string(),
        "Area x power".to_string(),
    ];
    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for &banks in &BANK_COUNTS {
        let model = EnergyModel::paper_default().with_banks(banks);
        let mean_active = configs
            .iter()
            .map(|c| model.active_bank_fraction(c, true))
            .sum::<f64>()
            / configs.len() as f64;
        let saving = 1.0 - mean_active;
        let area_factor = 1.0 + EnergyModel::banking_area_overhead(banks);
        // Cost metric: class-memory area × average class-memory static
        // power, both relative to the unbanked design.
        let cost = area_factor * mean_active;
        costs.push(cost);
        rows.push(vec![
            format!("{banks}"),
            format!("{:.2}", mean_active * banks as f64),
            format!("{:.0}%", 100.0 * saving),
            format!("+{:.0}%", 100.0 * (area_factor - 1.0)),
            format!("{cost:.3}"),
        ]);
    }
    println!("{}", render_table(&header, &rows));

    let best = BANK_COUNTS[costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
        .map(|(i, _)| i)
        .expect("non-empty")];
    println!(
        "\nminimum area x power at {best} banks (paper: 4 banks; with 4 banks ~1.6 are active\n\
         on average saving ~59%, with 8 banks ~2.7 are active saving 66% but at 55% area)"
    );
}
