//! Regenerates **Table 1**: classification accuracy of the five HDC
//! encodings (RP, level-id, ngram, permute, GENERIC) and four ML baselines
//! (MLP, SVM, RF, DNN) on the eleven benchmarks, plus the Mean and STDV
//! summary rows.
//!
//! Usage: `cargo run -p generic-bench --release --bin table1 [seed]`

use generic_bench::report::{pct, render_table};
use generic_bench::runners::{DEFAULT_DIM, DEFAULT_EPOCHS};
use generic_bench::{evaluate_hdc, evaluate_ml, MlAlgorithm};
use generic_datasets::Benchmark;
use generic_hdc::encoding::EncodingKind;
use generic_hdc::metrics::std_dev;

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Table 1: accuracy of HDC and ML algorithms (seed {seed})");
    println!(
        "HDC: D = {DEFAULT_DIM}, n = 3, {DEFAULT_EPOCHS} retraining epochs; see DESIGN.md for dataset substitutions\n"
    );

    let mut header = vec!["Dataset".to_string()];
    header.extend(EncodingKind::ALL.iter().map(|k| k.name().to_string()));
    header.extend(MlAlgorithm::TABLE1.iter().map(|a| a.name().to_string()));

    let mut columns: Vec<Vec<f64>> =
        vec![Vec::new(); EncodingKind::ALL.len() + MlAlgorithm::TABLE1.len()];
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let dataset = benchmark.load(seed);
        let mut row = vec![benchmark.name().to_string()];
        let mut col = 0;
        for kind in EncodingKind::ALL {
            let acc = evaluate_hdc(kind, &dataset, DEFAULT_DIM, DEFAULT_EPOCHS, seed);
            columns[col].push(acc);
            row.push(pct(acc));
            col += 1;
        }
        for algo in MlAlgorithm::TABLE1 {
            let acc = evaluate_ml(algo, &dataset, seed);
            columns[col].push(acc);
            row.push(pct(acc));
            col += 1;
        }
        eprintln!("  finished {}", benchmark.name());
        rows.push(row);
    }

    let mut mean_row = vec!["Mean".to_string()];
    let mut stdv_row = vec!["STDV".to_string()];
    for col in &columns {
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        mean_row.push(pct(mean));
        stdv_row.push(pct(std_dev(col).expect("eleven values per column")));
    }
    rows.push(mean_row);
    rows.push(stdv_row);

    println!("{}", render_table(&header, &rows));

    println!("Paper reference (Table 1 means): RP 77.0, level-id 90.0, ngram 76.8, permute 88.3, GENERIC 93.5, MLP 82.8, SVM 87.0, RF 85.3, DNN 92.5");
}
