//! Regenerates **Fig. 6**: accuracy and class-memory power reduction as a
//! function of the bit-error rate injected by voltage over-scaling, for
//! model bit-widths 8/4/2/1, on ISOLET and FACE.
//!
//! Usage: `cargo run -p generic-bench --release --bin fig6 [seed]`

use generic_bench::report::{pct, render_table};
use generic_bench::runners::{DEFAULT_DIM, DEFAULT_EPOCHS};
use generic_bench::train_hdc;
use generic_datasets::Benchmark;
use generic_hdc::encoding::EncodingKind;
use generic_hdc::QuantizedModel;
use generic_sim::VosOperatingPoint;

const BIT_WIDTHS: [u8; 4] = [8, 4, 2, 1];
const BER_POINTS: [f64; 6] = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10];

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Fig. 6: accuracy and power reduction vs class-memory bit-error rate (seed {seed})\n");

    for benchmark in [Benchmark::Isolet, Benchmark::Face] {
        let dataset = benchmark.load(seed);
        let run = train_hdc(
            EncodingKind::Generic,
            &dataset,
            DEFAULT_DIM,
            DEFAULT_EPOCHS,
            seed,
        );

        let mut header = vec!["BER".to_string()];
        header.extend(BIT_WIDTHS.iter().map(|bw| format!("{bw}b")));
        header.push("power(s)".to_string());
        header.push("power(dyn)".to_string());

        let mut rows = Vec::new();
        for &ber in &BER_POINTS {
            let mut row = vec![format!("{:.0}%", 100.0 * ber)];
            for &bw in &BIT_WIDTHS {
                let mut quantized =
                    QuantizedModel::from_model(&run.model, bw).expect("bit widths are in range");
                quantized
                    .inject_bit_flips(ber, seed ^ u64::from(bw))
                    .expect("ber is a probability");
                let acc = quantized.accuracy(&run.test_encoded, &dataset.test.labels);
                row.push(pct(acc));
            }
            let vos = VosOperatingPoint::at_bit_error_rate(ber);
            let (s_red, d_red) = vos.power_reduction();
            row.push(format!("{s_red:.1}x"));
            row.push(format!("{d_red:.1}x"));
            rows.push(row);
        }
        println!("{}:", benchmark.name());
        println!("{}", render_table(&header, &rows));
    }
    println!(
        "Paper reference: FACE's 1-bit model tolerates up to ~7% BER; ISOLET holds acceptable \
         accuracy up to ~4% with a 4-bit model; the corresponding voltage over-scaling cuts \
         class-memory static power by up to ~7x."
    );
}
