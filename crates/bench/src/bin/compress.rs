//! Post-training compression bench: accuracy/size Pareto curves per
//! dataset, and writes `BENCH_compress.json`.
//!
//! Exercises the `generic_hdc::compress` pipeline end to end on
//! ISOLET- and MNIST-class workloads and enforces the three claims the
//! compression design makes:
//!
//! 1. **Size at accuracy**: on every dataset the Pareto search must
//!    find a model ≥ 4× smaller than the full-dimension 8-bit image
//!    while losing ≤ 1 accuracy point on held-out data. Always
//!    enforced.
//! 2. **Bit-identity**: the chosen pruned image, scored through the
//!    mapped view on **every** dispatched ISA with full-width queries,
//!    must match the scalar pruned oracle (query compacted by the
//!    support, scored through the heap quantized model) bit for bit.
//!    Always enforced.
//! 3. **Tenant capacity**: under the same registry byte budget, the
//!    compressed image must keep ≥ 3× more tenants resident than the
//!    uncompressed baseline. Always enforced.
//!
//! Usage: `cargo run -p generic-bench --release --bin compress
//! [seed] [--smoke]`

use std::time::Instant;

use generic_bench::cli;
use generic_datasets::Benchmark;
use generic_hdc::encoding::{Encoder, GenericEncoderSpec};
use generic_hdc::io::write_packed;
use generic_hdc::kernels;
use generic_hdc::{
    pareto_search, CompressOptions, CompressionOutcome, HdcPipeline, IntHv, Mapping, ModelRegistry,
    PackedModelView, ParetoPoint, QuantizedModel, RegistryConfig,
};

struct Config {
    dim: usize,
    train_epochs: usize,
    recover_epochs: usize,
    /// Uncompressed tenants offered to the capacity registry.
    capacity_unc: usize,
    /// Compressed tenants offered to the capacity registry.
    capacity_cmp: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 4096,
            train_epochs: 10,
            recover_epochs: 3,
            capacity_unc: 8,
            capacity_cmp: 64,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 2048,
            train_epochs: 3,
            recover_epochs: 2,
            capacity_unc: 6,
            capacity_cmp: 32,
        }
    }
}

struct DatasetResult {
    name: &'static str,
    baseline_bytes: usize,
    baseline_accuracy: f64,
    target_accuracy: f64,
    outcome: CompressionOutcome,
    size_reduction: f64,
    size_gate_ok: bool,
    identity_checks: u64,
    identity_ok: bool,
    search_secs: f64,
}

fn evaluate(bench: Benchmark, config: &Config, seed: u64) -> DatasetResult {
    let dataset = bench.load(seed);
    let spec = GenericEncoderSpec::new(config.dim, dataset.n_features).with_seed(seed);
    let pipeline = HdcPipeline::train(
        spec,
        &dataset.train.features,
        &dataset.train.labels,
        dataset.n_classes,
        config.train_epochs,
    )
    .expect("benchmark dataset trains");
    let train = pipeline
        .encoder()
        .encode_batch(&dataset.train.features)
        .expect("train split encodes");
    let test = pipeline
        .encoder()
        .encode_batch(&dataset.test.features)
        .expect("test split encodes");

    // The baseline every gate compares against: what the registry
    // publishes today — the full-dimension 8-bit image.
    let baseline_model = QuantizedModel::from_model(pipeline.model(), 8).expect("8-bit quantizes");
    let mut baseline_image = Vec::new();
    write_packed(&baseline_model, &mut baseline_image).expect("baseline serializes");
    let baseline_bytes = baseline_image.len();
    let baseline_accuracy = baseline_model.accuracy(&test, &dataset.test.labels);
    // ≤ 1 accuracy point of loss.
    let target_accuracy = baseline_accuracy - 0.01;

    let opts = CompressOptions {
        recover_epochs: config.recover_epochs,
        n_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        ..CompressOptions::new(target_accuracy)
    };
    let search_start = Instant::now();
    let outcome = pareto_search(
        pipeline.model(),
        &train,
        &dataset.train.labels,
        &test,
        &dataset.test.labels,
        &opts,
    )
    .expect("pareto search runs");
    let search_secs = search_start.elapsed().as_secs_f64();

    let size_reduction = baseline_bytes as f64 / outcome.chosen_point.bytes as f64;
    let size_gate_ok = outcome.meets_target && size_reduction >= 4.0;

    // Cross-ISA bit-identity of the chosen image against the scalar
    // pruned oracle, with full-width queries (what serving receives).
    let image = outcome.chosen.image_bytes().expect("chosen serializes");
    let mapping = Mapping::from_bytes(&image).expect("image maps");
    let view = PackedModelView::new(&mapping).expect("sealed image");
    let mut identity_checks = 0u64;
    let mut identity_ok = true;
    for hv in test.iter().take(6) {
        let query = hv.to_binary();
        let bits: Vec<bool> = outcome
            .chosen
            .support()
            .iter()
            .map(|&d| query.bit(d))
            .collect();
        let compact = generic_hdc::BinaryHv::from_bits(&bits).expect("support-width query builds");
        let oracle = outcome.chosen.quantized().scores(&IntHv::from(compact));
        for isa in kernels::available() {
            let kernel = kernels::for_isa(isa).expect("listed ISA resolves");
            let mut mapped = Vec::new();
            view.scores_into_with(&query, kernel, &mut mapped)
                .expect("mapped scores");
            identity_checks += 1;
            if mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
                != oracle.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
            {
                identity_ok = false;
                println!(
                    "  BIT-IDENTITY FAILURE: {} isa {}",
                    bench.name(),
                    isa.name()
                );
            }
        }
    }

    DatasetResult {
        name: bench.name(),
        baseline_bytes,
        baseline_accuracy,
        target_accuracy,
        outcome,
        size_reduction,
        size_gate_ok,
        identity_checks,
        identity_ok,
        search_secs,
    }
}

/// How many tenants stay resident when `count` copies of one image are
/// published through a registry with `budget` bytes.
fn resident_capacity(
    dir: &std::path::Path,
    dim: usize,
    budget: usize,
    count: usize,
    publish: impl Fn(&ModelRegistry, &str) -> Result<u64, generic_hdc::RegistryError>,
) -> usize {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("capacity dir is creatable");
    let registry = ModelRegistry::open(
        dir,
        RegistryConfig {
            byte_budget: budget,
            dim,
            ..RegistryConfig::default()
        },
    )
    .expect("registry opens");
    for i in 0..count {
        publish(&registry, &format!("tenant-{i:03}")).expect("tenant publishes");
    }
    let resident = registry.resident_count();
    assert!(
        registry.resident_bytes() <= budget,
        "resident set exceeds the byte budget"
    );
    resident
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    println!(
        "compress bench: dim={} train_epochs={} recover_epochs={} seed={seed} mode={}",
        config.dim,
        config.train_epochs,
        config.recover_epochs,
        if smoke { "smoke" } else { "full" }
    );

    let mut results = Vec::new();
    for bench in [Benchmark::Isolet, Benchmark::Mnist] {
        let result = evaluate(bench, &config, seed);
        println!(
            "  {}: baseline {} B @ {:.2}% → chosen {} of {} dims x {} bit = {} B \
             ({:.1}x) @ {:.2}% (target {:.2}%) — {} [{:.1} s search]",
            result.name,
            result.baseline_bytes,
            100.0 * result.baseline_accuracy,
            result.outcome.chosen_point.keep_dims,
            config.dim,
            result.outcome.chosen_point.bit_width,
            result.outcome.chosen_point.bytes,
            result.size_reduction,
            100.0 * result.outcome.chosen_point.accuracy,
            100.0 * result.target_accuracy,
            if result.size_gate_ok { "PASS" } else { "FAIL" },
            result.search_secs,
        );
        println!(
            "    bit-identity: {} checks across {:?} — {}",
            result.identity_checks,
            kernels::available()
                .iter()
                .map(|i| i.name())
                .collect::<Vec<_>>(),
            if result.identity_ok { "PASS" } else { "FAIL" }
        );
        results.push(result);
    }

    // --- Tenant capacity under one byte budget. ----------------------
    // ISOLET's baseline sizes the budget; the chosen compressed image
    // must fit ≥ 3× more tenants into the very same registry.
    let anchor = &results[0];
    let budget = anchor.baseline_bytes * 4;
    let scratch =
        std::env::temp_dir().join(format!("ghdc-compress-bench-{}-{seed}", std::process::id()));
    let baseline_model = {
        let dataset = Benchmark::Isolet.load(seed);
        let spec = GenericEncoderSpec::new(config.dim, dataset.n_features).with_seed(seed);
        let pipeline = HdcPipeline::train(
            spec,
            &dataset.train.features,
            &dataset.train.labels,
            dataset.n_classes,
            config.train_epochs,
        )
        .expect("benchmark dataset trains");
        QuantizedModel::from_model(pipeline.model(), 8).expect("8-bit quantizes")
    };
    let unc_resident = resident_capacity(
        &scratch.join("unc"),
        config.dim,
        budget,
        config.capacity_unc,
        |registry, tenant| registry.publish(tenant, &baseline_model),
    );
    let chosen = anchor.outcome.chosen.clone();
    let cmp_resident = resident_capacity(
        &scratch.join("cmp"),
        config.dim,
        budget,
        config.capacity_cmp,
        |registry, tenant| registry.publish_compressed(tenant, &chosen),
    );
    let _ = std::fs::remove_dir_all(&scratch);
    let capacity_ratio = cmp_resident as f64 / unc_resident.max(1) as f64;
    let capacity_ok = capacity_ratio >= 3.0;
    println!(
        "  tenant capacity: {budget} B budget holds {unc_resident} uncompressed vs \
         {cmp_resident} compressed tenants = {capacity_ratio:.1}x — {}",
        if capacity_ok { "PASS" } else { "FAIL" }
    );

    let json = render_json(
        &config,
        seed,
        smoke,
        &results,
        (
            budget,
            unc_resident,
            cmp_resident,
            capacity_ratio,
            capacity_ok,
        ),
    );
    std::fs::write("BENCH_compress.json", &json).expect("write BENCH_compress.json");
    println!("wrote BENCH_compress.json");

    let mut failed = false;
    for result in &results {
        if !result.size_gate_ok {
            eprintln!(
                "GATE FAILED: {} must reach >= 4x size reduction within 1 accuracy point",
                result.name
            );
            failed = true;
        }
        if !result.identity_ok {
            eprintln!(
                "GATE FAILED: {} pruned scoring must be bit-identical on every ISA",
                result.name
            );
            failed = true;
        }
    }
    if !capacity_ok {
        eprintln!(
            "GATE FAILED: compressed tenants must reach >= 3x resident capacity under the \
             same byte budget"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn points_json(points: &[ParetoPoint]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{{\"keep_dims\": {}, \"bit_width\": {}, \"bytes\": {}, \"accuracy\": {:.6}}}",
                p.keep_dims, p.bit_width, p.bytes, p.accuracy
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_json(
    config: &Config,
    seed: u64,
    smoke: bool,
    results: &[DatasetResult],
    capacity: (usize, usize, usize, f64, bool),
) -> String {
    let (budget, unc_resident, cmp_resident, capacity_ratio, capacity_ok) = capacity;
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!(
        "  \"config\": {{\"dim\": {}, \"train_epochs\": {}, \"recover_epochs\": {}}},\n",
        config.dim, config.train_epochs, config.recover_epochs
    ));
    s.push_str(&format!(
        "  \"isas\": [{}],\n",
        kernels::available()
            .iter()
            .map(|i| format!("\"{}\"", i.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"datasets\": [\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.outcome.chosen_point;
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_bytes\": {}, \"baseline_accuracy\": {:.6}, \
             \"target_accuracy\": {:.6},\n     \"chosen\": {{\"keep_dims\": {}, \
             \"bit_width\": {}, \"bytes\": {}, \"accuracy\": {:.6}}},\n     \
             \"size_reduction\": {:.3}, \"search_secs\": {:.2},\n     \
             \"pareto_frontier\": [{}],\n     \"points\": [{}]}}{}\n",
            r.name,
            r.baseline_bytes,
            r.baseline_accuracy,
            r.target_accuracy,
            c.keep_dims,
            c.bit_width,
            c.bytes,
            c.accuracy,
            r.size_reduction,
            r.search_secs,
            points_json(&r.outcome.frontier),
            points_json(&r.outcome.points),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"tenant_capacity\": {{\"budget_bytes\": {budget}, \"uncompressed_resident\": \
         {unc_resident}, \"compressed_resident\": {cmp_resident}, \"ratio\": \
         {capacity_ratio:.3}}},\n"
    ));
    let size_ok = results.iter().all(|r| r.size_gate_ok);
    let identity_ok = results.iter().all(|r| r.identity_ok);
    let identity_checks: u64 = results.iter().map(|r| r.identity_checks).sum();
    s.push_str(&format!(
        "  \"gates\": {{\n    \"size_reduction_4x_1pt\": {{\"passed\": {size_ok}, \
         \"enforced\": true}},\n    \"bit_identity\": {{\"passed\": {identity_ok}, \
         \"enforced\": true, \"checks\": {identity_checks}}},\n    \
         \"tenant_capacity_3x\": {{\"passed\": {capacity_ok}, \"enforced\": true, \
         \"ratio\": {capacity_ratio:.3}}}\n  }}\n"
    ));
    s.push_str("}\n");
    s
}
