//! Cross-layer differential conformance runner: fuzzes N seeded
//! end-to-end scenarios through every fast-kernel / scalar-oracle pair
//! (encoding, retraining, scoring, quantized scoring, resilient
//! inference, checkpoint/restore, simulator scores and activity) and
//! writes `BENCH_conformance.json`.
//!
//! Gates (enforced in both modes — these are correctness, not perf):
//! - zero divergences across all scenarios,
//! - every registered stage exercised at least once,
//! - the mutation self-check: a deliberately injected encoder bug is
//!   caught and shrunk to ≤ 8 samples × ≤ 256 dims.
//!
//! Any real divergence is shrunk to a minimal reproducer and emitted as
//! a `#[test]`-ready fixture under `conformance_fixtures/`; its replay
//! token also drives `generic conformance --replay <token>`.
//!
//! Usage: `cargo run -p generic-bench --release --bin conformance
//! [seed] [--smoke]`

use std::path::Path;
use std::time::Instant;

use generic_bench::cli;
use generic_bench::report::render_table;
use generic_conformance::oracle::StageKind;
use generic_conformance::{
    run_scenario, run_scenario_mutated, shrink, Mutation, Scenario, ShrinkOutcome,
};

/// Scenario counts: the full run satisfies the ≥200 acceptance floor.
const FULL_SCENARIOS: usize = 200;
const SMOKE_SCENARIOS: usize = 24;

/// The mutation self-check must shrink its reproducer at least this far.
const SELF_CHECK_MAX_SAMPLES: usize = 8;
const SELF_CHECK_MAX_DIM: usize = 256;

struct DivergenceRecord {
    token: String,
    stage: &'static str,
    kernel: String,
    detail: String,
    minimized_token: String,
    shrink_attempts: u64,
    shrink_accepted: u64,
    fixture: String,
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let n_scenarios = if smoke {
        SMOKE_SCENARIOS
    } else {
        FULL_SCENARIOS
    };
    println!(
        "conformance: scenarios={n_scenarios} seed={seed} mode={}",
        if smoke { "smoke" } else { "full" }
    );

    let started = Instant::now();
    let mut coverage = vec![0u64; StageKind::ALL.len()];
    let mut divergences: Vec<DivergenceRecord> = Vec::new();
    let fixture_dir = Path::new("conformance_fixtures");
    for i in 0..n_scenarios {
        let scenario = Scenario::generate(seed.wrapping_add(i as u64));
        let report = run_scenario(&scenario);
        for (slot, &(_, checks)) in coverage.iter_mut().zip(&report.coverage) {
            *slot += checks;
        }
        if let Some(divergence) = report.divergence {
            eprintln!("DIVERGENCE in scenario {}: {divergence}", scenario.token());
            let outcome = shrink(&scenario, Mutation::None, &divergence);
            let fixture = generic_conformance::write_fixture(
                fixture_dir,
                &outcome.minimized,
                &outcome.divergence,
            )
            .map(|p| p.display().to_string())
            .unwrap_or_else(|e| format!("<fixture write failed: {e}>"));
            eprintln!(
                "  shrunk to {} (fixture: {fixture})",
                outcome.minimized.token()
            );
            divergences.push(DivergenceRecord {
                token: scenario.token(),
                stage: outcome.divergence.stage.name(),
                kernel: outcome.divergence.kernel.clone(),
                detail: outcome.divergence.detail.clone(),
                minimized_token: outcome.minimized.token(),
                shrink_attempts: outcome.attempts,
                shrink_accepted: outcome.accepted,
                fixture,
            });
        }
    }
    let scenario_secs = started.elapsed().as_secs_f64();

    // Mutation self-check: the harness itself must be able to catch and
    // shrink a real kernel bug, otherwise "zero divergences" means
    // nothing.
    let self_check = mutation_self_check(seed);
    let total_checks: u64 = coverage.iter().sum();

    let header: Vec<String> = ["stage", "checks"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let rows: Vec<Vec<String>> = StageKind::ALL
        .iter()
        .zip(&coverage)
        .map(|(stage, &checks)| vec![stage.name().to_string(), checks.to_string()])
        .collect();
    println!("\n{}", render_table(&header, &rows));
    println!(
        "{n_scenarios} scenarios, {total_checks} boundary checks, {} divergences, {scenario_secs:.1}s",
        divergences.len()
    );
    println!(
        "mutation self-check: caught at {}/{}, shrunk to {} samples × {} dims \
         ({} attempts, {} accepted)",
        self_check.divergence.stage,
        self_check.divergence.kernel,
        self_check.minimized.n_samples,
        self_check.minimized.dim,
        self_check.attempts,
        self_check.accepted
    );

    let json = render_json(
        seed,
        smoke,
        n_scenarios,
        scenario_secs,
        &coverage,
        &divergences,
        &self_check,
    );
    std::fs::write("BENCH_conformance.json", &json).expect("write BENCH_conformance.json");
    println!("wrote BENCH_conformance.json");

    let mut failed = false;
    if !divergences.is_empty() {
        eprintln!(
            "GATE FAILED: {} divergences (reproducers under {})",
            divergences.len(),
            fixture_dir.display()
        );
        failed = true;
    }
    if let Some(stage) = StageKind::ALL
        .iter()
        .zip(&coverage)
        .find(|(_, &checks)| checks == 0)
    {
        eprintln!("GATE FAILED: stage {} was never exercised", stage.0);
        failed = true;
    }
    if self_check.minimized.n_samples > SELF_CHECK_MAX_SAMPLES
        || self_check.minimized.dim > SELF_CHECK_MAX_DIM
    {
        eprintln!(
            "GATE FAILED: mutation self-check only shrank to {} samples × {} dims \
             (need ≤ {SELF_CHECK_MAX_SAMPLES} × ≤ {SELF_CHECK_MAX_DIM})",
            self_check.minimized.n_samples, self_check.minimized.dim
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("all gates passed");
}

/// Injects a known encoder bug, asserts the harness reports it at the
/// encode boundary, and shrinks it. Exits nonzero if the bug sails
/// through undetected.
fn mutation_self_check(seed: u64) -> ShrinkOutcome {
    let scenario = Scenario::generate(seed ^ 0x5E1F_C4EC);
    let report = run_scenario_mutated(&scenario, Mutation::EncodeBitFlip);
    let Some(divergence) = report.divergence else {
        eprintln!("GATE FAILED: injected encoder bug was not detected");
        std::process::exit(1);
    };
    if divergence.stage != StageKind::Encode {
        eprintln!(
            "GATE FAILED: injected encoder bug surfaced at stage {} instead of encode",
            divergence.stage
        );
        std::process::exit(1);
    }
    shrink(&scenario, Mutation::EncodeBitFlip, &divergence)
}

fn render_json(
    seed: u64,
    smoke: bool,
    n_scenarios: usize,
    scenario_secs: f64,
    coverage: &[u64],
    divergences: &[DivergenceRecord],
    self_check: &ShrinkOutcome,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"conformance-v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scenarios\": {n_scenarios},\n"));
    out.push_str(&format!("  \"elapsed_s\": {scenario_secs:.3},\n"));
    out.push_str(&format!(
        "  \"total_checks\": {},\n",
        coverage.iter().sum::<u64>()
    ));
    out.push_str("  \"stage_coverage\": {\n");
    for (i, (stage, &checks)) in StageKind::ALL.iter().zip(coverage).enumerate() {
        out.push_str(&format!(
            "    \"{}\": {checks}{}\n",
            stage.name(),
            if i + 1 < StageKind::ALL.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"divergences\": [\n");
    for (i, d) in divergences.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"token\": \"{}\", \"stage\": \"{}\", \"kernel\": \"{}\", \
             \"detail\": \"{}\", \"minimized_token\": \"{}\", \
             \"shrink_attempts\": {}, \"shrink_accepted\": {}, \"fixture\": \"{}\"}}{}\n",
            d.token,
            d.stage,
            d.kernel,
            json_escape(&d.detail),
            d.minimized_token,
            d.shrink_attempts,
            d.shrink_accepted,
            json_escape(&d.fixture),
            if i + 1 < divergences.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"mutation_self_check\": {{\"stage\": \"{}\", \"kernel\": \"{}\", \
         \"initial_token\": \"{}\", \"minimized_token\": \"{}\", \
         \"minimized_samples\": {}, \"minimized_dim\": {}, \
         \"shrink_attempts\": {}, \"shrink_accepted\": {}}}\n",
        self_check.divergence.stage.name(),
        self_check.divergence.kernel,
        self_check.initial.token(),
        self_check.minimized.token(),
        self_check.minimized.n_samples,
        self_check.minimized.dim,
        self_check.attempts,
        self_check.accepted
    ));
    out.push_str("}\n");
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
