//! Regenerates **Fig. 3**: training and inference energy/time of HDC and
//! classical-ML algorithms on the Raspberry Pi, desktop CPU, and edge GPU
//! (geometric mean over the eleven benchmarks).
//!
//! Usage: `cargo run -p generic-bench --release --bin fig3 [seed]`

use generic_bench::cost::{hdc_shape, ml_infer_ops, ml_train_ops};
use generic_bench::report::{render_table, si};
use generic_bench::MlAlgorithm;
use generic_datasets::{Benchmark, Dataset};
use generic_devices::workload::HdcShape;
use generic_devices::{Device, OpCounts};
use generic_hdc::metrics::geometric_mean;

/// Retraining epochs for the HDC training workloads (§5.2.1).
const HDC_EPOCHS: usize = 20;

/// Observed average mispredict fraction during retraining.
const MISPREDICT_RATE: f64 = 0.15;

#[derive(Clone, Copy)]
enum Algo {
    HdcRp,
    HdcLevelId,
    HdcGeneric,
    Ml(MlAlgorithm),
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::HdcRp => "RP",
            Algo::HdcLevelId => "level-id",
            Algo::HdcGeneric => "GENERIC",
            Algo::Ml(m) => m.name(),
        }
    }

    fn is_hdc(self) -> bool {
        !matches!(self, Algo::Ml(_))
    }
}

const ALGOS: [Algo; 9] = [
    Algo::HdcRp,
    Algo::HdcLevelId,
    Algo::HdcGeneric,
    Algo::Ml(MlAlgorithm::LogisticRegression),
    Algo::Ml(MlAlgorithm::Knn),
    Algo::Ml(MlAlgorithm::Mlp),
    Algo::Ml(MlAlgorithm::Svm),
    Algo::Ml(MlAlgorithm::RandomForest),
    Algo::Ml(MlAlgorithm::Dnn),
];

fn infer_ops(algo: Algo, ds: &Dataset, seed: u64) -> OpCounts {
    match algo {
        // RP multiplies raw values with ±1 rows: d·D wide MACs.
        Algo::HdcRp => {
            let d = ds.n_features as f64;
            let dim = 4096.0;
            OpCounts::new(d * dim + ds.n_classes as f64 * dim, 0.0, d * dim / 8.0)
        }
        // level-id: one level⊕id bind + accumulate per feature.
        Algo::HdcLevelId => HdcShape {
            dim: 4096,
            n_features: ds.n_features,
            window: 1,
            n_classes: ds.n_classes,
            id_binding: true,
        }
        .infer(),
        Algo::HdcGeneric => hdc_shape(ds, 4096, seed).infer(),
        Algo::Ml(m) => ml_infer_ops(m, ds),
    }
}

fn train_ops(algo: Algo, ds: &Dataset, seed: u64) -> OpCounts {
    let n = ds.train.len();
    match algo {
        Algo::HdcRp => infer_ops(algo, ds, seed) * ((1 + HDC_EPOCHS) as f64 * n as f64),
        Algo::HdcLevelId => HdcShape {
            dim: 4096,
            n_features: ds.n_features,
            window: 1,
            n_classes: ds.n_classes,
            id_binding: true,
        }
        .train(n, HDC_EPOCHS, MISPREDICT_RATE),
        Algo::HdcGeneric => hdc_shape(ds, 4096, seed).train(n, HDC_EPOCHS, MISPREDICT_RATE),
        Algo::Ml(m) => ml_train_ops(m, ds),
    }
}

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!(
        "Fig. 3: per-input energy and execution time on commodity devices (seed {seed})\n\
         (geometric mean over the eleven benchmarks; eGPU shown for HDC + DNN as in the paper)\n"
    );

    let devices = [
        Device::raspberry_pi3(),
        Device::desktop_cpu(),
        Device::jetson_tx2_egpu(),
    ];

    for (phase, is_train) in [("Inference", false), ("Training", true)] {
        let mut header = vec!["Algorithm".to_string()];
        for d in &devices {
            header.push(format!("{} E/input", d.name));
            header.push(format!("{} t/input", d.name));
        }
        let mut rows = Vec::new();
        for algo in ALGOS {
            let mut row = vec![algo.name().to_string()];
            for device in &devices {
                // The paper omits conventional ML on the eGPU (worse than
                // CPU for the small models).
                if device.name == "eGPU"
                    && !algo.is_hdc()
                    && !matches!(algo, Algo::Ml(MlAlgorithm::Dnn))
                {
                    row.push("-".to_string());
                    row.push("-".to_string());
                    continue;
                }
                let mut energies = Vec::new();
                let mut times = Vec::new();
                for b in Benchmark::ALL {
                    let ds = b.load(seed);
                    let n = ds.train.len() as f64;
                    let (ops, invocations, per) = if is_train {
                        // Training is one batched run over the train split;
                        // ML frameworks pay per-epoch dispatch.
                        (train_ops(algo, &ds, seed), 20u64, n)
                    } else {
                        (infer_ops(algo, &ds, seed), 1u64, 1.0)
                    };
                    energies.push(device.energy_j(&ops, invocations) / per);
                    times.push(device.execution_time_s(&ops, invocations) / per);
                }
                let e = geometric_mean(&energies).expect("positive");
                let t = geometric_mean(&times).expect("positive");
                row.push(si(e, "J"));
                row.push(si(t, "s"));
            }
            rows.push(row);
        }
        println!("{phase}:");
        println!("{}", render_table(&header, &rows));
    }

    println!(
        "Paper reference (§3.3): classical ML beats HDC on every commodity device; GENERIC \n\
         encoding costs more than other HDC encodings (multiple hypervectors per window); \n\
         the eGPU improves GENERIC inference energy/time by ~134x/252x over the Raspberry Pi \n\
         (~70x/30x over the CPU) via bit-packing, yet still trails RF-on-CPU by ~12x energy."
    );
}
