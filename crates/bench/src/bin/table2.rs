//! Regenerates **Table 2**: normalized mutual information of K-means and
//! HDC clustering on the FCPS benchmarks and Iris.
//!
//! Usage: `cargo run -p generic-bench --release --bin table2 [seed]`

use generic_bench::report::render_table;
use generic_datasets::ClusteringBenchmark;
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::metrics::normalized_mutual_information;
use generic_hdc::{HdcClustering, HdcClusteringSpec};
use generic_ml::{KMeans, KMeansSpec};

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Table 2: mutual information score of K-means and HDC clustering (seed {seed})\n");

    let mut header = vec!["Method".to_string()];
    header.extend(
        ClusteringBenchmark::ALL
            .iter()
            .map(|b| b.name().to_string()),
    );
    header.push("Mean".to_string());

    let mut kmeans_row = vec!["K-means".to_string()];
    let mut hdc_row = vec!["HDC".to_string()];
    let mut kmeans_scores = Vec::new();
    let mut hdc_scores = Vec::new();

    for benchmark in ClusteringBenchmark::ALL {
        let ds = benchmark.load(seed);

        let (_, kmeans) = KMeans::fit(&ds.points, KMeansSpec::new(ds.k).with_seed(seed))
            .expect("generated datasets are well-formed");
        let kmeans_nmi = normalized_mutual_information(&kmeans.assignments, &ds.labels)
            .expect("equal-length labelings");

        // HDC clustering: encode the raw points with the GENERIC encoding
        // (window clamped to the feature count — windows are less
        // effective with few features, as §5.3 notes).
        let window = 3.min(ds.n_features());
        let spec = GenericEncoderSpec::new(4096, ds.n_features())
            .with_window(window)
            .with_seed(seed);
        let encoder = GenericEncoder::from_data(spec, &ds.points).expect("points are well-formed");
        let encoded = encoder.encode_batch(&ds.points).expect("row widths match");
        let (_, outcome) =
            HdcClustering::fit(&encoded, HdcClusteringSpec::new(ds.k).with_max_epochs(20))
                .expect("k <= n");
        let hdc_nmi = normalized_mutual_information(&outcome.assignments, &ds.labels)
            .expect("equal-length labelings");

        kmeans_row.push(format!("{kmeans_nmi:.3}"));
        hdc_row.push(format!("{hdc_nmi:.3}"));
        kmeans_scores.push(kmeans_nmi);
        hdc_scores.push(hdc_nmi);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    kmeans_row.push(format!("{:.3}", mean(&kmeans_scores)));
    hdc_row.push(format!("{:.3}", mean(&hdc_scores)));

    println!("{}", render_table(&header, &[kmeans_row, hdc_row]));
    println!(
        "Paper reference: K-means 1.0 / 0.637 / 1.0 / 0.774 / 0.758 (mean 0.834); \
         HDC 0.904 / 0.589 / 0.981 / 0.781 / 0.760 (mean 0.803) — \
         K-means slightly ahead on average, HDC comparable."
    );
}
