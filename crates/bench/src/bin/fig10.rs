//! Regenerates **Fig. 10**: per-input clustering energy of GENERIC versus
//! K-means running on the desktop CPU and the Raspberry Pi, per dataset.
//!
//! Usage: `cargo run -p generic-bench --release --bin fig10 [seed]`

use generic_bench::cost::kmeans_shape;
use generic_bench::report::{render_table, si};
use generic_datasets::ClusteringBenchmark;
use generic_devices::Device;
use generic_hdc::metrics::geometric_mean;
use generic_sim::{Accelerator, AcceleratorConfig, EnergyOptions};

const MAX_EPOCHS: usize = 10;

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Fig. 10: per-input clustering energy, GENERIC vs K-means (seed {seed})\n");

    let cpu = Device::desktop_cpu();
    let rpi = Device::raspberry_pi3();

    let header = vec![
        "Dataset".to_string(),
        "GENERIC".to_string(),
        "K-means (CPU)".to_string(),
        "K-means (R-Pi)".to_string(),
        "GENERIC time/input".to_string(),
    ];
    let mut rows = Vec::new();
    let mut ratios_cpu = Vec::new();
    let mut ratios_rpi = Vec::new();
    let mut generic_uj = Vec::new();

    for benchmark in ClusteringBenchmark::ALL {
        let ds = benchmark.load(seed);
        let window = 3.min(ds.n_features());
        let config = AcceleratorConfig::new(4096, ds.n_features(), ds.k.max(2))
            .with_window(window)
            .with_seed(seed);
        let mut acc = Accelerator::new(config, &ds.points).expect("clustering datasets fit");
        let outcome = acc
            .cluster(&ds.points, ds.k, MAX_EPOCHS)
            .expect("k <= n and points well-formed");
        let inputs_processed = (ds.len() * outcome.epochs_run) as f64;
        let report = acc.energy_report(&EnergyOptions::default());
        let generic_energy_uj = report.total_energy_uj / inputs_processed;
        let generic_time_s = report.duration_s / inputs_processed;

        // K-means baseline: the same Lloyd epochs, dispatched per input as
        // the streaming edge deployment (and the paper's per-input
        // measurement) runs it — every arriving point pays the software
        // invocation overhead.
        let ops = kmeans_shape(ds.len(), ds.k, ds.n_features()).run(outcome.epochs_run);
        let invocations = (ds.len() * outcome.epochs_run) as u64;
        let cpu_uj = cpu.energy_j(&ops, invocations) * 1e6 / invocations as f64;
        let rpi_uj = rpi.energy_j(&ops, invocations) * 1e6 / invocations as f64;

        ratios_cpu.push(cpu_uj / generic_energy_uj);
        ratios_rpi.push(rpi_uj / generic_energy_uj);
        generic_uj.push(generic_energy_uj);
        rows.push(vec![
            benchmark.name().to_string(),
            si(generic_energy_uj * 1e-6, "J"),
            si(cpu_uj * 1e-6, "J"),
            si(rpi_uj * 1e-6, "J"),
            si(generic_time_s, "s"),
        ]);
    }

    println!("{}", render_table(&header, &rows));
    let gm = |v: &[f64]| geometric_mean(v).expect("positive values");
    println!(
        "geomean GENERIC energy/input: {} (paper: 0.068 uJ)",
        si(gm(&generic_uj) * 1e-6, "J")
    );
    println!(
        "geomean advantage vs K-means: CPU {:.0}x, R-Pi {:.0}x",
        gm(&ratios_cpu),
        gm(&ratios_rpi)
    );
    println!(
        "Paper reference: 61,400x (CPU) and 17,523x (R-Pi); the measured Python baseline\n\
         carries heavier per-input interpreter overhead than this op-count model, so the\n\
         reproduced advantage is smaller in absolute terms but remains 3-4 orders of\n\
         magnitude with similar NMI (Table 2)."
    );
}
