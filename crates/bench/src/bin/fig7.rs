//! Regenerates **Fig. 7**: area, static-power, and dynamic-power breakdown
//! of the GENERIC accelerator, plus the §5.1 headline silicon figures.
//!
//! Usage: `cargo run -p generic-bench --release --bin fig7 [seed]`

use generic_bench::report::render_table;
use generic_datasets::Benchmark;
use generic_sim::{Accelerator, AcceleratorConfig, EnergyReport};
use generic_sim::{ActivityCounts, EnergyOptions};

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    // A representative mid-size application (MNIST shape: 64 features,
    // 10 classes, D = 4K) running inference.
    let dataset = Benchmark::Mnist.load(seed);
    let config =
        AcceleratorConfig::new(4096, dataset.n_features, dataset.n_classes).with_seed(seed);
    let mut acc =
        Accelerator::new(config, &dataset.train.features).expect("benchmark fits the architecture");
    acc.train(&dataset.train.features, &dataset.train.labels, 5)
        .expect("dataset validated");
    acc.reset_activity();
    for sample in dataset.test.features.iter().take(50) {
        acc.infer(sample).expect("model trained");
    }

    let b = acc.breakdown();
    let header = vec![
        "Component".to_string(),
        "Area (mm2)".to_string(),
        "Area %".to_string(),
        "Static (mW)".to_string(),
        "Static %".to_string(),
        "Dynamic %".to_string(),
    ];
    let rows: Vec<Vec<String>> = b
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.4}", c.area_mm2),
                format!("{:.1}%", 100.0 * c.area_mm2 / b.total_area_mm2()),
                format!("{:.4}", c.static_mw),
                format!("{:.1}%", 100.0 * c.static_mw / b.total_static_mw()),
                format!("{:.1}%", 100.0 * c.dynamic_pj / b.total_dynamic_pj()),
            ]
        })
        .collect();

    println!("Fig. 7: area and power breakdown (seed {seed})\n");
    println!("{}", render_table(&header, &rows));

    println!("Totals:");
    println!("  area: {:.3} mm2 (paper: 0.30 mm2)", b.total_area_mm2());
    println!(
        "  worst-case static power (all banks on): {:.3} mW (paper: 0.25 mW)",
        b.total_static_mw()
    );

    // Application-average static/dynamic power across the benchmark suite.
    let mut static_sum = 0.0;
    let mut dynamic_sum = 0.0;
    let mut count = 0.0;
    for benchmark in Benchmark::ALL {
        let ds = benchmark.load(seed);
        let cfg = AcceleratorConfig::new(4096, ds.n_features, ds.n_classes).with_seed(seed);
        let mut a = Accelerator::new(cfg, &ds.train.features).expect("fits");
        a.train(&ds.train.features, &ds.train.labels, 3)
            .expect("valid");
        a.reset_activity();
        for sample in ds.test.features.iter().take(30) {
            a.infer(sample).expect("model trained");
        }
        let r: EnergyReport = a.energy_report(&EnergyOptions::default());
        static_sum += r.static_power_mw;
        dynamic_sum += r.dynamic_power_mw;
        count += 1.0;
        let _: &ActivityCounts = a.activity();
    }
    println!(
        "  application-average static power (power-gated): {:.3} mW (paper: 0.09 mW)",
        static_sum / count
    );
    println!(
        "  application-average dynamic power: {:.2} mW (paper: 1.79 mW)",
        dynamic_sum / count
    );
}
