//! Throughput harness for the SIMD-dispatched batched inference engine:
//! measures single-query latency (scalar reference vs the dispatched
//! kernels), batched scoring QPS at B ∈ {1, 8, 64, 256} through
//! [`ScoreBatch`], and per-ISA primitive speedups for every kernel set
//! the host exposes, then writes `BENCH_throughput.json`.
//!
//! The harness is self-checking. Three gates are always *measured* and,
//! in full mode, *enforced* (nonzero exit on failure):
//!
//! 1. batched scoring at B = 64 sustains ≥ 3× the single-query scalar
//!    QPS,
//! 2. every batched prediction is bit-identical to the scalar per-query
//!    argmax at every batch size,
//! 3. the steady-state batch scoring loop performs zero heap allocations
//!    (counted by a process-global counting allocator).
//!
//! Usage: `cargo run -p generic-bench --release --bin throughput
//! [seed] [--threads N] [--smoke]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use generic_bench::cli;
use generic_bench::report::render_table;
use generic_datasets::Benchmark;
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::kernels::{self, Isa, KernelSet};
use generic_hdc::{HdcModel, PredictOptions, ScoreBatch};

/// Full-mode gate: batched scoring at B = 64 must sustain at least this
/// multiple of the single-query *scalar* QPS.
const GATE_BATCH64_SPEEDUP: f64 = 3.0;

/// The batch sizes the serve path is characterised at.
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];

// ---------------------------------------------------------------------
// Counting allocator backing the zero-allocation gate.
// ---------------------------------------------------------------------

/// Forwards to the system allocator while counting allocation events
/// (allocations and reallocations), so the steady-state batch loop can
/// be asserted heap-silent.
struct CountingAlloc;

static ALLOCATION_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator with the
        // caller's layout; the GlobalAlloc contract is inherited.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System.alloc`/`System.realloc` with
        // this same layout, as the GlobalAlloc contract requires.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr`/`layout` obey the contract
        // the caller already guarantees to GlobalAlloc.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------

struct Config {
    dim: usize,
    /// Cap on the number of test queries timed (keeps smoke CI-sized).
    max_queries: usize,
    reps: usize,
    /// Iterations per timing sample of one raw kernel primitive.
    kernel_iters: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 4096,
            max_queries: usize::MAX,
            reps: 7,
            kernel_iters: 2_000,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 1024,
            max_queries: 256,
            reps: 3,
            kernel_iters: 200,
        }
    }
}

struct BatchPoint {
    batch: usize,
    ns_per_query: f64,
    qps: f64,
}

struct IsaSpeedups {
    isa: Isa,
    hamming: f64,
    masked_popcount: f64,
    ripple_step: f64,
    dot_i32: f64,
}

fn main() {
    let seed = cli::seed_arg(42);
    let threads = cli::threads_arg();
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };

    println!(
        "throughput: dim={} threads={} seed={} mode={} active_isa={}",
        config.dim,
        threads,
        seed,
        if smoke { "smoke" } else { "full" },
        kernels::active().isa()
    );

    let dataset = Benchmark::Isolet.load(seed);
    let spec = GenericEncoderSpec::new(config.dim, dataset.n_features)
        .with_window(3.min(dataset.n_features).max(1))
        .with_seed(seed);
    let encoder =
        GenericEncoder::from_data(spec, &dataset.train.features).expect("dataset validated");
    let train_encoded = encoder
        .encode_batch(&dataset.train.features)
        .expect("rows validated");
    let mut test_encoded = encoder
        .encode_batch(&dataset.test.features)
        .expect("rows validated");
    test_encoded.truncate(config.max_queries);
    let model = HdcModel::fit(&train_encoded, &dataset.train.labels, dataset.n_classes)
        .expect("labels validated");
    let opts = PredictOptions::full(config.dim);

    // --- single-query latency: scalar reference vs dispatched kernels ---
    let single_scalar_ns = median_ns_per_op(config.reps, test_encoded.len(), || {
        for q in &test_encoded {
            black_box(argmax(&model.scores_scalar(q, opts)));
        }
    });
    let single_kernel_ns = median_ns_per_op(config.reps, test_encoded.len(), || {
        for q in &test_encoded {
            black_box(model.predict_with(q, opts));
        }
    });
    let single_scalar_qps = qps(single_scalar_ns);
    let single_kernel_qps = qps(single_kernel_ns);
    println!(
        "single-query: scalar {single_scalar_ns:.0} ns ({single_scalar_qps:.0} QPS), \
         kernel {single_kernel_ns:.0} ns ({single_kernel_qps:.0} QPS)"
    );

    // The scalar per-query oracle every batched run must reproduce.
    let expected: Vec<usize> = test_encoded
        .iter()
        .map(|q| argmax(&model.scores_scalar(q, opts)))
        .collect();

    // --- batched scoring: QPS per batch size + bit-identity check ---
    let mut engine = ScoreBatch::new();
    let mut preds: Vec<usize> = Vec::new();
    let mut got: Vec<usize> = Vec::with_capacity(test_encoded.len());
    let mut bit_identity = true;
    let mut batch_points = Vec::new();
    for batch in BATCH_SIZES {
        got.clear();
        for chunk in test_encoded.chunks(batch) {
            engine.predict_into(&model, chunk, opts, &mut preds);
            got.extend_from_slice(&preds);
        }
        if got != expected {
            bit_identity = false;
            eprintln!("CHECK FAILED: batch={batch} predictions diverge from the scalar oracle");
        }
        let ns_per_query = median_ns_per_op(config.reps, test_encoded.len(), || {
            for chunk in test_encoded.chunks(batch) {
                engine.predict_into(&model, chunk, opts, &mut preds);
                black_box(&preds);
            }
        });
        println!(
            "batched B={batch:<3}: {ns_per_query:>8.0} ns/query  {:>12.0} QPS",
            qps(ns_per_query)
        );
        batch_points.push(BatchPoint {
            batch,
            ns_per_query,
            qps: qps(ns_per_query),
        });
    }

    // --- zero-allocation check on the warm steady-state batch loop ---
    let before = ALLOCATION_EVENTS.load(Ordering::SeqCst);
    for _ in 0..4 {
        for chunk in test_encoded.chunks(64) {
            engine.predict_into(&model, chunk, opts, &mut preds);
            black_box(&preds);
        }
    }
    let allocation_events = ALLOCATION_EVENTS.load(Ordering::SeqCst) - before;
    let zero_alloc = allocation_events == 0;
    if !zero_alloc {
        eprintln!(
            "CHECK FAILED: steady-state batch loop performed {allocation_events} allocations"
        );
    }

    // --- raw kernel primitives, every detected ISA vs portable ---
    let isa_speedups = measure_isas(&config, seed);
    let header: Vec<String> = [
        "isa",
        "hamming",
        "masked_popcount",
        "ripple_step",
        "dot_i32",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let rows: Vec<Vec<String>> = isa_speedups
        .iter()
        .map(|s| {
            vec![
                s.isa.to_string(),
                format!("{:.2}x", s.hamming),
                format!("{:.2}x", s.masked_popcount),
                format!("{:.2}x", s.ripple_step),
                format!("{:.2}x", s.dot_i32),
            ]
        })
        .collect();
    println!(
        "\nkernel speedups vs portable:\n{}",
        render_table(&header, &rows)
    );

    let batch64_speedup = batch_points
        .iter()
        .find(|p| p.batch == 64)
        .map_or(0.0, |p| p.qps / single_scalar_qps.max(1e-9));

    let json = render_json(
        &config,
        seed,
        threads,
        smoke,
        single_scalar_ns,
        single_kernel_ns,
        &batch_points,
        &isa_speedups,
        batch64_speedup,
        bit_identity,
        zero_alloc,
        allocation_events,
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    println!(
        "gates: B=64 {batch64_speedup:.2}x vs scalar single-query (need \
         {GATE_BATCH64_SPEEDUP:.1}x), bit_identity={bit_identity}, zero_alloc={zero_alloc}"
    );
    if smoke {
        println!("smoke mode: gates reported, not enforced");
        return;
    }
    let mut failed = false;
    if batch64_speedup < GATE_BATCH64_SPEEDUP {
        eprintln!(
            "GATE FAILED: B=64 QPS speedup {batch64_speedup:.2}x < {GATE_BATCH64_SPEEDUP:.1}x"
        );
        failed = true;
    }
    if !bit_identity {
        eprintln!("GATE FAILED: batched predictions are not bit-identical to the scalar oracle");
        failed = true;
    }
    if !zero_alloc {
        eprintln!("GATE FAILED: steady-state batch scoring touched the heap");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("all gates passed");
}

/// Times the four raw primitives on synthetic buffers for every kernel
/// set the host exposes, reporting each ISA's speedup over portable.
fn measure_isas(config: &Config, seed: u64) -> Vec<IsaSpeedups> {
    let words = config.dim / 64;
    let mut state = seed | 1;
    let a_bits: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();
    let b_bits: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();
    let mask: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();
    let a_ints: Vec<i32> = (0..config.dim)
        .map(|_| (splitmix64(&mut state) % 17) as i32 - 8)
        .collect();
    let b_ints: Vec<i32> = (0..config.dim)
        .map(|_| (splitmix64(&mut state) % 17) as i32 - 8)
        .collect();
    let plane0: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();
    let carry0: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();

    let time_set = |set: &'static KernelSet| -> [f64; 4] {
        let mut plane = vec![0u64; words];
        let mut carry = vec![0u64; words];
        let hamming = median_ns_per_op(config.reps, config.kernel_iters, || {
            for _ in 0..config.kernel_iters {
                black_box(set.hamming(black_box(&a_bits), black_box(&b_bits)));
            }
        });
        let masked = median_ns_per_op(config.reps, config.kernel_iters, || {
            for _ in 0..config.kernel_iters {
                black_box(set.masked_popcount(
                    black_box(&a_bits),
                    black_box(&b_bits),
                    black_box(&mask),
                ));
            }
        });
        // Each iteration restores the pristine plane/carry so every ISA
        // ripples the same carry chain; the copies are part of both
        // sides of the comparison.
        let ripple = median_ns_per_op(config.reps, config.kernel_iters, || {
            for _ in 0..config.kernel_iters {
                plane.copy_from_slice(&plane0);
                carry.copy_from_slice(&carry0);
                black_box(set.ripple_step(black_box(&mut plane), black_box(&mut carry)));
            }
        });
        let dot = median_ns_per_op(config.reps, config.kernel_iters, || {
            for _ in 0..config.kernel_iters {
                black_box(set.dot_i32(black_box(&a_ints), black_box(&b_ints)));
            }
        });
        [hamming, masked, ripple, dot]
    };

    let portable = time_set(kernels::for_isa(Isa::Portable).expect("portable is always available"));
    kernels::available()
        .into_iter()
        .map(|isa| {
            let t = time_set(kernels::for_isa(isa).expect("listed by available()"));
            IsaSpeedups {
                isa,
                hamming: portable[0] / t[0].max(1e-9),
                masked_popcount: portable[1] / t[1].max(1e-9),
                ripple_step: portable[2] / t[2].max(1e-9),
                dot_i32: portable[3] / t[3].max(1e-9),
            }
        })
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn qps(ns_per_op: f64) -> f64 {
    if ns_per_op > 0.0 {
        1e9 / ns_per_op
    } else {
        f64::INFINITY
    }
}

/// Runs `op` (a whole batch of `ops` operations) `reps` times and returns
/// the median ns per operation.
fn median_ns_per_op<F: FnMut()>(reps: usize, ops: usize, mut op: F) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        op();
        samples.push(start.elapsed().as_nanos() as f64 / ops.max(1) as f64);
    }
    median(samples)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = v.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Index of the best score (last max wins, matching `HdcModel::predict`).
fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("model has at least one class")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    seed: u64,
    threads: usize,
    smoke: bool,
    single_scalar_ns: f64,
    single_kernel_ns: f64,
    batch_points: &[BatchPoint],
    isa_speedups: &[IsaSpeedups],
    batch64_speedup: f64,
    bit_identity: bool,
    zero_alloc: bool,
    allocation_events: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"throughput-v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"dim\": {},\n", config.dim));
    out.push_str(&format!(
        "  \"active_isa\": \"{}\",\n",
        kernels::active().isa()
    ));
    out.push_str(&format!(
        "  \"single_query\": {{\"scalar_ns\": {single_scalar_ns:.1}, \
         \"kernel_ns\": {single_kernel_ns:.1}, \"scalar_qps\": {:.1}, \
         \"kernel_qps\": {:.1}}},\n",
        qps(single_scalar_ns),
        qps(single_kernel_ns)
    ));
    out.push_str("  \"batched\": [\n");
    for (i, p) in batch_points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"batch\": {}, \"ns_per_query\": {:.1}, \"qps\": {:.1}, \
             \"speedup_vs_scalar_single\": {:.3}}}{}\n",
            p.batch,
            p.ns_per_query,
            p.qps,
            p.qps / qps(single_scalar_ns).max(1e-9),
            if i + 1 < batch_points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kernel_speedups_vs_portable\": [\n");
    for (i, s) in isa_speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"isa\": \"{}\", \"hamming\": {:.3}, \"masked_popcount\": {:.3}, \
             \"ripple_step\": {:.3}, \"dot_i32\": {:.3}}}{}\n",
            s.isa,
            s.hamming,
            s.masked_popcount,
            s.ripple_step,
            s.dot_i32,
            if i + 1 < isa_speedups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"checks\": {{\"batch64_speedup\": {batch64_speedup:.3}, \
         \"bit_identity\": {bit_identity}, \"zero_alloc\": {zero_alloc}, \
         \"allocation_events\": {allocation_events}}},\n"
    ));
    out.push_str(&format!(
        "  \"gates\": {{\"batch64_min_speedup\": {GATE_BATCH64_SPEEDUP}, \
         \"bit_identity\": true, \"zero_alloc\": true, \"enforced\": {}}}\n",
        !smoke
    ));
    out.push_str("}\n");
    out
}
