//! Soak harness for the crash-safe online-learning runtime: replays an
//! interleaved train/infer stream through [`OnlineRuntime`] with
//! injected kills, a torn-write corruption, a deadline storm, and
//! garbage records, and writes `BENCH_soak.json` with recovery-time and
//! degradation-hit-rate numbers.
//!
//! Acceptance gates (enforced in both modes — they are correctness
//! gates, not perf gates; the harness exits nonzero on any violation):
//!
//! 1. **kill -9 mid-stream**: recovery lands on the newest checkpoint
//!    generation, losing at most the samples since the last checkpoint.
//! 2. **torn write**: with the newest generation corrupted on disk,
//!    recovery rejects it and falls back to the previous intact one.
//! 3. **deadline storm**: ≥ 99% of requests get an answer (degraded
//!    tiers allowed, drops counted), and the ladder's per-tier counters
//!    account for every answer.
//! 4. **garbage records**: every malformed learning sample is
//!    quarantined — none learned, none panicking — and the clean ones
//!    all land.
//! 5. **chaos soak on the sharded server**: a seeded fault plan — kill
//!    a shard mid-batch, stall the writer, inject checkpoint write
//!    failures, and an overload deadline storm — while gating on
//!    availability (≥ 99.9% of admitted requests answered within
//!    deadline), zero divergence from the scalar oracle on answered
//!    requests, and bounded shard-kill recovery time.
//! 6. **generational tenant ledger under crash faults**: a publish
//!    storm across three tenants with injected transient I/O faults
//!    (absorbed by the retry policy), simulated kill -9 at seeded
//!    create/write/sync/rename boundaries, torn manifests, and a
//!    concurrent reader registry — gating on zero lost last-good
//!    generations (every recovery serves a CRC-valid previously
//!    published model), bounded recovery time, auto-rollback serving
//!    the prior generation on a corrupt live image, and reader
//!    coherence with the writer's final state.
//!
//! Usage: `cargo run -p generic-bench --release --bin soak
//! [seed] [--smoke]`

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use generic_bench::cli;
use generic_hdc::encoding::{Encoder, GenericEncoderSpec};
use generic_hdc::ledger::{FsOp, LedgerFs};
use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
use generic_hdc::{
    BinaryHv, HdcModel, HdcPipeline, IntHv, ModelRegistry, NormMode, PredictOptions,
    QuantizedModel, RegistryConfig, RuntimeError, ServeConfig, Server, SubmitError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 10;
const N_CLASSES: usize = 3;

struct Config {
    dim: usize,
    bootstrap_samples: usize,
    stream_samples: usize,
    checkpoint_every: u64,
    storm_requests: usize,
    garbage_records: usize,
    chaos_requests: usize,
    chaos_learns: usize,
    ledger_rounds: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 2048,
            bootstrap_samples: 240,
            stream_samples: 1200,
            checkpoint_every: 64,
            storm_requests: 2000,
            garbage_records: 120,
            chaos_requests: 2000,
            chaos_learns: 160,
            ledger_rounds: 20,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 512,
            bootstrap_samples: 90,
            stream_samples: 240,
            checkpoint_every: 16,
            storm_requests: 400,
            garbage_records: 30,
            chaos_requests: 400,
            chaos_learns: 48,
            ledger_rounds: 8,
        }
    }
}

/// Everything scenario 5 (sharded chaos soak) measured, for the JSON
/// report.
struct ChaosSummary {
    shards: usize,
    admitted: u64,
    answered: u64,
    availability: f64,
    shard_recovery_ms: f64,
    storm_shed: u64,
    backpressure_waits: u64,
    divergences: u64,
    panics: u64,
    restarts: u64,
    requeued: u64,
    writer_stalls: u64,
    checkpoint_retries: u64,
    storm_budget_ms: f64,
}

/// Everything scenario 6 (generational ledger crash soak) measured.
struct LedgerSummary {
    tenants: usize,
    rounds: usize,
    publishes: u64,
    crashes: u64,
    torn_manifests: u64,
    max_recovery_ms: f64,
    publish_retries: u64,
    rollbacks: u64,
    recoveries: u64,
    tmp_sweeps: u64,
    reader_samples: u64,
    reader_errors: u64,
    lost: u64,
    mismatches: u64,
}

/// One gate: a named pass/fail with the observed evidence.
struct Gate {
    name: &'static str,
    passed: bool,
    detail: String,
}

impl Gate {
    fn check(name: &'static str, passed: bool, detail: String) -> Self {
        let verdict = if passed { "PASS" } else { "FAIL" };
        println!("gate {name}: {verdict} — {detail}");
        Gate {
            name,
            passed,
            detail,
        }
    }
}

/// A separable 3-band sample: features in the class's band sit high,
/// the rest low, with uniform jitter.
fn sample(rng: &mut StdRng, class: usize) -> Vec<f64> {
    (0..N_FEATURES)
        .map(|j| {
            let band = j / (N_FEATURES / N_CLASSES).max(1);
            let base = if band == class { 8.0 } else { 1.0 };
            base + rng.random_range(-0.5..0.5)
        })
        .collect()
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ghdc-soak-{}-{seed}", std::process::id()))
}

const LEDGER_DIM: usize = 256;
const LEDGER_TENANTS: [&str; 3] = ["acme", "globex", "initech"];

/// A small, distinct per-seed tenant model for the ledger scenario.
fn ledger_model(seed: u64) -> QuantizedModel {
    let encoded: Vec<IntHv> = (0..4u64)
        .map(|c| {
            IntHv::from(
                BinaryHv::random_seeded(LEDGER_DIM, seed.wrapping_mul(101).wrapping_add(c))
                    .expect("dim > 0"),
            )
        })
        .collect();
    let model = HdcModel::fit(&encoded, &[0, 1, 2, 3], 4).expect("valid inputs");
    QuantizedModel::from_model(&model, 8).expect("valid width")
}

/// Bit pattern of a model's heap-oracle scores on the fixed query —
/// the identity every served answer is checked against.
fn oracle_bits(model: &QuantizedModel, query: &BinaryHv) -> Vec<u64> {
    model
        .pack()
        .expect("sample model packs")
        .scores(query)
        .expect("dim matches")
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

fn open_store(dir: &Path) -> CheckpointStore {
    CheckpointStore::open(dir, 4, RetryPolicy::default()).expect("checkpoint dir is creatable")
}

fn runtime_config(config: &Config) -> RuntimeConfig {
    RuntimeConfig {
        checkpoint_every: config.checkpoint_every,
        holdout_every: 10,
        ..RuntimeConfig::default()
    }
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    println!(
        "soak: dim={} stream={} ckpt-every={} storm={} seed={seed} mode={}",
        config.dim,
        config.stream_samples,
        config.checkpoint_every,
        config.storm_requests,
        if smoke { "smoke" } else { "full" }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let dir = scratch_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);

    let mut gates = Vec::new();

    // --- bootstrap: train an initial pipeline and make it durable ---
    let features: Vec<Vec<f64>> = (0..config.bootstrap_samples)
        .map(|i| sample(&mut rng, i % N_CLASSES))
        .collect();
    let labels: Vec<usize> = (0..config.bootstrap_samples)
        .map(|i| i % N_CLASSES)
        .collect();
    let spec = GenericEncoderSpec::new(config.dim, N_FEATURES).with_seed(seed);
    let pipeline = HdcPipeline::train(spec, &features, &labels, N_CLASSES, 5)
        .expect("separable bootstrap data");
    let rt_config = runtime_config(&config);
    let mut runtime =
        OnlineRuntime::new(pipeline, open_store(&dir), rt_config).expect("valid runtime config");
    runtime.checkpoint().expect("initial checkpoint");

    // --- scenario 1: interleaved stream, then kill -9 mid-stream ---
    // The kill point is random but at least one checkpoint interval in,
    // so there is something to lose.
    let kill_at = rng.random_range(config.checkpoint_every as usize + 1..config.stream_samples);
    let mut streamed = 0usize;
    for i in 0..config.stream_samples {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        if i % 4 == 3 {
            let _ = runtime.infer(&x, None);
        } else {
            runtime.learn(&x, class).expect("clean sample");
            streamed += 1;
        }
        if streamed == kill_at {
            break;
        }
    }
    let seen_at_kill = runtime.seen();
    let gen_at_kill = runtime.generation();
    drop(runtime); // the kill: all in-memory state vanishes, no final checkpoint
                   // A crash mid-write also leaves a half-written temp file behind.
    std::fs::write(
        dir.join("ckpt-99999999999999999999.ghdc.tmp"),
        b"torn half-written checkpoint",
    )
    .expect("scratch dir writable");

    let (recovered, report) = match OnlineRuntime::recover(open_store(&dir), rt_config) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("GATE FAILED: recovery after kill -9 errored: {e}");
            std::process::exit(1);
        }
    };
    let kill_recovery_ms = report.elapsed.as_secs_f64() * 1e3;
    let lost = seen_at_kill - recovered.seen();
    gates.push(Gate::check(
        "kill_recovers_newest_generation",
        recovered.generation() == gen_at_kill && report.rejected.is_empty(),
        format!(
            "recovered generation {} (at kill: {gen_at_kill}), {} rejected, {:.2} ms",
            recovered.generation(),
            report.rejected.len(),
            kill_recovery_ms
        ),
    ));
    gates.push(Gate::check(
        "kill_loses_at_most_one_interval",
        lost <= config.checkpoint_every,
        format!(
            "lost {lost} of {seen_at_kill} samples (interval {})",
            config.checkpoint_every
        ),
    ));

    // --- scenario 2: torn write — corrupt the newest generation ---
    let mut runtime = recovered;
    for _ in 0..config.checkpoint_every + 4 {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        runtime.learn(&x, class).expect("clean sample");
    }
    let newest_gen = runtime.generation();
    let prev_gen = newest_gen - 1;
    drop(runtime);
    let newest_path = dir.join(format!("ckpt-{newest_gen:020}.ghdc"));
    let mut bytes = std::fs::read(&newest_path).expect("newest generation readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20; // a single flipped bit mid-payload
    std::fs::write(&newest_path, &bytes).expect("scratch dir writable");

    // Keep a clone of the store: it shares the retry/injection counters
    // with the runtime's copy, so scenario 5 can inject checkpoint
    // write failures into the live writer from outside.
    let store = open_store(&dir);
    let chaos_store = store.clone();
    let (recovered, report) = match OnlineRuntime::recover(store, rt_config) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("GATE FAILED: recovery after torn write errored: {e}");
            std::process::exit(1);
        }
    };
    let torn_recovery_ms = report.elapsed.as_secs_f64() * 1e3;
    gates.push(Gate::check(
        "torn_write_falls_back_to_previous_generation",
        recovered.generation() == prev_gen && report.rejected.iter().any(|(g, _)| *g == newest_gen),
        format!(
            "corrupted generation {newest_gen}, recovered {} ({} rejected, {:.2} ms)",
            recovered.generation(),
            report.rejected.len(),
            torn_recovery_ms
        ),
    ));

    // --- scenario 3: deadline storm ---
    let mut runtime = recovered;
    for _ in 0..20 {
        // Warm the full tier's latency estimate so budgets bite.
        let x = sample(&mut rng, 0);
        let _ = runtime.infer(&x, None);
    }
    let full_est_ns = runtime
        .ladder()
        .estimate_ns(runtime.ladder().full_tier())
        .unwrap_or(1e5);
    let storm_base = runtime.stats().infer_requests;
    let mut garbage_requests = 0u64;
    for i in 0..config.storm_requests {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        // A hostile minority of the storm: one malformed request per ~250.
        if i % 251 == 250 {
            garbage_requests += 1;
            let _ = runtime.infer(&[f64::NAN; N_FEATURES], None);
            continue;
        }
        // Budgets from hopelessly tight through comfortable: the ladder
        // must degrade rather than drop.
        let budget_ns = match i % 4 {
            0 => full_est_ns * 0.05, // floor-tier territory
            1 => full_est_ns * 0.5,  // mid-ladder
            2 => full_est_ns * 1.5,  // full dim, tight
            _ => full_est_ns * 20.0, // comfortable
        };
        let budget = Duration::from_nanos(budget_ns.max(1.0) as u64);
        let _ = runtime.infer(&x, Some(budget));
    }
    let stats = *runtime.stats();
    let storm_requests = stats.infer_requests - storm_base;
    let storm_answered = storm_requests - stats.rejected - stats.shed;
    let answer_rate = storm_answered as f64 / storm_requests as f64;
    let tier_hits: Vec<u64> = runtime.ladder().hits().to_vec();
    let tier_dims: Vec<usize> = runtime.ladder().tier_dims().to_vec();
    let degradation_hit_rate = stats.degraded as f64 / stats.answered.max(1) as f64;
    gates.push(Gate::check(
        "storm_answers_at_least_99_percent",
        answer_rate >= 0.99,
        format!(
            "{storm_answered}/{storm_requests} answered ({:.2}%), {} rejected, {} shed",
            answer_rate * 100.0,
            stats.rejected,
            stats.shed
        ),
    ));
    gates.push(Gate::check(
        "storm_degrades_instead_of_dropping",
        stats.degraded > 0 && tier_hits.iter().sum::<u64>() == stats.answered,
        format!(
            "{} degraded answers ({:.1}% of answers), tier hits {:?} over dims {:?}",
            stats.degraded,
            degradation_hit_rate * 100.0,
            tier_hits,
            tier_dims
        ),
    ));

    // --- scenario 4: garbage learning records ---
    let quarantined_base = runtime.stats().quarantined;
    let learned_base = runtime.stats().learned + runtime.stats().held_out;
    let mut clean = 0u64;
    for i in 0..config.garbage_records {
        let class = rng.random_range(0..N_CLASSES);
        let garbage: (Vec<f64>, usize) = match i % 5 {
            0 => (vec![f64::NAN; N_FEATURES], class),
            1 => (vec![f64::INFINITY; N_FEATURES], class),
            2 => (sample(&mut rng, class)[..N_FEATURES - 2].to_vec(), class),
            3 => (vec![1e12; N_FEATURES], class),
            _ => (sample(&mut rng, class), N_CLASSES + 7),
        };
        match runtime.learn(&garbage.0, garbage.1) {
            Err(RuntimeError::Rejected(_)) => {}
            other => {
                eprintln!("GATE FAILED: garbage record {i} was not quarantined: {other:?}");
                std::process::exit(1);
            }
        }
        // Interleave clean samples: the stream must keep flowing.
        let x = sample(&mut rng, class);
        runtime.learn(&x, class).expect("clean sample");
        clean += 1;
    }
    let quarantined = runtime.stats().quarantined - quarantined_base;
    let processed = runtime.stats().learned + runtime.stats().held_out - learned_base;
    let probe = sample(&mut rng, 1);
    let still_serves = runtime.infer(&probe, None).is_ok();
    gates.push(Gate::check(
        "garbage_is_quarantined_not_learned",
        quarantined == config.garbage_records as u64 && processed == clean && still_serves,
        format!(
            "{quarantined}/{} quarantined, {processed}/{clean} clean processed, serves: {still_serves}",
            config.garbage_records
        ),
    ));

    // --- scenario 5: chaos soak on the sharded server ---
    // The surviving runtime becomes the writer of a 2-shard server; a
    // seeded fault plan then kills a shard mid-batch, stalls the
    // writer, injects checkpoint write failures, and runs an overload
    // storm — all while every answer must stay bit-identical to the
    // scalar oracle replayed on its pinned snapshot.
    let serve_config = ServeConfig {
        shards: 2,
        batch_max: 8,
        restart_backoff: Duration::from_millis(2),
        restart_backoff_max: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    // The shard kill below panics on purpose; keep the report to one
    // line instead of a full backtrace.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("(chaos) worker panic caught by supervisor: {info}");
    }));
    chaos_store.inject_write_failures(2); // absorbed by the 3-attempt retry budget
    let server = Server::start(runtime, serve_config).expect("server starts");
    let handle = server.handle();

    // Answered requests kept for the oracle replay: (features, answer).
    let mut answered = Vec::new();
    let mut admitted = 0u64;
    let mut backpressure_waits = 0u64;
    let mut storm_shed = 0u64;

    // Warm every shard's ladder so the admission floor has data, and
    // record a generous per-request latency budget for the storm.
    let mut warm_worst = Duration::ZERO;
    for _ in 0..40 {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        if let Ok(ticket) = handle.submit(x.clone(), None) {
            admitted += 1;
            if let Ok(answer) = ticket.wait() {
                warm_worst = warm_worst.max(answer.elapsed);
                answered.push((x, answer));
            }
        }
    }

    // Fault 1: kill shard 0 mid-batch; its in-flight work must be
    // requeued and answered elsewhere, and the supervisor must restart
    // the shard within its backoff.
    handle.chaos_kill_shard(0);
    let kill_start = Instant::now();
    for _ in 0..config.chaos_requests / 4 {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        match handle.submit(x.clone(), None) {
            Ok(ticket) => {
                admitted += 1;
                if let Ok(answer) = ticket.wait() {
                    answered.push((x, answer));
                }
            }
            Err(SubmitError::QueueFull) => backpressure_waits += 1,
            Err(e) => panic!("unbudgeted chaos request refused: {e}"),
        }
    }
    let recovery_deadline = Instant::now() + Duration::from_secs(5);
    let shard_recovery_ms = loop {
        let stats = handle.stats();
        if stats.shard_restarts >= 1 {
            break kill_start.elapsed().as_secs_f64() * 1e3;
        }
        if Instant::now() > recovery_deadline {
            break f64::NAN;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    let after_kill = handle.stats();
    gates.push(Gate::check(
        "chaos_shard_kill_recovers",
        after_kill.shard_panics >= 1
            && after_kill.shard_restarts >= 1
            && shard_recovery_ms.is_finite(),
        format!(
            "{} panic(s), {} restart(s), {} request(s) requeued, recovered in {:.2} ms",
            after_kill.shard_panics,
            after_kill.shard_restarts,
            after_kill.requeued,
            shard_recovery_ms
        ),
    ));

    // Fault 2: stall the writer and inject learn traffic — the read
    // path must keep answering while the writer sleeps, and the learn
    // queue must shed (not block) once full.
    handle.chaos_stall_writer(Duration::from_millis(150));
    let mut learn_offered = 0u64;
    for _ in 0..config.chaos_learns {
        let class = rng.random_range(0..N_CLASSES);
        let _ = handle.submit_learn(sample(&mut rng, class), class);
        learn_offered += 1;
        let x = sample(&mut rng, class);
        if let Ok(ticket) = handle.submit(x.clone(), None) {
            admitted += 1;
            if let Ok(answer) = ticket.wait() {
                answered.push((x, answer));
            }
        }
    }

    // Fault 3: overload deadline storm — a tight closed loop at the
    // bounded queue's admission limit, every request under a generous
    // deadline (~50× the worst warm-up latency). Backpressure may defer
    // admission; what is admitted must be answered within deadline.
    let storm_budget = warm_worst
        .saturating_mul(50)
        .max(Duration::from_millis(250));
    let mut storm_tickets = Vec::new();
    for _ in 0..config.chaos_requests {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        loop {
            match handle.submit(x.clone(), Some(storm_budget)) {
                Ok(ticket) => {
                    admitted += 1;
                    storm_tickets.push((x, ticket));
                    break;
                }
                Err(SubmitError::QueueFull) => {
                    backpressure_waits += 1;
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(SubmitError::DeadlineHopeless { .. }) => {
                    storm_shed += 1;
                    break;
                }
                Err(e) => panic!("storm request refused: {e}"),
            }
        }
    }
    let mut storm_answered = 0u64;
    let mut storm_in_deadline = 0u64;
    for (x, ticket) in storm_tickets {
        if let Ok(answer) = ticket.wait() {
            storm_answered += 1;
            if answer.deadline_met {
                storm_in_deadline += 1;
            }
            answered.push((x, answer));
        }
    }

    let report = server.drain().expect("drain joins the fleet");
    let _ = std::panic::take_hook(); // restore default panic reporting
    let in_deadline_total = answered.len() as u64 - (storm_answered - storm_in_deadline);
    let availability = in_deadline_total as f64 / admitted.max(1) as f64;
    gates.push(Gate::check(
        "chaos_availability_99_9",
        availability >= 0.999 && report.serve.canceled == 0,
        format!(
            "{in_deadline_total}/{admitted} admitted answered in deadline ({:.3}%), \
             {storm_shed} shed at admission, {backpressure_waits} backpressure waits, \
             {} canceled",
            availability * 100.0,
            report.serve.canceled
        ),
    ));

    // Zero divergence: replay every answered request through the
    // scalar oracle on the exact snapshot that answered it.
    let mut divergences = 0u64;
    for (x, answer) in &answered {
        let snapshot_pipeline = answer.snapshot.pipeline();
        let encoded = snapshot_pipeline
            .encoder()
            .encode(x)
            .expect("clean chaos sample encodes");
        let oracle = snapshot_pipeline
            .model()
            .try_predict_with(
                &encoded,
                PredictOptions::reduced(answer.dims_used, NormMode::Updated),
            )
            .expect("oracle replay succeeds");
        if oracle != answer.label {
            divergences += 1;
        }
    }
    gates.push(Gate::check(
        "chaos_zero_oracle_divergence",
        divergences == 0,
        format!(
            "{divergences}/{} answered requests diverged",
            answered.len()
        ),
    ));

    gates.push(Gate::check(
        "chaos_writer_survives_stall_and_fsync_faults",
        report.final_checkpoint_ok
            && report.serve.writer_stalls >= 1
            && report.writer.checkpoint_retries >= 2,
        format!(
            "final checkpoint ok: {}, {} stall(s), {} checkpoint retries, \
             {}/{} learn offered applied-or-quarantined",
            report.final_checkpoint_ok,
            report.serve.writer_stalls,
            report.writer.checkpoint_retries,
            report.serve.learn_submitted - report.serve.learn_rejected,
            learn_offered
        ),
    ));

    let chaos = ChaosSummary {
        shards: 2,
        admitted,
        answered: answered.len() as u64,
        availability,
        shard_recovery_ms,
        storm_shed,
        backpressure_waits,
        divergences,
        panics: report.serve.shard_panics,
        restarts: report.serve.shard_restarts,
        requeued: report.serve.requeued,
        writer_stalls: report.serve.writer_stalls,
        checkpoint_retries: report.writer.checkpoint_retries,
        storm_budget_ms: storm_budget.as_secs_f64() * 1e3,
    };
    let final_stats = report.writer;
    let final_generation = report.generation;
    let _ = std::fs::remove_dir_all(&dir);

    // --- scenario 6: generational tenant ledger under crash faults ---
    // A publish storm across three tenants through the crash-injectable
    // fs layer: transient faults must be absorbed by the retry policy,
    // kill -9 at any create/write/sync/rename/sync-dir boundary (image
    // or manifest phase) must never lose the last committed generation,
    // torn manifests must be rebuilt from CRC-valid images, and a
    // concurrent reader registry must stay coherent throughout.
    let ledger_dir = scratch_dir(seed).with_extension("ledger");
    let _ = std::fs::remove_dir_all(&ledger_dir);
    let ledger_config = RegistryConfig {
        byte_budget: 1 << 20,
        dim: LEDGER_DIM,
        keep_generations: 3,
        watch_every: 1,
        retry: RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter: false,
        },
        ..RegistryConfig::default()
    };
    let query = BinaryHv::random_seeded(LEDGER_DIM, seed ^ 0xA5).expect("dim > 0");

    let mut fs = LedgerFs::new();
    let mut registry = ModelRegistry::open_with_fs(&ledger_dir, ledger_config, fs.clone())
        .expect("ledger scratch dir is creatable");
    assert!(registry.is_writer(), "first opener takes the writer lock");

    // Per-tenant oracle history: `committed` are manifest-committed
    // publishes in order; `acceptable` adds crash-in-flight images (a
    // crash after the image rename but before the manifest sync may
    // legitimately surface them after recovery).
    let mut committed: Vec<Vec<Vec<u64>>> = vec![Vec::new(); LEDGER_TENANTS.len()];
    let mut acceptable: Vec<Vec<Vec<u64>>> = vec![Vec::new(); LEDGER_TENANTS.len()];
    let mut publishes = 0u64;
    for (i, tenant) in LEDGER_TENANTS.iter().enumerate() {
        let model = ledger_model(seed.wrapping_mul(977).wrapping_add(i as u64));
        let bits = oracle_bits(&model, &query);
        registry
            .publish(tenant, &model)
            .expect("clean baseline publish");
        publishes += 1;
        committed[i].push(bits.clone());
        acceptable[i].push(bits);
    }

    // The concurrent reader: a second registry over the same directory
    // (a second process in spirit — the flock excludes it from writing)
    // sampling tenants throughout the storm.
    let stop = Arc::new(AtomicBool::new(false));
    type TenantSample = (usize, Vec<u64>);
    let samples: Arc<Mutex<Vec<TenantSample>>> = Arc::new(Mutex::new(Vec::new()));
    let reader_errors = Arc::new(AtomicU64::new(0));
    let reader_thread = {
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        let reader_errors = Arc::clone(&reader_errors);
        let dir = ledger_dir.clone();
        let query = query.clone();
        std::thread::spawn(move || {
            let reader = ModelRegistry::open(&dir, ledger_config).expect("reader registry opens");
            let was_writer = reader.is_writer();
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let t = n % LEDGER_TENANTS.len();
                n += 1;
                match reader.get(LEDGER_TENANTS[t]) {
                    Ok(handle) => {
                        let bits: Vec<u64> = handle
                            .view()
                            .scores(&query)
                            .expect("dim matches")
                            .iter()
                            .map(|s| s.to_bits())
                            .collect();
                        samples.lock().expect("sampler mutex").push((t, bits));
                    }
                    Err(_) => {
                        reader_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            (was_writer, reader)
        })
    };

    let mut crashes = 0u64;
    let mut torn_manifests = 0u64;
    let mut lost = 0u64;
    let mut mismatches = 0u64;
    let mut max_recovery = Duration::ZERO;
    let mut agg_retries = 0u64;
    let mut agg_rollbacks = 0u64;
    let mut agg_recoveries = 0u64;
    let mut agg_sweeps = 0u64;
    let mut planted_tmp = false;
    let all_ops = [
        FsOp::Create,
        FsOp::Write,
        FsOp::Sync,
        FsOp::Rename,
        FsOp::SyncDir,
    ];

    for round in 0..config.ledger_rounds {
        for (i, tenant) in LEDGER_TENANTS.iter().enumerate() {
            let model_seed = seed
                .wrapping_mul(977)
                .wrapping_add(((round + 1) * LEDGER_TENANTS.len() + i) as u64);
            let model = ledger_model(model_seed);
            let bits = oracle_bits(&model, &query);
            match rng.random_range(0..6u32) {
                0 | 1 => {
                    // Transient faults within the retry budget: the
                    // publish must succeed anyway.
                    let op = all_ops[rng.random_range(0..all_ops.len())];
                    fs.fail_next(op, rng.random_range(1..=2));
                    match registry.publish(tenant, &model) {
                        Ok(_) => {
                            publishes += 1;
                            committed[i].push(bits.clone());
                            acceptable[i].push(bits);
                        }
                        Err(e) => {
                            eprintln!(
                                "GATE FAILED: transient fault at {op} not absorbed \
                                 by retry: {e}"
                            );
                            std::process::exit(1);
                        }
                    }
                }
                2 => {
                    // kill -9 at a seeded boundary: phase 1 = staging
                    // the image, phase 2 = committing the manifest.
                    let op = all_ops[rng.random_range(0..all_ops.len())];
                    let phase = rng.random_range(1..=2u32);
                    fs.crash_at(op, phase);
                    match registry.publish(tenant, &model) {
                        Ok(_) => {
                            // The crash can only fire inside the publish;
                            // Ok means the arm mis-counted — treat as a
                            // committed publish and keep going.
                            publishes += 1;
                            committed[i].push(bits.clone());
                            acceptable[i].push(bits);
                        }
                        Err(_) => {
                            crashes += 1;
                            // The in-flight image may have been adopted
                            // if the crash hit after its rename.
                            acceptable[i].push(bits);
                            let s = registry.stats();
                            agg_retries += s.publish_retries;
                            agg_rollbacks += s.rollbacks;
                            agg_recoveries += s.recoveries;
                            agg_sweeps += s.tmp_sweeps;
                            drop(registry);
                            // Sometimes the crash also tore the manifest.
                            if rng.random_range(0..10u32) < 4 {
                                let manifest = ledger_dir.join("MANIFEST");
                                if let Ok(mut bytes) = std::fs::read(&manifest) {
                                    if !bytes.is_empty() {
                                        let pos = rng.random_range(0..bytes.len());
                                        bytes[pos] ^= 0x20;
                                        let _ = std::fs::write(&manifest, &bytes);
                                        torn_manifests += 1;
                                    }
                                }
                            }
                            if !planted_tmp {
                                // Debris from an unrelated crashed
                                // process, for the sweep counter.
                                let _ = std::fs::write(
                                    ledger_dir.join("acme.g9999.ghdc.tmp"),
                                    b"half-written publish",
                                );
                                planted_tmp = true;
                            }
                            // A fresh process recovers the directory.
                            fs = LedgerFs::new();
                            registry =
                                ModelRegistry::open_with_fs(&ledger_dir, ledger_config, fs.clone())
                                    .expect("recovery open succeeds");
                            max_recovery = max_recovery.max(registry.recovery().elapsed);
                            assert!(registry.is_writer(), "recovered process re-locks");
                            // Every tenant must still serve a previously
                            // published, CRC-valid model.
                            for (j, probe) in LEDGER_TENANTS.iter().enumerate() {
                                match registry.get(probe) {
                                    Ok(handle) => {
                                        let got: Vec<u64> = handle
                                            .view()
                                            .scores(&query)
                                            .expect("dim matches")
                                            .iter()
                                            .map(|s| s.to_bits())
                                            .collect();
                                        if !acceptable[j].contains(&got) {
                                            mismatches += 1;
                                        }
                                    }
                                    Err(_) => lost += 1,
                                }
                            }
                        }
                    }
                }
                _ => match registry.publish(tenant, &model) {
                    Ok(_) => {
                        publishes += 1;
                        committed[i].push(bits.clone());
                        acceptable[i].push(bits);
                    }
                    Err(e) => {
                        eprintln!("GATE FAILED: clean ledger publish errored: {e}");
                        std::process::exit(1);
                    }
                },
            }
        }
    }

    // Final clean publish per tenant: the storm must end with every
    // tenant serving exactly this model.
    let mut final_bits: Vec<Vec<u64>> = Vec::new();
    for (i, tenant) in LEDGER_TENANTS.iter().enumerate() {
        let model = ledger_model(seed.wrapping_mul(31_337).wrapping_add(i as u64));
        let bits = oracle_bits(&model, &query);
        registry
            .publish(tenant, &model)
            .expect("final clean publish");
        publishes += 1;
        committed[i].push(bits.clone());
        acceptable[i].push(bits.clone());
        final_bits.push(bits);
    }
    let mut final_exact = true;
    for (i, tenant) in LEDGER_TENANTS.iter().enumerate() {
        registry.evict(tenant);
        let handle = registry.get(tenant).expect("final generation serves");
        let got: Vec<u64> = handle
            .view()
            .scores(&query)
            .expect("dim matches")
            .iter()
            .map(|s| s.to_bits())
            .collect();
        final_exact &= got == final_bits[i];
    }
    gates.push(Gate::check(
        "ledger_zero_lost_last_good",
        crashes >= 1 && lost == 0 && mismatches == 0 && final_exact,
        format!(
            "{crashes} crash(es), {torn_manifests} torn manifest(s): {lost} tenants lost, \
             {mismatches} recoveries served an unpublished model, final state exact: \
             {final_exact}"
        ),
    ));
    gates.push(Gate::check(
        "ledger_recovery_bounded",
        max_recovery < Duration::from_millis(250),
        format!(
            "worst recovery scan {:.2} ms (budget 250 ms) across {crashes} crashes",
            max_recovery.as_secs_f64() * 1e3
        ),
    ));

    // Auto-rollback probe: corrupt the live image of tenant 0; its next
    // admission must revert to an older valid generation and keep
    // serving — no quarantine, no shed traffic.
    let probe_tenant = LEDGER_TENANTS[0];
    let live_path = registry
        .tenant_path(probe_tenant)
        .expect("probe tenant resolves");
    let mut bytes = std::fs::read(&live_path).expect("live image readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&live_path, &bytes).expect("scratch dir writable");
    registry.evict(probe_tenant);
    let rolled_bits = match registry.get(probe_tenant) {
        Ok(handle) => Some(
            handle
                .view()
                .scores(&query)
                .expect("dim matches")
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<u64>>(),
        ),
        Err(_) => None,
    };
    let rollback_ok = match &rolled_bits {
        Some(got) => {
            *got != final_bits[0]
                && acceptable[0].contains(got)
                && registry.quarantined().is_empty()
        }
        None => false,
    };
    gates.push(Gate::check(
        "ledger_auto_rollback_serves_prior",
        rollback_ok && registry.stats().rollbacks >= 1,
        format!(
            "corrupt live image -> served prior generation: {rollback_ok}, \
             writer rollbacks {}",
            registry.stats().rollbacks
        ),
    ));

    // Reader coherence: after the writer's rollback commit, the
    // reader's next admission must serve the same reverted generation.
    stop.store(true, Ordering::Relaxed);
    let (reader_was_writer, reader) = reader_thread.join().expect("reader thread joins");
    let mut reader_final_ok = true;
    for (i, tenant) in LEDGER_TENANTS.iter().enumerate() {
        let want = if i == 0 {
            rolled_bits.clone().unwrap_or_default()
        } else {
            final_bits[i].clone()
        };
        match reader.get(tenant) {
            Ok(handle) => {
                let got: Vec<u64> = handle
                    .view()
                    .scores(&query)
                    .expect("dim matches")
                    .iter()
                    .map(|s| s.to_bits())
                    .collect();
                reader_final_ok &= got == want;
            }
            Err(_) => reader_final_ok = false,
        }
    }
    let reader_samples = {
        let samples = samples.lock().expect("sampler mutex");
        let mut valid = true;
        for (t, bits) in samples.iter() {
            valid &= acceptable[*t].contains(bits);
        }
        (samples.len() as u64, valid)
    };
    let reader_errs = reader_errors.load(Ordering::Relaxed);
    gates.push(Gate::check(
        "ledger_reader_coherence",
        !reader_was_writer && reader_errs == 0 && reader_samples.1 && reader_final_ok,
        format!(
            "reader role ok: {}, {} samples all published models: {}, {} errors, \
             final+rollback state coherent: {reader_final_ok}",
            !reader_was_writer, reader_samples.0, reader_samples.1, reader_errs
        ),
    ));

    let s = registry.stats();
    agg_retries += s.publish_retries;
    agg_rollbacks += s.rollbacks;
    agg_recoveries += s.recoveries;
    agg_sweeps += s.tmp_sweeps;
    gates.push(Gate::check(
        "ledger_counters_account_for_faults",
        agg_retries >= 1 && agg_rollbacks >= 1 && agg_recoveries >= 1 && agg_sweeps >= 1,
        format!(
            "publish_retries {agg_retries}, rollbacks {agg_rollbacks}, \
             recoveries {agg_recoveries}, tmp_sweeps {agg_sweeps}"
        ),
    ));

    let ledger_summary = LedgerSummary {
        tenants: LEDGER_TENANTS.len(),
        rounds: config.ledger_rounds,
        publishes,
        crashes,
        torn_manifests,
        max_recovery_ms: max_recovery.as_secs_f64() * 1e3,
        publish_retries: agg_retries,
        rollbacks: agg_rollbacks,
        recoveries: agg_recoveries,
        tmp_sweeps: agg_sweeps,
        reader_samples: reader_samples.0,
        reader_errors: reader_errs,
        lost,
        mismatches,
    };
    drop(reader);
    drop(registry);
    let _ = std::fs::remove_dir_all(&ledger_dir);

    let json = render_json(
        &config,
        seed,
        smoke,
        kill_recovery_ms,
        torn_recovery_ms,
        lost,
        answer_rate,
        degradation_hit_rate,
        &tier_dims,
        &tier_hits,
        garbage_requests,
        final_generation,
        &final_stats,
        &chaos,
        &ledger_summary,
        &gates,
    );
    std::fs::write("BENCH_soak.json", &json).expect("write BENCH_soak.json");
    println!("wrote BENCH_soak.json");

    if gates.iter().any(|g| !g.passed) {
        for gate in gates.iter().filter(|g| !g.passed) {
            eprintln!("GATE FAILED: {}: {}", gate.name, gate.detail);
        }
        std::process::exit(1);
    }
    println!("all gates passed");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    seed: u64,
    smoke: bool,
    kill_recovery_ms: f64,
    torn_recovery_ms: f64,
    lost: u64,
    answer_rate: f64,
    degradation_hit_rate: f64,
    tier_dims: &[usize],
    tier_hits: &[u64],
    garbage_requests: u64,
    final_generation: u64,
    stats: &generic_hdc::RuntimeStats,
    chaos: &ChaosSummary,
    ledger: &LedgerSummary,
    gates: &[Gate],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!(
        "  \"config\": {{\"dim\": {}, \"stream_samples\": {}, \"checkpoint_every\": {}, \"storm_requests\": {}, \"garbage_records\": {}, \"chaos_requests\": {}, \"chaos_learns\": {}}},\n",
        config.dim, config.stream_samples, config.checkpoint_every, config.storm_requests, config.garbage_records, config.chaos_requests, config.chaos_learns
    ));
    s.push_str(&format!(
        "  \"recovery\": {{\"kill_ms\": {kill_recovery_ms:.3}, \"torn_write_ms\": {torn_recovery_ms:.3}, \"samples_lost\": {lost}, \"max_loss_allowed\": {}}},\n",
        config.checkpoint_every
    ));
    let dims: Vec<String> = tier_dims.iter().map(ToString::to_string).collect();
    let hits: Vec<String> = tier_hits.iter().map(ToString::to_string).collect();
    s.push_str(&format!(
        "  \"storm\": {{\"answer_rate\": {answer_rate:.5}, \"degradation_hit_rate\": {degradation_hit_rate:.5}, \"garbage_requests\": {garbage_requests}, \"tier_dims\": [{}], \"tier_hits\": [{}]}},\n",
        dims.join(", "),
        hits.join(", ")
    ));
    s.push_str(&format!(
        "  \"totals\": {{\"generation\": {final_generation}, \"learned\": {}, \"held_out\": {}, \"corrected\": {}, \"quarantined\": {}, \"answered\": {}, \"degraded\": {}, \"deadline_misses\": {}, \"rejected\": {}, \"checkpoints\": {}, \"retrains\": {}, \"rollbacks\": {}}},\n",
        stats.learned,
        stats.held_out,
        stats.corrected,
        stats.quarantined,
        stats.answered,
        stats.degraded,
        stats.deadline_misses,
        stats.rejected,
        stats.checkpoints,
        stats.retrains,
        stats.rollbacks
    ));
    s.push_str(&format!(
        "  \"chaos\": {{\"shards\": {}, \"admitted\": {}, \"answered\": {}, \
         \"availability\": {:.6}, \"shard_recovery_ms\": {:.3}, \"storm_shed\": {}, \
         \"backpressure_waits\": {}, \"oracle_divergences\": {}, \"panics\": {}, \
         \"restarts\": {}, \"requeued\": {}, \"writer_stalls\": {}, \
         \"checkpoint_retries\": {}, \"storm_budget_ms\": {:.3}}},\n",
        chaos.shards,
        chaos.admitted,
        chaos.answered,
        chaos.availability,
        chaos.shard_recovery_ms,
        chaos.storm_shed,
        chaos.backpressure_waits,
        chaos.divergences,
        chaos.panics,
        chaos.restarts,
        chaos.requeued,
        chaos.writer_stalls,
        chaos.checkpoint_retries,
        chaos.storm_budget_ms
    ));
    s.push_str(&format!(
        "  \"ledger\": {{\"tenants\": {}, \"rounds\": {}, \"publishes\": {}, \
         \"crashes\": {}, \"torn_manifests\": {}, \"max_recovery_ms\": {:.3}, \
         \"publish_retries\": {}, \"rollbacks\": {}, \"recoveries\": {}, \
         \"tmp_sweeps\": {}, \"reader_samples\": {}, \"reader_errors\": {}, \
         \"lost\": {}, \"mismatches\": {}}},\n",
        ledger.tenants,
        ledger.rounds,
        ledger.publishes,
        ledger.crashes,
        ledger.torn_manifests,
        ledger.max_recovery_ms,
        ledger.publish_retries,
        ledger.rollbacks,
        ledger.recoveries,
        ledger.tmp_sweeps,
        ledger.reader_samples,
        ledger.reader_errors,
        ledger.lost,
        ledger.mismatches
    ));
    s.push_str("  \"gates\": {\n");
    for (i, gate) in gates.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"passed\": {}, \"detail\": \"{}\"}}{}\n",
            gate.name,
            gate.passed,
            gate.detail.replace('"', "'"),
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}
