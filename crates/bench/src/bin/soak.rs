//! Soak harness for the crash-safe online-learning runtime: replays an
//! interleaved train/infer stream through [`OnlineRuntime`] with
//! injected kills, a torn-write corruption, a deadline storm, and
//! garbage records, and writes `BENCH_soak.json` with recovery-time and
//! degradation-hit-rate numbers.
//!
//! Acceptance gates (enforced in both modes — they are correctness
//! gates, not perf gates; the harness exits nonzero on any violation):
//!
//! 1. **kill -9 mid-stream**: recovery lands on the newest checkpoint
//!    generation, losing at most the samples since the last checkpoint.
//! 2. **torn write**: with the newest generation corrupted on disk,
//!    recovery rejects it and falls back to the previous intact one.
//! 3. **deadline storm**: ≥ 99% of requests get an answer (degraded
//!    tiers allowed, drops counted), and the ladder's per-tier counters
//!    account for every answer.
//! 4. **garbage records**: every malformed learning sample is
//!    quarantined — none learned, none panicking — and the clean ones
//!    all land.
//!
//! Usage: `cargo run -p generic-bench --release --bin soak
//! [seed] [--smoke]`

use std::path::{Path, PathBuf};
use std::time::Duration;

use generic_bench::cli;
use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
use generic_hdc::{HdcPipeline, RuntimeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 10;
const N_CLASSES: usize = 3;

struct Config {
    dim: usize,
    bootstrap_samples: usize,
    stream_samples: usize,
    checkpoint_every: u64,
    storm_requests: usize,
    garbage_records: usize,
}

impl Config {
    fn full() -> Self {
        Config {
            dim: 2048,
            bootstrap_samples: 240,
            stream_samples: 1200,
            checkpoint_every: 64,
            storm_requests: 2000,
            garbage_records: 120,
        }
    }

    fn smoke() -> Self {
        Config {
            dim: 512,
            bootstrap_samples: 90,
            stream_samples: 240,
            checkpoint_every: 16,
            storm_requests: 400,
            garbage_records: 30,
        }
    }
}

/// One gate: a named pass/fail with the observed evidence.
struct Gate {
    name: &'static str,
    passed: bool,
    detail: String,
}

impl Gate {
    fn check(name: &'static str, passed: bool, detail: String) -> Self {
        let verdict = if passed { "PASS" } else { "FAIL" };
        println!("gate {name}: {verdict} — {detail}");
        Gate {
            name,
            passed,
            detail,
        }
    }
}

/// A separable 3-band sample: features in the class's band sit high,
/// the rest low, with uniform jitter.
fn sample(rng: &mut StdRng, class: usize) -> Vec<f64> {
    (0..N_FEATURES)
        .map(|j| {
            let band = j / (N_FEATURES / N_CLASSES).max(1);
            let base = if band == class { 8.0 } else { 1.0 };
            base + rng.random_range(-0.5..0.5)
        })
        .collect()
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ghdc-soak-{}-{seed}", std::process::id()))
}

fn open_store(dir: &Path) -> CheckpointStore {
    CheckpointStore::open(dir, 4, RetryPolicy::default()).expect("checkpoint dir is creatable")
}

fn runtime_config(config: &Config) -> RuntimeConfig {
    RuntimeConfig {
        checkpoint_every: config.checkpoint_every,
        holdout_every: 10,
        ..RuntimeConfig::default()
    }
}

fn main() {
    let seed = cli::seed_arg(42);
    let smoke = cli::smoke_flag();
    let config = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    println!(
        "soak: dim={} stream={} ckpt-every={} storm={} seed={seed} mode={}",
        config.dim,
        config.stream_samples,
        config.checkpoint_every,
        config.storm_requests,
        if smoke { "smoke" } else { "full" }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let dir = scratch_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);

    let mut gates = Vec::new();

    // --- bootstrap: train an initial pipeline and make it durable ---
    let features: Vec<Vec<f64>> = (0..config.bootstrap_samples)
        .map(|i| sample(&mut rng, i % N_CLASSES))
        .collect();
    let labels: Vec<usize> = (0..config.bootstrap_samples)
        .map(|i| i % N_CLASSES)
        .collect();
    let spec = GenericEncoderSpec::new(config.dim, N_FEATURES).with_seed(seed);
    let pipeline = HdcPipeline::train(spec, &features, &labels, N_CLASSES, 5)
        .expect("separable bootstrap data");
    let rt_config = runtime_config(&config);
    let mut runtime =
        OnlineRuntime::new(pipeline, open_store(&dir), rt_config).expect("valid runtime config");
    runtime.checkpoint().expect("initial checkpoint");

    // --- scenario 1: interleaved stream, then kill -9 mid-stream ---
    // The kill point is random but at least one checkpoint interval in,
    // so there is something to lose.
    let kill_at = rng.random_range(config.checkpoint_every as usize + 1..config.stream_samples);
    let mut streamed = 0usize;
    for i in 0..config.stream_samples {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        if i % 4 == 3 {
            let _ = runtime.infer(&x, None);
        } else {
            runtime.learn(&x, class).expect("clean sample");
            streamed += 1;
        }
        if streamed == kill_at {
            break;
        }
    }
    let seen_at_kill = runtime.seen();
    let gen_at_kill = runtime.generation();
    drop(runtime); // the kill: all in-memory state vanishes, no final checkpoint
                   // A crash mid-write also leaves a half-written temp file behind.
    std::fs::write(
        dir.join("ckpt-99999999999999999999.ghdc.tmp"),
        b"torn half-written checkpoint",
    )
    .expect("scratch dir writable");

    let (recovered, report) = match OnlineRuntime::recover(open_store(&dir), rt_config) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("GATE FAILED: recovery after kill -9 errored: {e}");
            std::process::exit(1);
        }
    };
    let kill_recovery_ms = report.elapsed.as_secs_f64() * 1e3;
    let lost = seen_at_kill - recovered.seen();
    gates.push(Gate::check(
        "kill_recovers_newest_generation",
        recovered.generation() == gen_at_kill && report.rejected.is_empty(),
        format!(
            "recovered generation {} (at kill: {gen_at_kill}), {} rejected, {:.2} ms",
            recovered.generation(),
            report.rejected.len(),
            kill_recovery_ms
        ),
    ));
    gates.push(Gate::check(
        "kill_loses_at_most_one_interval",
        lost <= config.checkpoint_every,
        format!(
            "lost {lost} of {seen_at_kill} samples (interval {})",
            config.checkpoint_every
        ),
    ));

    // --- scenario 2: torn write — corrupt the newest generation ---
    let mut runtime = recovered;
    for _ in 0..config.checkpoint_every + 4 {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        runtime.learn(&x, class).expect("clean sample");
    }
    let newest_gen = runtime.generation();
    let prev_gen = newest_gen - 1;
    drop(runtime);
    let newest_path = dir.join(format!("ckpt-{newest_gen:020}.ghdc"));
    let mut bytes = std::fs::read(&newest_path).expect("newest generation readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20; // a single flipped bit mid-payload
    std::fs::write(&newest_path, &bytes).expect("scratch dir writable");

    let (recovered, report) = match OnlineRuntime::recover(open_store(&dir), rt_config) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("GATE FAILED: recovery after torn write errored: {e}");
            std::process::exit(1);
        }
    };
    let torn_recovery_ms = report.elapsed.as_secs_f64() * 1e3;
    gates.push(Gate::check(
        "torn_write_falls_back_to_previous_generation",
        recovered.generation() == prev_gen && report.rejected.iter().any(|(g, _)| *g == newest_gen),
        format!(
            "corrupted generation {newest_gen}, recovered {} ({} rejected, {:.2} ms)",
            recovered.generation(),
            report.rejected.len(),
            torn_recovery_ms
        ),
    ));

    // --- scenario 3: deadline storm ---
    let mut runtime = recovered;
    for _ in 0..20 {
        // Warm the full tier's latency estimate so budgets bite.
        let x = sample(&mut rng, 0);
        let _ = runtime.infer(&x, None);
    }
    let full_est_ns = runtime
        .ladder()
        .estimate_ns(runtime.ladder().full_tier())
        .unwrap_or(1e5);
    let storm_base = runtime.stats().infer_requests;
    let mut garbage_requests = 0u64;
    for i in 0..config.storm_requests {
        let class = rng.random_range(0..N_CLASSES);
        let x = sample(&mut rng, class);
        // A hostile minority of the storm: one malformed request per ~250.
        if i % 251 == 250 {
            garbage_requests += 1;
            let _ = runtime.infer(&[f64::NAN; N_FEATURES], None);
            continue;
        }
        // Budgets from hopelessly tight through comfortable: the ladder
        // must degrade rather than drop.
        let budget_ns = match i % 4 {
            0 => full_est_ns * 0.05, // floor-tier territory
            1 => full_est_ns * 0.5,  // mid-ladder
            2 => full_est_ns * 1.5,  // full dim, tight
            _ => full_est_ns * 20.0, // comfortable
        };
        let budget = Duration::from_nanos(budget_ns.max(1.0) as u64);
        let _ = runtime.infer(&x, Some(budget));
    }
    let stats = *runtime.stats();
    let storm_requests = stats.infer_requests - storm_base;
    let storm_answered = storm_requests - stats.rejected - stats.shed;
    let answer_rate = storm_answered as f64 / storm_requests as f64;
    let tier_hits: Vec<u64> = runtime.ladder().hits().to_vec();
    let tier_dims: Vec<usize> = runtime.ladder().tier_dims().to_vec();
    let degradation_hit_rate = stats.degraded as f64 / stats.answered.max(1) as f64;
    gates.push(Gate::check(
        "storm_answers_at_least_99_percent",
        answer_rate >= 0.99,
        format!(
            "{storm_answered}/{storm_requests} answered ({:.2}%), {} rejected, {} shed",
            answer_rate * 100.0,
            stats.rejected,
            stats.shed
        ),
    ));
    gates.push(Gate::check(
        "storm_degrades_instead_of_dropping",
        stats.degraded > 0 && tier_hits.iter().sum::<u64>() == stats.answered,
        format!(
            "{} degraded answers ({:.1}% of answers), tier hits {:?} over dims {:?}",
            stats.degraded,
            degradation_hit_rate * 100.0,
            tier_hits,
            tier_dims
        ),
    ));

    // --- scenario 4: garbage learning records ---
    let quarantined_base = runtime.stats().quarantined;
    let learned_base = runtime.stats().learned + runtime.stats().held_out;
    let mut clean = 0u64;
    for i in 0..config.garbage_records {
        let class = rng.random_range(0..N_CLASSES);
        let garbage: (Vec<f64>, usize) = match i % 5 {
            0 => (vec![f64::NAN; N_FEATURES], class),
            1 => (vec![f64::INFINITY; N_FEATURES], class),
            2 => (sample(&mut rng, class)[..N_FEATURES - 2].to_vec(), class),
            3 => (vec![1e12; N_FEATURES], class),
            _ => (sample(&mut rng, class), N_CLASSES + 7),
        };
        match runtime.learn(&garbage.0, garbage.1) {
            Err(RuntimeError::Rejected(_)) => {}
            other => {
                eprintln!("GATE FAILED: garbage record {i} was not quarantined: {other:?}");
                std::process::exit(1);
            }
        }
        // Interleave clean samples: the stream must keep flowing.
        let x = sample(&mut rng, class);
        runtime.learn(&x, class).expect("clean sample");
        clean += 1;
    }
    let quarantined = runtime.stats().quarantined - quarantined_base;
    let processed = runtime.stats().learned + runtime.stats().held_out - learned_base;
    let probe = sample(&mut rng, 1);
    let still_serves = runtime.infer(&probe, None).is_ok();
    gates.push(Gate::check(
        "garbage_is_quarantined_not_learned",
        quarantined == config.garbage_records as u64 && processed == clean && still_serves,
        format!(
            "{quarantined}/{} quarantined, {processed}/{clean} clean processed, serves: {still_serves}",
            config.garbage_records
        ),
    ));

    runtime.checkpoint().expect("final checkpoint");
    let final_stats = *runtime.stats();
    let final_generation = runtime.generation();
    drop(runtime);
    let _ = std::fs::remove_dir_all(&dir);

    let json = render_json(
        &config,
        seed,
        smoke,
        kill_recovery_ms,
        torn_recovery_ms,
        lost,
        answer_rate,
        degradation_hit_rate,
        &tier_dims,
        &tier_hits,
        garbage_requests,
        final_generation,
        &final_stats,
        &gates,
    );
    std::fs::write("BENCH_soak.json", &json).expect("write BENCH_soak.json");
    println!("wrote BENCH_soak.json");

    if gates.iter().any(|g| !g.passed) {
        for gate in gates.iter().filter(|g| !g.passed) {
            eprintln!("GATE FAILED: {}: {}", gate.name, gate.detail);
        }
        std::process::exit(1);
    }
    println!("all gates passed");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    seed: u64,
    smoke: bool,
    kill_recovery_ms: f64,
    torn_recovery_ms: f64,
    lost: u64,
    answer_rate: f64,
    degradation_hit_rate: f64,
    tier_dims: &[usize],
    tier_hits: &[u64],
    garbage_requests: u64,
    final_generation: u64,
    stats: &generic_hdc::RuntimeStats,
    gates: &[Gate],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!(
        "  \"config\": {{\"dim\": {}, \"stream_samples\": {}, \"checkpoint_every\": {}, \"storm_requests\": {}, \"garbage_records\": {}}},\n",
        config.dim, config.stream_samples, config.checkpoint_every, config.storm_requests, config.garbage_records
    ));
    s.push_str(&format!(
        "  \"recovery\": {{\"kill_ms\": {kill_recovery_ms:.3}, \"torn_write_ms\": {torn_recovery_ms:.3}, \"samples_lost\": {lost}, \"max_loss_allowed\": {}}},\n",
        config.checkpoint_every
    ));
    let dims: Vec<String> = tier_dims.iter().map(ToString::to_string).collect();
    let hits: Vec<String> = tier_hits.iter().map(ToString::to_string).collect();
    s.push_str(&format!(
        "  \"storm\": {{\"answer_rate\": {answer_rate:.5}, \"degradation_hit_rate\": {degradation_hit_rate:.5}, \"garbage_requests\": {garbage_requests}, \"tier_dims\": [{}], \"tier_hits\": [{}]}},\n",
        dims.join(", "),
        hits.join(", ")
    ));
    s.push_str(&format!(
        "  \"totals\": {{\"generation\": {final_generation}, \"learned\": {}, \"held_out\": {}, \"corrected\": {}, \"quarantined\": {}, \"answered\": {}, \"degraded\": {}, \"deadline_misses\": {}, \"rejected\": {}, \"checkpoints\": {}, \"retrains\": {}, \"rollbacks\": {}}},\n",
        stats.learned,
        stats.held_out,
        stats.corrected,
        stats.quarantined,
        stats.answered,
        stats.degraded,
        stats.deadline_misses,
        stats.rejected,
        stats.checkpoints,
        stats.retrains,
        stats.rollbacks
    ));
    s.push_str("  \"gates\": {\n");
    for (i, gate) in gates.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"passed\": {}, \"detail\": \"{}\"}}{}\n",
            gate.name,
            gate.passed,
            gate.detail.replace('"', "'"),
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}
