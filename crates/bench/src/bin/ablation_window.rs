//! Accuracy ablation of the GENERIC encoding's design choices (§3.1):
//! window length *n* (the paper: "we use n = 3 as it achieved the highest
//! accuracy (on average) for our examined benchmarks") and the per-window
//! id binding.
//!
//! Usage: `cargo run -p generic-bench --release --bin ablation_window [seed]`

use generic_bench::report::{pct, render_table};
use generic_bench::runners::DEFAULT_EPOCHS;
use generic_datasets::Benchmark;
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::HdcModel;

const DIM: usize = 2048;
const WINDOWS: [usize; 5] = [1, 2, 3, 4, 5];

fn accuracy(benchmark: Benchmark, window: usize, id_binding: bool, seed: u64) -> f64 {
    let dataset = benchmark.load(seed);
    let spec = GenericEncoderSpec::new(DIM, dataset.n_features)
        .with_window(window.min(dataset.n_features))
        .with_id_binding(id_binding)
        .with_seed(seed);
    let encoder = GenericEncoder::from_data(spec, &dataset.train.features)
        .expect("benchmark data is well-formed");
    let train = encoder
        .encode_batch(&dataset.train.features)
        .expect("row widths match");
    let test = encoder
        .encode_batch(&dataset.test.features)
        .expect("row widths match");
    let mut model =
        HdcModel::fit(&train, &dataset.train.labels, dataset.n_classes).expect("labels validated");
    model
        .retrain(&train, &dataset.train.labels, DEFAULT_EPOCHS)
        .expect("inputs validated");
    model.accuracy(&test, &dataset.test.labels)
}

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    // A cross-section of structural families keeps the run quick.
    let benchmarks = [
        Benchmark::Cardio,
        Benchmark::Eeg,
        Benchmark::Mnist,
        Benchmark::Lang,
        Benchmark::Ucihar,
    ];

    println!("Ablation: GENERIC accuracy vs window length n (ids bound; seed {seed})\n");
    let mut header = vec!["Dataset".to_string()];
    header.extend(WINDOWS.iter().map(|n| format!("n={n}")));
    let mut rows = Vec::new();
    let mut means = vec![0.0f64; WINDOWS.len()];
    for benchmark in benchmarks {
        let mut row = vec![benchmark.name().to_string()];
        for (i, &n) in WINDOWS.iter().enumerate() {
            let acc = accuracy(benchmark, n, true, seed);
            means[i] += acc / benchmarks.len() as f64;
            row.push(pct(acc));
        }
        rows.push(row);
        eprintln!("  swept {}", benchmark.name());
    }
    let mut mean_row = vec!["Mean".to_string()];
    mean_row.extend(means.iter().map(|&m| pct(m)));
    rows.push(mean_row);
    println!("{}", render_table(&header, &rows));
    let best = WINDOWS[means
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")];
    println!("best mean window: n = {best} (paper: n = 3)\n");

    println!("Ablation: id binding on vs off at n = 3\n");
    let header = vec![
        "Dataset".to_string(),
        "bound".to_string(),
        "unbound".to_string(),
    ];
    let mut rows = Vec::new();
    for benchmark in benchmarks {
        rows.push(vec![
            benchmark.name().to_string(),
            pct(accuracy(benchmark, 3, true, seed)),
            pct(accuracy(benchmark, 3, false, seed)),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "Expected pattern: binding helps position-sensitive data (MNIST, UCIHAR) and hurts \n\
         position-free sequences (LANG) — which is why the architecture makes it a per-\n\
         application spec parameter (§3.1)."
    );
}
