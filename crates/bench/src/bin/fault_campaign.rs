//! Fault-injection campaign: accuracy and energy of GENERIC inference
//! under memory bit errors, with and without resilient mitigation.
//!
//! Sweeps bit-error rate × class-element bit-width × fault kind
//! (transient voltage-over-scaling noise vs persistent stuck cells) ×
//! mitigation strategy (unmitigated single read vs the two-tier
//! [`ResilientPipeline`]: reduced-dimension first pass, confidence-gated
//! escalation, best-of-N majority vote) over several seeds on ISOLET,
//! reporting mean ± std accuracy and the effective power story: VOS
//! power reduction at each BER with the mitigation's cycle/energy
//! overhead charged through `generic-sim`'s activity hooks.
//!
//! Usage: `cargo run -p generic-bench --release --bin fault_campaign [seed]`

use generic_bench::report::render_table;
use generic_datasets::Benchmark;
use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::{
    FaultModel, HdcPipeline, IntHv, ResilienceConfig, ResilienceStats, ResilientPipeline,
};
use generic_sim::{mitigation, AcceleratorConfig, EnergyModel, EnergyOptions, VosOperatingPoint};

const DIM: usize = 2048;
const REDUCED_DIMS: usize = 512;
const MARGIN_THRESHOLD: f64 = 0.05;
const VOTES: u32 = 5;
const BIT_WIDTHS: [u8; 3] = [8, 4, 1];
const BERS: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const N_SEEDS: u64 = 3;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Transient,
    Persistent,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Transient => "transient",
            Kind::Persistent => "persistent",
        }
    }

    fn model(self, ber: f64, seed: u64) -> FaultModel {
        match self {
            Kind::Transient => FaultModel::transient(ber, seed),
            Kind::Persistent => FaultModel::persistent(ber, seed),
        }
        .expect("ber validated by the sweep")
    }
}

struct TrainedSeed {
    pipeline: HdcPipeline,
    encoded_test: Vec<IntHv>,
    labels: Vec<usize>,
}

/// One (bit-width, kind, ber, strategy) cell aggregated over seeds.
#[derive(Default)]
struct Cell {
    accuracies: Vec<f64>,
    stats: ResilienceStats,
}

impl Cell {
    fn mean(&self) -> f64 {
        self.accuracies.iter().sum::<f64>() / self.accuracies.len().max(1) as f64
    }

    fn std(&self) -> f64 {
        let m = self.mean();
        let n = self.accuracies.len().max(1) as f64;
        (self.accuracies.iter().map(|a| (a - m).powi(2)).sum::<f64>() / n).sqrt()
    }
}

fn resilient_config() -> ResilienceConfig {
    ResilienceConfig {
        reduced_dims: REDUCED_DIMS,
        margin_threshold: MARGIN_THRESHOLD,
        votes: VOTES,
        scrub_period: 0,
    }
}

fn run_cell(
    seeds: &[TrainedSeed],
    bw: u8,
    config: ResilienceConfig,
    kind: Kind,
    ber: f64,
    fault_salt: u64,
) -> Cell {
    let mut cell = Cell::default();
    for (i, ts) in seeds.iter().enumerate() {
        let mut r = ResilientPipeline::new(ts.pipeline.clone(), bw, config)
            .expect("campaign config is valid");
        if ber > 0.0 {
            let fault_seed = fault_salt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            r.set_fault_model(Some(kind.model(ber, fault_seed)));
        }
        cell.accuracies
            .push(r.accuracy_encoded(&ts.encoded_test, &ts.labels));
        let s = r.stats();
        cell.stats.queries += s.queries;
        cell.stats.reduced_passes += s.reduced_passes;
        cell.stats.full_passes += s.full_passes;
        cell.stats.escalations += s.escalations;
        cell.stats.scrubs += s.scrubs;
    }
    cell
}

/// Energy per query in µJ for a strategy's aggregated stats at a VOS
/// operating point, mitigation overhead included.
fn energy_per_query_uj(
    sim_config: &AcceleratorConfig,
    stats: &ResilienceStats,
    reduced_dims: usize,
    vos: Option<VosOperatingPoint>,
) -> f64 {
    let act = mitigation::resilience_activity(sim_config, stats, reduced_dims);
    let opts = EnergyOptions {
        power_gating: true,
        vos,
    };
    let report = EnergyModel::paper_default().report(sim_config, &act, &opts);
    report.total_energy_uj / stats.queries.max(1) as f64
}

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Fault-injection campaign: ISOLET, D = {DIM}, {N_SEEDS} seeds");
    println!(
        "resilient = first pass @ {REDUCED_DIMS} dims, escalate below margin \
         {MARGIN_THRESHOLD}, best-of-{VOTES} vote\n"
    );

    let seeds: Vec<TrainedSeed> = (0..N_SEEDS)
        .map(|i| {
            let dataset = Benchmark::Isolet.load(seed.wrapping_add(i));
            let spec = GenericEncoderSpec::new(DIM, dataset.n_features).with_seed(seed + i);
            let pipeline = HdcPipeline::train(
                spec,
                &dataset.train.features,
                &dataset.train.labels,
                dataset.n_classes,
                10,
            )
            .expect("benchmark data is valid");
            let encoded_test: Vec<IntHv> = dataset
                .test
                .features
                .iter()
                .map(|x| pipeline.encode(x).expect("row widths validated"))
                .collect();
            TrainedSeed {
                pipeline,
                encoded_test,
                labels: dataset.test.labels.clone(),
            }
        })
        .collect();

    let ds = Benchmark::Isolet.load(seed);
    let n_classes = ds.n_classes;
    let n_features = ds.n_features;

    let header: Vec<String> = [
        "bw  kind",
        "BER",
        "unmitigated",
        "resilient",
        "escal %",
        "uJ/query",
        "VOS red.",
        "net red.",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let mut rows = Vec::new();

    // Accuracy bookkeeping for the acceptance checks.
    let mut clean_1bit = f64::NAN;
    let mut unmit_1bit_10 = f64::NAN;
    let mut resil_1bit_10 = f64::NAN;
    // Mitigated accuracy per (bw, ber) for each kind, to compare kinds.
    let mut transient_resilient: Vec<(u8, usize, f64)> = Vec::new();
    let mut kind_gaps: Vec<f64> = Vec::new();

    for &bw in &BIT_WIDTHS {
        let sim_config = AcceleratorConfig::new(DIM, n_features, n_classes).with_bit_width(bw);
        for (ki, &kind) in [Kind::Transient, Kind::Persistent].iter().enumerate() {
            for (bi, &ber) in BERS.iter().enumerate() {
                if ber == 0.0 && kind == Kind::Persistent {
                    continue; // identical to the transient BER-0 row
                }
                let salt = (u64::from(bw) << 16) ^ ((ki as u64) << 8) ^ bi as u64;
                let unmit = run_cell(&seeds, bw, ResilienceConfig::baseline(), kind, ber, salt);
                let resil = run_cell(&seeds, bw, resilient_config(), kind, ber, salt);
                match kind {
                    Kind::Transient if ber > 0.0 => {
                        transient_resilient.push((bw, bi, resil.mean()));
                    }
                    Kind::Persistent => {
                        let t_acc = transient_resilient
                            .iter()
                            .find(|&&(b, i, _)| b == bw && i == bi)
                            .map(|&(_, _, acc)| acc)
                            .expect("transient pass runs first");
                        kind_gaps.push(resil.mean() - t_acc);
                    }
                    _ => {}
                }

                // Power at the VOS point that produces this BER; the
                // campaign's transient noise is exactly that mechanism.
                // Persistent rows price at the same point for symmetry.
                let vos = if ber > 0.0 {
                    Some(
                        VosOperatingPoint::try_at_bit_error_rate(ber)
                            .expect("sweep BERs are in range"),
                    )
                } else {
                    None
                };
                let nominal = energy_per_query_uj(&sim_config, &unmit.stats, DIM, None);
                let unmit_vos_uj = energy_per_query_uj(&sim_config, &unmit.stats, DIM, vos);
                let resil_uj = energy_per_query_uj(&sim_config, &resil.stats, REDUCED_DIMS, vos);
                let escal_pct =
                    100.0 * resil.stats.escalations as f64 / resil.stats.queries.max(1) as f64;

                if bw == 1 && kind == Kind::Transient {
                    if ber == 0.0 {
                        clean_1bit = unmit.mean();
                    } else if ber == 0.10 {
                        unmit_1bit_10 = unmit.mean();
                        resil_1bit_10 = resil.mean();
                    }
                }

                rows.push(vec![
                    format!("{:>2}  {}", bw, kind.name()),
                    format!("{:.0} %", ber * 100.0),
                    format!("{:.3} ± {:.3}", unmit.mean(), unmit.std()),
                    format!("{:.3} ± {:.3}", resil.mean(), resil.std()),
                    format!("{escal_pct:.0} %"),
                    format!("{resil_uj:.3}"),
                    format!("{:.2}x", nominal / unmit_vos_uj),
                    format!("{:.2}x", nominal / resil_uj),
                ]);
            }
        }
    }

    println!("{}", render_table(&header, &rows));

    // --- Scrubbing demo: accumulating retention faults. ---
    println!("Accumulating faults (BER 0.2 % per read), 1-bit model, 3 epochs over the test set:");
    let scrub_header: Vec<String> = ["strategy", "accuracy", "scrubs"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let mut scrub_rows = Vec::new();
    for (label, scrub_period) in [("no scrubbing", 0u64), ("scrub every 64 queries", 64)] {
        let mut accs = Vec::new();
        let mut scrubs = 0;
        for (i, ts) in seeds.iter().enumerate() {
            let config = ResilienceConfig {
                scrub_period,
                ..ResilienceConfig::baseline()
            };
            let mut r = ResilientPipeline::new(ts.pipeline.clone(), 1, config)
                .expect("campaign config is valid");
            r.set_fault_model(Some(
                FaultModel::accumulating(0.002, seed.wrapping_add(i as u64))
                    .expect("ber validated"),
            ));
            let mut acc = 0.0;
            for _ in 0..3 {
                acc = r.accuracy_encoded(&ts.encoded_test, &ts.labels);
            }
            accs.push(acc);
            scrubs += r.stats().scrubs;
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        scrub_rows.push(vec![
            label.to_string(),
            format!("{mean:.3}"),
            format!("{scrubs}"),
        ]);
    }
    println!("{}", render_table(&scrub_header, &scrub_rows));

    // --- Acceptance checks. ---
    let mut all_pass = true;

    let worst_gap = kind_gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let a_pass = worst_gap <= 0.02;
    all_pass &= a_pass;
    println!(
        "[{}] persistent degrades at least as fast as transient under mitigation \
         (worst persistent-minus-transient accuracy gap: {:+.3}, tolerance +0.020)",
        if a_pass { "PASS" } else { "FAIL" },
        worst_gap
    );

    let lost = clean_1bit - unmit_1bit_10;
    let recovered = resil_1bit_10 - unmit_1bit_10;
    let b_pass = lost <= 0.0 || recovered >= 0.5 * lost;
    all_pass &= b_pass;
    println!(
        "[{}] at 10 % transient BER the resilient 1-bit model recovers {:.0} % of the \
         {:.3} accuracy lost by the unmitigated model (threshold 50 %)",
        if b_pass { "PASS" } else { "FAIL" },
        if lost > 0.0 {
            100.0 * recovered / lost
        } else {
            100.0
        },
        lost
    );

    if !all_pass {
        std::process::exit(1);
    }
}
