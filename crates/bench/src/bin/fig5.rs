//! Regenerates **Fig. 5**: accuracy under on-demand dimension reduction
//! with *Constant* (stale full-model) vs *Updated* (per-128-dim sub-norm)
//! L2 norms, for EEG and ISOLET.
//!
//! Usage: `cargo run -p generic-bench --release --bin fig5 [seed]`

use generic_bench::report::{pct, render_table};
use generic_bench::runners::{DEFAULT_DIM, DEFAULT_EPOCHS};
use generic_bench::train_hdc;
use generic_datasets::Benchmark;
use generic_hdc::encoding::EncodingKind;
use generic_hdc::{NormMode, PredictOptions};

fn main() {
    let seed = generic_bench::cli::seed_arg(42);

    println!("Fig. 5: accuracy vs dimensions with Constant and Updated L2 norms (seed {seed})\n");

    for benchmark in [Benchmark::Eeg, Benchmark::Isolet] {
        let dataset = benchmark.load(seed);
        let run = train_hdc(
            EncodingKind::Generic,
            &dataset,
            DEFAULT_DIM,
            DEFAULT_EPOCHS,
            seed,
        );

        let header = vec![
            "Dimensions".to_string(),
            "Constant".to_string(),
            "Updated".to_string(),
        ];
        let mut rows = Vec::new();
        let mut max_gap = 0.0f64;
        for dims in (512..=DEFAULT_DIM).step_by(512) {
            let constant = run.model.accuracy_with(
                &run.test_encoded,
                &dataset.test.labels,
                PredictOptions::reduced(dims, NormMode::Constant),
            );
            let updated = run.model.accuracy_with(
                &run.test_encoded,
                &dataset.test.labels,
                PredictOptions::reduced(dims, NormMode::Updated),
            );
            max_gap = max_gap.max(updated - constant);
            rows.push(vec![format!("{dims}"), pct(constant), pct(updated)]);
        }
        println!("{}:", benchmark.name());
        println!("{}", render_table(&header, &rows));
        println!(
            "max accuracy recovered by Updated norms: {}\n",
            pct(max_gap)
        );
    }
    println!(
        "Paper reference: stale Constant norms lose up to 20.1% (EEG) and 8.5% (ISOLET) \
         at reduced dimensions; Updated sub-norms recover the loss."
    );
}
