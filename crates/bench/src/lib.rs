//! # generic-bench
//!
//! Benchmark harness for the GENERIC (DAC'22) reproduction: shared runners
//! that train/evaluate every HDC encoding and every classical-ML baseline
//! on the benchmark datasets, plus one binary per paper table/figure
//! (`table1`, `table2`, `fig3`, `fig5`–`fig10` — see DESIGN.md §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod cost;
pub mod report;
pub mod runners;

pub use runners::{choose_id_binding, evaluate_hdc, evaluate_ml, train_hdc, HdcRun, MlAlgorithm};
