//! Plain-text table formatting for the figure/table binaries.

/// Renders a fixed-width table: header row + data rows, first column
/// left-aligned, the rest right-aligned.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, &w)) in cells.iter().zip(widths).enumerate() {
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a fraction as a percentage with one decimal, e.g. `93.5%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Formats a quantity in engineering-style units given a base unit,
/// e.g. `si(3.2e-5, "J")` → `"32.00 uJ"`.
pub fn si(value: f64, unit: &str) -> String {
    let (scaled, prefix) = if value == 0.0 {
        (0.0, "")
    } else {
        let exp = value.abs().log10().floor() as i32;
        match exp {
            i32::MIN..=-10 => (value * 1e12, "p"),
            -9..=-7 => (value * 1e9, "n"),
            -6..=-4 => (value * 1e6, "u"),
            -3..=-1 => (value * 1e3, "m"),
            0..=2 => (value, ""),
            3..=5 => (value * 1e-3, "k"),
            6..=8 => (value * 1e-6, "M"),
            _ => (value * 1e-9, "G"),
        }
    };
    format!("{scaled:.2} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let header = vec!["name".to_string(), "v".to_string()];
        let rows = vec![
            vec!["a".to_string(), "1".to_string()],
            vec!["long-name".to_string(), "22".to_string()],
        ];
        let t = render_table(&header, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.935), "93.5%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn si_formats() {
        assert_eq!(si(3.2e-5, "J"), "32.00 uJ");
        assert_eq!(si(1.97e-3, "W"), "1.97 mW");
        assert_eq!(si(0.0, "J"), "0.00 J");
        assert_eq!(si(2_500.0, "J"), "2.50 kJ");
    }
}
