//! Criterion micro-benchmarks: encoding throughput of the five HDC
//! encodings (the per-sample cost that dominates the commodity-device
//! results of Fig. 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use generic_hdc::encoding::{build_encoder, EncodingKind};
use std::hint::black_box;

fn bench_encodings(c: &mut Criterion) {
    let train: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..64).map(|j| ((i * 7 + j * 3) % 17) as f64).collect())
        .collect();
    let sample = train[5].clone();

    let mut group = c.benchmark_group("encode_4k_64f");
    for kind in EncodingKind::ALL {
        let encoder = build_encoder(kind, 4096, &train, 7).expect("valid data");
        group.bench_with_input(BenchmarkId::from_parameter(kind), &sample, |b, s| {
            b.iter(|| black_box(encoder.encode(black_box(s)).expect("valid sample")))
        });
    }
    group.finish();
}

fn bench_dimensionality(c: &mut Criterion) {
    let train: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..64).map(|j| ((i * 5 + j) % 13) as f64).collect())
        .collect();
    let sample = train[3].clone();

    let mut group = c.benchmark_group("encode_generic_dims");
    for dim in [1024usize, 2048, 4096, 8192] {
        let encoder = build_encoder(EncodingKind::Generic, dim, &train, 9).expect("valid data");
        group.bench_with_input(BenchmarkId::from_parameter(dim), &sample, |b, s| {
            b.iter(|| black_box(encoder.encode(black_box(s)).expect("valid sample")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encodings, bench_dimensionality);
criterion_main!(benches);
