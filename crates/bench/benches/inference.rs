//! Criterion micro-benchmarks: similarity search and full-pipeline
//! inference versus dimensionality and class count (the Fig. 5 / §4.3.3
//! trade-off at software level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::{BinaryHv, BinaryModel, HdcModel, IntHv, NormMode, PredictOptions};
use std::hint::black_box;

fn trained_model(dim: usize, n_classes: usize) -> (HdcModel, IntHv) {
    let encoded: Vec<IntHv> = (0..n_classes as u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(dim, 100 + s).expect("dim > 0")))
        .collect();
    let labels: Vec<usize> = (0..n_classes).collect();
    let model = HdcModel::fit(&encoded, &labels, n_classes).expect("valid inputs");
    let query = encoded[0].clone();
    (model, query)
}

fn bench_search_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_4k_dims");
    for n_classes in [2usize, 8, 32] {
        let (model, query) = trained_model(4096, n_classes);
        group.bench_with_input(BenchmarkId::from_parameter(n_classes), &query, |b, q| {
            b.iter(|| black_box(model.predict(black_box(q))))
        });
    }
    group.finish();
}

fn bench_reduced_dimensions(c: &mut Criterion) {
    let (model, query) = trained_model(4096, 10);
    let mut group = c.benchmark_group("search_reduced_dims");
    for dims in [512usize, 1024, 2048, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(dims), &query, |b, q| {
            b.iter(|| {
                black_box(model.predict_with(
                    black_box(q),
                    PredictOptions::reduced(dims, NormMode::Updated),
                ))
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let train: Vec<Vec<f64>> = (0..32)
        .map(|i| (0..64).map(|j| ((i * 3 + j * 5) % 11) as f64).collect())
        .collect();
    let spec = GenericEncoderSpec::new(4096, 64).with_seed(3);
    let encoder = GenericEncoder::from_data(spec, &train).expect("valid data");
    let encoded = encoder.encode_batch(&train).expect("valid rows");
    let labels: Vec<usize> = (0..32).map(|i| i % 4).collect();
    let model = HdcModel::fit(&encoded, &labels, 4).expect("valid inputs");
    let sample = train[7].clone();

    c.bench_function("infer_end_to_end_4k_64f_4c", |b| {
        b.iter(|| {
            let hv = encoder.encode(black_box(&sample)).expect("valid sample");
            black_box(model.predict(&hv))
        })
    });
}

/// Integer cosine search vs the packed binary associative memory — the
/// software counterpart of the 1-bit deployment mode.
fn bench_binary_vs_integer_search(c: &mut Criterion) {
    let (model, query) = trained_model(4096, 16);
    let binary = BinaryModel::from_model(&model);
    let binary_query = query.to_binary();

    let mut group = c.benchmark_group("search_representation");
    group.bench_function("integer_cosine_4k_16c", |b| {
        b.iter(|| black_box(model.predict(black_box(&query))))
    });
    group.bench_function("binary_hamming_4k_16c", |b| {
        b.iter(|| {
            black_box(
                binary
                    .predict(black_box(&binary_query))
                    .expect("widths match"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_search_classes,
    bench_reduced_dimensions,
    bench_end_to_end,
    bench_binary_vs_integer_search
);
criterion_main!(benches);
