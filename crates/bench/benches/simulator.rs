//! Criterion micro-benchmarks of the accelerator simulator itself: how
//! fast the host can simulate inference, training epochs, and fault
//! injection (useful when sweeping large design spaces).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use generic_sim::{Accelerator, AcceleratorConfig};
use std::hint::black_box;

fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let features: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..32).map(|j| ((i * 5 + j * 3) % 11) as f64).collect())
        .collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
    (features, labels)
}

fn trained(dim: usize) -> (Accelerator, Vec<Vec<f64>>) {
    let (xs, ys) = toy(32);
    let config = AcceleratorConfig::new(dim, 32, 4).with_seed(1);
    let mut acc = Accelerator::new(config, &xs).expect("valid config");
    acc.train(&xs, &ys, 3).expect("valid data");
    (acc, xs)
}

fn bench_sim_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_inference");
    for dim in [1024usize, 4096] {
        let (mut acc, xs) = trained(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &xs[0], |b, x| {
            b.iter(|| black_box(acc.infer(black_box(x)).expect("trained")))
        });
    }
    group.finish();
}

fn bench_sim_training(c: &mut Criterion) {
    let (xs, ys) = toy(32);
    let config = AcceleratorConfig::new(1024, 32, 4).with_seed(2);
    c.bench_function("sim_train_32x1k_3epochs", |b| {
        b.iter_batched(
            || Accelerator::new(config, &xs).expect("valid config"),
            |mut acc| {
                black_box(acc.train(&xs, &ys, 3).expect("valid data"));
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_fault_injection(c: &mut Criterion) {
    let (acc, _) = trained(4096);
    c.bench_function("sim_inject_2pct_ber_4k", |b| {
        b.iter_batched(
            || acc.clone(),
            |mut a| {
                black_box(a.inject_class_bit_errors(0.02, 7).expect("valid ber"));
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sim_inference,
    bench_sim_training,
    bench_fault_injection
);
criterion_main!(benches);
