//! Criterion micro-benchmarks: the word-parallel kernels against their
//! retained scalar references — bit-sliced bundling vs per-dimension
//! accumulation, packed sign/magnitude scoring vs the scalar dot, and
//! blocked vs scalar class scoring — plus every runtime-dispatched SIMD
//! kernel set paired against the portable fallback on the same buffers,
//! and the batched scoring engine against per-query scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use generic_hdc::encoding::GenericEncoder;
use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::kernels;
use generic_hdc::{
    BinaryHv, BitSliceAccumulator, HdcModel, IntHv, PackedInts, PredictOptions, QuantizedModel,
    ScoreBatch,
};
use std::hint::black_box;

const DIM: usize = 4096;
const N_VECS: usize = 62; // ISOLET-shaped: 64 features, window 3

fn bench_bundling(c: &mut Criterion) {
    let hvs: Vec<BinaryHv> = (0..N_VECS as u64)
        .map(|s| BinaryHv::random_seeded(DIM, 10 + s).expect("dim > 0"))
        .collect();

    let mut group = c.benchmark_group("bundle_62x4096");
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = IntHv::zeros(DIM).expect("dim > 0");
            for hv in &hvs {
                acc.bundle_binary(black_box(hv)).expect("dims match");
            }
            black_box(acc)
        })
    });
    group.bench_function("bit_sliced", |b| {
        b.iter(|| {
            let mut acc = BitSliceAccumulator::new(DIM).expect("dim > 0");
            for hv in &hvs {
                acc.add(black_box(hv)).expect("dims match");
            }
            black_box(acc.to_int_hv())
        })
    });
    group.finish();
}

fn bench_encode_bins(c: &mut Criterion) {
    let train: Vec<Vec<f64>> = (0..64)
        .map(|i| (0..64).map(|j| ((i * 7 + j * 3) % 17) as f64).collect())
        .collect();
    let spec = GenericEncoderSpec::new(DIM, 64).with_seed(7);
    let encoder = GenericEncoder::from_data(spec, &train).expect("valid data");
    let bins = encoder.quantizer().bins(&train[5]).expect("valid row");

    let mut group = c.benchmark_group("encode_bins_4k_64f");
    group.bench_function("scalar", |b| {
        b.iter(|| {
            black_box(
                encoder
                    .encode_bins_scalar(black_box(&bins))
                    .expect("valid bins"),
            )
        })
    });
    group.bench_function("bit_sliced", |b| {
        b.iter(|| black_box(encoder.encode_bins(black_box(&bins)).expect("valid bins")))
    });
    group.finish();
}

fn bench_dot_packed(c: &mut Criterion) {
    let query = BinaryHv::random_seeded(DIM, 3).expect("dim > 0");
    let values: Vec<i32> = (0..DIM as i64)
        .map(|i| ((i * 37 + 11) % 127 - 63) as i32)
        .collect();
    let packed = PackedInts::from_values(&values).expect("valid values");

    let mut group = c.benchmark_group("dot_4096");
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(query.dot_int(black_box(&values)).expect("dims match")))
    });
    group.bench_function("packed", |b| {
        b.iter(|| black_box(query.dot_packed(black_box(&packed)).expect("dims match")))
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let encoded: Vec<IntHv> = (0..13u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(DIM, 100 + s).expect("dim > 0")))
        .collect();
    let labels: Vec<usize> = (0..13).collect();
    let model = HdcModel::fit(&encoded, &labels, 13).expect("valid inputs");
    let query = encoded[0].clone();
    let opts = PredictOptions::full(DIM);

    let mut group = c.benchmark_group("score_13c_4096");
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(model.scores_scalar(black_box(&query), opts)))
    });
    group.bench_function("blocked", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            model.score_all(black_box(&query), opts, &mut out);
            black_box(&out);
        })
    });
    group.finish();
}

fn bench_quantized_scoring(c: &mut Criterion) {
    let encoded: Vec<IntHv> = (0..13u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(DIM, 200 + s).expect("dim > 0")))
        .collect();
    let labels: Vec<usize> = (0..13).collect();
    let model = HdcModel::fit(&encoded, &labels, 13).expect("valid inputs");
    let query = encoded[0].to_binary();
    let query_int = IntHv::from(query.clone());

    let mut group = c.benchmark_group("quantized_score_13c_4096");
    for bw in [4u8, 8] {
        let quantized = QuantizedModel::from_model(&model, bw).expect("valid width");
        let packed = quantized.pack().expect("valid model");
        group.bench_with_input(BenchmarkId::new("scalar", bw), &query_int, |b, q| {
            b.iter(|| black_box(quantized.scores(black_box(q))))
        });
        group.bench_with_input(BenchmarkId::new("packed", bw), &query, |b, q| {
            b.iter(|| black_box(packed.scores(black_box(q)).expect("dims match")))
        });
    }
    group.finish();
}

/// Every runtime-detected kernel set against the portable fallback on
/// identical buffers: one group per primitive, one entry per ISA (the
/// portable entry is the 1× baseline).
fn bench_isa_primitives(c: &mut Criterion) {
    let words = DIM / 64;
    let a_bits: Vec<u64> = (0..words as u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    let b_bits: Vec<u64> = (0..words as u64)
        .map(|i| !i.wrapping_mul(0xbf58476d1ce4e5b9))
        .collect();
    let mask: Vec<u64> = (0..words as u64)
        .map(|i| i.wrapping_mul(0x94d049bb133111eb))
        .collect();
    let a_ints: Vec<i32> = (0..DIM as i64)
        .map(|i| ((i * 31 + 7) % 17 - 8) as i32)
        .collect();
    let b_ints: Vec<i32> = (0..DIM as i64)
        .map(|i| ((i * 13 + 5) % 17 - 8) as i32)
        .collect();

    let mut group = c.benchmark_group("isa_hamming_4096");
    for isa in kernels::available() {
        let set = kernels::for_isa(isa).expect("listed by available()");
        group.bench_function(BenchmarkId::from_parameter(isa), |b| {
            b.iter(|| black_box(set.hamming(black_box(&a_bits), black_box(&b_bits))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("isa_masked_popcount_4096");
    for isa in kernels::available() {
        let set = kernels::for_isa(isa).expect("listed by available()");
        group.bench_function(BenchmarkId::from_parameter(isa), |b| {
            b.iter(|| {
                black_box(set.masked_popcount(
                    black_box(&a_bits),
                    black_box(&b_bits),
                    black_box(&mask),
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("isa_ripple_step_4096");
    for isa in kernels::available() {
        let set = kernels::for_isa(isa).expect("listed by available()");
        let mut plane = vec![0u64; words];
        let mut carry = vec![0u64; words];
        group.bench_function(BenchmarkId::from_parameter(isa), |b| {
            b.iter(|| {
                plane.copy_from_slice(&a_bits);
                carry.copy_from_slice(&mask);
                black_box(set.ripple_step(black_box(&mut plane), black_box(&mut carry)))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("isa_dot_i32_4096");
    for isa in kernels::available() {
        let set = kernels::for_isa(isa).expect("listed by available()");
        group.bench_function(BenchmarkId::from_parameter(isa), |b| {
            b.iter(|| black_box(set.dot_i32(black_box(&a_ints), black_box(&b_ints))))
        });
    }
    group.finish();
}

/// The batched scoring engine at B = 64 against a per-query loop over
/// the same dispatched kernels and over the scalar reference.
fn bench_score_batch(c: &mut Criterion) {
    let encoded: Vec<IntHv> = (0..64u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(DIM, 300 + s).expect("dim > 0")))
        .collect();
    let labels: Vec<usize> = (0..64).map(|i| i % 13).collect();
    let model = HdcModel::fit(&encoded, &labels, 13).expect("valid inputs");
    let opts = PredictOptions::full(DIM);

    let mut group = c.benchmark_group("predict_64q_13c_4096");
    group.bench_function("scalar_per_query", |b| {
        b.iter(|| {
            for q in &encoded {
                black_box(model.scores_scalar(black_box(q), opts));
            }
        })
    });
    group.bench_function("kernel_per_query", |b| {
        b.iter(|| {
            for q in &encoded {
                black_box(model.predict_with(black_box(q), opts));
            }
        })
    });
    group.bench_function("score_batch", |b| {
        let mut engine = ScoreBatch::new();
        let mut preds = Vec::new();
        b.iter(|| {
            engine.predict_into(&model, black_box(&encoded), opts, &mut preds);
            black_box(&preds);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bundling,
    bench_encode_bins,
    bench_dot_packed,
    bench_scoring,
    bench_quantized_scoring,
    bench_isa_primitives,
    bench_score_batch
);
criterion_main!(benches);
