//! Criterion micro-benchmarks: HDC clustering vs K-means on the FCPS
//! datasets (the software-side counterpart of Fig. 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use generic_datasets::ClusteringBenchmark;
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::{HdcClustering, HdcClusteringSpec};
use generic_ml::{KMeans, KMeansSpec};
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_full_run");
    group.sample_size(20);
    for benchmark in [ClusteringBenchmark::Hepta, ClusteringBenchmark::Iris] {
        let ds = benchmark.load(1);
        group.bench_with_input(BenchmarkId::from_parameter(benchmark), &ds, |b, ds| {
            b.iter(|| {
                black_box(
                    KMeans::fit(&ds.points, KMeansSpec::new(ds.k).with_seed(2))
                        .expect("valid points"),
                )
            })
        });
    }
    group.finish();
}

fn bench_hdc_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_cluster_full_run");
    group.sample_size(10);
    for benchmark in [ClusteringBenchmark::Hepta, ClusteringBenchmark::Iris] {
        let ds = benchmark.load(1);
        let spec = GenericEncoderSpec::new(4096, ds.n_features())
            .with_window(3.min(ds.n_features()))
            .with_seed(3);
        let encoder = GenericEncoder::from_data(spec, &ds.points).expect("valid points");
        let encoded = encoder.encode_batch(&ds.points).expect("valid rows");
        group.bench_with_input(BenchmarkId::from_parameter(benchmark), &encoded, |b, e| {
            b.iter(|| {
                black_box(
                    HdcClustering::fit(e, HdcClusteringSpec::new(ds.k).with_max_epochs(10))
                        .expect("k <= n"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_hdc_clustering);
criterion_main!(benches);
