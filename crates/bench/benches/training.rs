//! Criterion micro-benchmarks: HDC model initialization and retraining
//! epochs (the Fig. 8 software-side costs).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use generic_hdc::{BinaryHv, HdcModel, IntHv};
use std::hint::black_box;

fn synthetic_encodings(dim: usize, n: usize, n_classes: usize) -> (Vec<IntHv>, Vec<usize>) {
    let protos: Vec<BinaryHv> = (0..n_classes as u64)
        .map(|s| BinaryHv::random_seeded(dim, 500 + s).expect("dim > 0"))
        .collect();
    let mut encoded = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % n_classes;
        let mut hv = protos[c].clone();
        for k in 0..dim / 10 {
            hv.flip_bit((k * 13 + i * 7) % dim);
        }
        encoded.push(IntHv::from(hv));
        labels.push(c);
    }
    (encoded, labels)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_initial_model");
    for n in [64usize, 256] {
        let (encoded, labels) = synthetic_encodings(4096, n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(HdcModel::fit(&encoded, &labels, 8).expect("valid inputs")))
        });
    }
    group.finish();
}

fn bench_retrain_epoch(c: &mut Criterion) {
    let (encoded, labels) = synthetic_encodings(4096, 256, 8);
    let model = HdcModel::fit(&encoded, &labels, 8).expect("valid inputs");
    c.bench_function("retrain_epoch_256x4k", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| {
                black_box(m.retrain_epoch(&encoded, &labels).expect("valid inputs"));
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_fit, bench_retrain_epoch);
criterion_main!(benches);
