//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! window length *n*, id binding on/off, and seeded vs tabled id
//! generation (the §4.3.1 compression trades memory for rotation work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use std::hint::black_box;

fn train_data() -> Vec<Vec<f64>> {
    (0..64)
        .map(|i| (0..64).map(|j| ((i * 11 + j * 3) % 19) as f64).collect())
        .collect()
}

fn bench_window_length(c: &mut Criterion) {
    let train = train_data();
    let sample = train[9].clone();
    let mut group = c.benchmark_group("ablation_window_n");
    for n in [1usize, 2, 3, 4, 5] {
        let spec = GenericEncoderSpec::new(4096, 64)
            .with_window(n)
            .with_seed(5);
        let encoder = GenericEncoder::from_data(spec, &train).expect("valid data");
        group.bench_with_input(BenchmarkId::from_parameter(n), &sample, |b, s| {
            b.iter(|| black_box(encoder.encode(black_box(s)).expect("valid sample")))
        });
    }
    group.finish();
}

fn bench_id_binding(c: &mut Criterion) {
    let train = train_data();
    let sample = train[4].clone();
    let mut group = c.benchmark_group("ablation_id_binding");
    for (label, binding) in [("bound", true), ("unbound", false)] {
        let spec = GenericEncoderSpec::new(4096, 64)
            .with_id_binding(binding)
            .with_seed(6);
        let encoder = GenericEncoder::from_data(spec, &train).expect("valid data");
        group.bench_with_input(BenchmarkId::from_parameter(label), &sample, |b, s| {
            b.iter(|| black_box(encoder.encode(black_box(s)).expect("valid sample")))
        });
    }
    group.finish();
}

fn bench_id_generation(c: &mut Criterion) {
    let train = train_data();
    let sample = train[2].clone();
    let mut group = c.benchmark_group("ablation_id_generation");
    for (label, seeded) in [("seeded", true), ("table", false)] {
        let spec = GenericEncoderSpec::new(4096, 64)
            .with_seeded_ids(seeded)
            .with_seed(7);
        let encoder = GenericEncoder::from_data(spec, &train).expect("valid data");
        group.bench_with_input(BenchmarkId::from_parameter(label), &sample, |b, s| {
            b.iter(|| black_box(encoder.encode(black_box(s)).expect("valid sample")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_window_length,
    bench_id_binding,
    bench_id_generation
);
criterion_main!(benches);
