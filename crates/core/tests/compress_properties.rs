//! Property-based tests for the post-training compression pipeline:
//! saliency-guided pruning invariants and the support-mask wire
//! extension's rejection of malformed masks.

use generic_hdc::io::{PackedLayout, ReadModelError};
use generic_hdc::{
    prune, saliency, BinaryHv, CompressedModel, HdcModel, IntHv, Mapping, PackedModelView,
};
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(64usize),
        Just(100),
        Just(127),
        Just(128),
        Just(129),
        Just(256)
    ]
}

/// A small trained model plus the samples it was fitted on. Per-class
/// prototypes with per-sample noise give the saliency map real signal.
fn sample_problem(dim: usize, seed: u64) -> (HdcModel, Vec<IntHv>, Vec<usize>) {
    let n_classes = 3;
    let prototypes: Vec<BinaryHv> = (0..n_classes as u64)
        .map(|c| BinaryHv::random_seeded(dim, seed ^ (c * 7919)).expect("dim > 0"))
        .collect();
    let mut encoded = Vec::new();
    let mut labels = Vec::new();
    for i in 0..18u64 {
        let label = (i % n_classes as u64) as usize;
        let noise = BinaryHv::random_seeded(dim, seed.wrapping_add(i * 104_729)).expect("dim > 0");
        let mut bits: Vec<bool> = (0..dim).map(|d| prototypes[label].bit(d)).collect();
        for (d, bit) in bits.iter_mut().enumerate() {
            // Flip ~1/8 of the positions so classes stay separable.
            if noise.bit(d) && d % 8 == 0 {
                *bit = !*bit;
            }
        }
        encoded.push(IntHv::from(BinaryHv::from_bits(&bits).expect("dim > 0")));
        labels.push(label);
    }
    let model = HdcModel::fit(&encoded, &labels, n_classes).expect("valid inputs");
    (model, encoded, labels)
}

/// Bitwise CRC-32 (IEEE, reflected 0xEDB88320) so tests can re-seal a
/// tampered stream and prove the *structural* validators also fire.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

/// Overwrites the 4-byte CRC footer with one matching the (tampered)
/// body, so corruption reaches the support-mask validator instead of
/// stopping at the checksum gate.
fn reseal(image: &mut [u8]) {
    let body = image.len() - 4;
    let crc = crc32(&image[..body]);
    image[body..].copy_from_slice(&crc.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The support is a strictly ascending subset of the parent
    /// dimensions, exactly `keep` long, and equals the top-`keep`
    /// saliency dimensions (the monotone-order invariant: no kept
    /// dimension is less salient than a dropped one).
    #[test]
    fn support_is_the_sorted_top_saliency_subset(
        dim in arb_dim(),
        seed in any::<u64>(),
        keep_frac in 1usize..=4,
    ) {
        let (model, encoded, labels) = sample_problem(dim, seed);
        let sal = saliency(&model, &encoded, &labels).expect("valid inputs");
        let keep = (dim * keep_frac / 4).max(1);
        let pruned = prune(&model, &sal, keep).expect("valid keep");

        prop_assert_eq!(pruned.support().len(), keep);
        prop_assert_eq!(pruned.parent_dim(), dim);
        prop_assert_eq!(pruned.model().dim(), keep);
        prop_assert!(pruned.support().windows(2).all(|w| w[0] < w[1]));
        prop_assert!(pruned.support().iter().all(|&d| d < dim));

        let mut expected: Vec<usize> = sal.ranked()[..keep].to_vec();
        expected.sort_unstable();
        prop_assert_eq!(pruned.support(), expected.as_slice());

        // Dropped dimensions are never strictly more salient than kept
        // ones (ties break toward the lower index, which ranked() pins).
        let kept_min = pruned
            .support()
            .iter()
            .map(|&d| sal.scores()[d])
            .min()
            .expect("keep >= 1");
        for d in 0..dim {
            if !pruned.support().contains(&d) {
                prop_assert!(sal.scores()[d] <= kept_min);
            }
        }

        // The pruned class vectors are exact gathers of the originals.
        for (label, class) in pruned.model().iter().enumerate() {
            for (j, &d) in pruned.support().iter().enumerate() {
                prop_assert_eq!(class.values()[j], model.class(label).values()[d]);
            }
        }
    }

    /// The ranked order is monotone non-increasing in saliency.
    #[test]
    fn ranked_order_is_monotone(dim in arb_dim(), seed in any::<u64>()) {
        let (model, encoded, labels) = sample_problem(dim, seed);
        let sal = saliency(&model, &encoded, &labels).expect("valid inputs");
        let ranked = sal.ranked();
        prop_assert_eq!(ranked.len(), dim);
        for w in ranked.windows(2) {
            let (a, b) = (sal.scores()[w[0]], sal.scores()[w[1]]);
            prop_assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    /// Prune → quantize → pack → map → unpack round-trips bit-exactly:
    /// the mapped view reproduces the heap model and the support mask,
    /// and re-serialization is byte-identical.
    #[test]
    fn prune_then_pack_roundtrips_bit_exactly(
        dim in arb_dim(),
        seed in any::<u64>(),
        bit_width in prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
    ) {
        let (model, encoded, labels) = sample_problem(dim, seed);
        let sal = saliency(&model, &encoded, &labels).expect("valid inputs");
        let keep = (dim / 2).max(1);
        let pruned = prune(&model, &sal, keep).expect("valid keep");
        let compressed = CompressedModel::from_pruned(&pruned, bit_width).expect("quantizes");

        let image = compressed.image_bytes().expect("serializes");
        let mapping = Mapping::from_bytes(&image).expect("maps");
        let view = PackedModelView::new(&mapping).expect("sealed image");
        prop_assert!(view.is_pruned());
        prop_assert_eq!(view.parent_dim(), dim);
        prop_assert_eq!(view.dim(), keep);
        let mask = compressed.support_mask();
        prop_assert_eq!(view.support().expect("pruned view carries a mask"), mask.as_slice());
        prop_assert_eq!(&view.to_quantized().expect("decodes"), compressed.quantized());
        prop_assert_eq!(compressed.image_bytes().expect("serializes"), image);
    }

    /// keep = 0 is a typed error; keep = dim is the total support and
    /// serializes as a plain full-support stream (no mask section).
    #[test]
    fn zero_and_full_supports_are_total(dim in arb_dim(), seed in any::<u64>()) {
        let (model, encoded, labels) = sample_problem(dim, seed);
        let sal = saliency(&model, &encoded, &labels).expect("valid inputs");
        prop_assert!(prune(&model, &sal, 0).is_err());

        let full = prune(&model, &sal, dim).expect("total support");
        let support: Vec<usize> = (0..dim).collect();
        prop_assert_eq!(full.support(), support.as_slice());
        let compressed = CompressedModel::from_pruned(&full, 4).expect("quantizes");
        let image = compressed.image_bytes().expect("serializes");
        let layout = PackedLayout::parse(&image).expect("parses");
        prop_assert!(!layout.is_pruned(), "full support must not store a mask");
    }

    /// Truncating a pruned image anywhere in or after the support
    /// section is caught as a typed length error before any view exists.
    #[test]
    fn truncated_support_masks_are_rejected(dim in arb_dim(), seed in any::<u64>(), cut_seed in any::<u64>()) {
        let (model, encoded, labels) = sample_problem(dim, seed);
        let sal = saliency(&model, &encoded, &labels).expect("valid inputs");
        let pruned = prune(&model, &sal, (dim / 2).max(1)).expect("valid keep");
        let compressed = CompressedModel::from_pruned(&pruned, 2).expect("quantizes");
        let mut image = compressed.image_bytes().expect("serializes");

        let layout = PackedLayout::parse(&image).expect("parses");
        let span = layout.total_len() - layout.support_offset();
        let cut = layout.support_offset() + (cut_seed as usize % span);
        image.truncate(cut);
        let mapping = Mapping::from_bytes(&image).expect("maps");
        let err = PackedModelView::new(&mapping).expect_err("truncation must be caught");
        prop_assert!(
            matches!(err, ReadModelError::Truncated { .. }),
            "cut {}: {}", cut, err
        );
    }

    /// A flipped support-mask bit is rejected either way: the checksum
    /// gate catches the raw tamper, and a re-sealed stream (valid CRC,
    /// corrupt mask) still fails the population-count cross-check —
    /// both before any view is constructed.
    #[test]
    fn bit_flipped_support_masks_are_rejected(dim in arb_dim(), seed in any::<u64>(), flip_seed in any::<u64>()) {
        let (model, encoded, labels) = sample_problem(dim, seed);
        let sal = saliency(&model, &encoded, &labels).expect("valid inputs");
        let pruned = prune(&model, &sal, (dim / 2).max(1)).expect("valid keep");
        let compressed = CompressedModel::from_pruned(&pruned, 2).expect("quantizes");
        let image = compressed.image_bytes().expect("serializes");
        let layout = PackedLayout::parse(&image).expect("parses");

        // Flip a mask bit inside the parent space so only the popcount
        // (not the padding rule) is violated.
        let d = flip_seed as usize % dim;
        let pos = layout.support_offset() + d / 8;
        let mask = 1u8 << (d % 8);

        let mut raw = image.clone();
        raw[pos] ^= mask;
        let mapping = Mapping::from_bytes(&raw).expect("maps");
        let err = PackedModelView::new(&mapping).expect_err("tamper must be caught");
        prop_assert!(matches!(err, ReadModelError::ChecksumMismatch { .. }), "{err}");

        let mut resealed = image;
        resealed[pos] ^= mask;
        reseal(&mut resealed);
        let mapping = Mapping::from_bytes(&resealed).expect("maps");
        let err = PackedModelView::new(&mapping).expect_err("bad popcount must be caught");
        prop_assert!(matches!(err, ReadModelError::SupportMismatch { .. }), "{err}");
    }
}
