//! Crash-safety of the checkpoint store: a checkpoint truncated at any
//! byte offset, or with any single corrupted byte, must either fall
//! back to the previous intact generation or fail cleanly with a typed
//! error — never panic, never load silently-wrong weights.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::io::ReadModelError;
use generic_hdc::runtime::{CheckpointStore, RetryPolicy, RuntimeError};
use generic_hdc::HdcPipeline;
use proptest::prelude::*;

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "ghdc-recovery-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir is creatable");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_pipeline(seed: u64) -> HdcPipeline {
    let features: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..6).map(|j| ((i * 3 + j) % 7) as f64).collect())
        .collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let spec = GenericEncoderSpec::new(256, 6).with_seed(seed);
    HdcPipeline::train(spec, &features, &labels, 2, 3).expect("valid inputs")
}

/// A store with generation 1 (intact, from `seed = 5`) and generation 2
/// (from `seed = 9`, to be corrupted). Returns the clean gen-2 bytes
/// and the gen-2 path.
fn two_generation_store(dir: &Path) -> (CheckpointStore, Vec<u8>, PathBuf) {
    let store = CheckpointStore::open(dir, 4, RetryPolicy::default()).expect("dir is creatable");
    store
        .save(&sample_pipeline(5), 1, 10, 0.5)
        .expect("save generation 1");
    let path2 = store
        .save(&sample_pipeline(9), 2, 20, 0.5)
        .expect("save generation 2");
    let clean = std::fs::read(&path2).expect("generation 2 readable");
    (store, clean, path2)
}

/// Recovery must land on generation 1 with the exact weights that were
/// checkpointed there.
fn assert_falls_back_to_gen1(store: &CheckpointStore, context: &str) {
    let report = store.recover().expect("directory scan succeeds");
    let ckpt = report
        .checkpoint
        .unwrap_or_else(|| panic!("{context}: generation 1 must survive"));
    assert_eq!(ckpt.generation, 1, "{context}");
    assert_eq!(ckpt.seen, 10, "{context}");
    let reference = store.load_generation(1).expect("generation 1 intact");
    let probe: Vec<f64> = (0..6).map(|j| (j % 7) as f64).collect();
    assert_eq!(
        ckpt.pipeline.predict(&probe).expect("clean pipeline"),
        reference.pipeline.predict(&probe).expect("clean pipeline"),
        "{context}: recovered weights must match the stored generation"
    );
}

/// Exhaustive: truncating the newest checkpoint at EVERY byte offset
/// must reject it and fall back to the previous generation.
#[test]
fn truncation_at_every_offset_falls_back() {
    let dir = TempDir::new("truncate-all");
    let (store, clean, path2) = two_generation_store(dir.path());
    for cut in 0..clean.len() {
        std::fs::write(&path2, &clean[..cut]).expect("temp dir writable");
        assert!(
            store.load_generation(2).is_err(),
            "cut at {cut}/{} must not load",
            clean.len()
        );
        assert_falls_back_to_gen1(&store, &format!("cut at {cut}"));
    }
    // Sanity: the untruncated file loads generation 2 again.
    std::fs::write(&path2, &clean).expect("temp dir writable");
    assert_eq!(
        store
            .recover()
            .expect("scan")
            .checkpoint
            .expect("intact")
            .generation,
        2
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single corrupted byte in the newest checkpoint either falls
    /// back to the previous generation or — when the corruption lands
    /// past the magic/version prefix — fails specifically with a
    /// checksum mismatch. It never panics and never loads wrong
    /// weights as generation 2.
    #[test]
    fn single_byte_corruption_falls_back(pos_seed in any::<u64>(), delta in 1u8..=255) {
        let dir = TempDir::new("flip");
        let (store, clean, path2) = two_generation_store(dir.path());
        let pos = (pos_seed % clean.len() as u64) as usize;
        let mut corrupted = clean.clone();
        corrupted[pos] = corrupted[pos].wrapping_add(delta);
        std::fs::write(&path2, &corrupted).expect("temp dir writable");

        let err = store
            .load_generation(2)
            .expect_err("corruption must be caught");
        if pos >= 5 {
            // Past magic + version, the CRC32 footer catches everything
            // before any payload byte is interpreted.
            prop_assert!(
                matches!(
                    err,
                    RuntimeError::Checkpoint(ReadModelError::ChecksumMismatch { .. })
                ),
                "pos {pos}: {err}"
            );
        }
        assert_falls_back_to_gen1(&store, &format!("flip at {pos}"));
    }

    /// Arbitrary garbage dropped into the store as the newest
    /// generation never panics recovery and never masks the intact one.
    #[test]
    fn garbage_checkpoints_never_panic_recovery(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let dir = TempDir::new("garbage");
        let (store, _clean, path2) = two_generation_store(dir.path());
        std::fs::write(&path2, &bytes).expect("temp dir writable");
        prop_assert!(store.load_generation(2).is_err());
        assert_falls_back_to_gen1(&store, "garbage generation 2");
    }
}
