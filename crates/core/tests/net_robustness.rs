//! Robustness of the framed TCP codec: arbitrary, truncated,
//! bit-flipped, and oversized byte images must be rejected with typed
//! [`FrameError`]s — the decoder never panics and never reads past the
//! supplied bytes — while every canonical frame round-trips through
//! encode→decode byte-exactly. Mirrors `mapped_robustness` /
//! `ledger_robustness` for the wire surface.

use generic_hdc::net::{FrameReader, MAX_FRAME_LEN, PROTOCOL_VERSION};
use generic_hdc::{Frame, FrameError, NetStatus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Every refusal-capable status (a refusal must not claim success).
const REFUSAL_STATUSES: [NetStatus; 7] = [
    NetStatus::QueueFull,
    NetStatus::Shed,
    NetStatus::Malformed,
    NetStatus::Unavailable,
    NetStatus::ShuttingDown,
    NetStatus::TenantUnavailable,
    NetStatus::Canceled,
];

/// Draws an arbitrary canonical frame, covering every opcode.
///
/// Feature vectors stay finite (NaN payloads round-trip bit-exactly
/// but defeat `PartialEq`); tenants are `None` or non-empty, matching
/// the canonical encoding where `None` and `""` share a wire image.
struct AnyFrame;

fn sample_features(rng: &mut StdRng) -> Vec<f64> {
    let n = rng.random_range(0usize..24);
    (0..n)
        .map(|_| rng.random_range(-1.0e12f64..1.0e12))
        .collect()
}

fn sample_tenant(rng: &mut StdRng) -> Option<String> {
    if rng.random_range(0u32..2) == 0 {
        return None;
    }
    let n = rng.random_range(1usize..=16);
    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    Some(
        (0..n)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
            .collect(),
    )
}

impl Strategy for AnyFrame {
    type Value = Frame;

    fn sample(&self, rng: &mut StdRng) -> Frame {
        match rng.random_range(0u32..7) {
            0 => Frame::Infer {
                request_id: rng.random(),
                deadline_us: rng.random(),
                tenant: sample_tenant(rng),
                features: sample_features(rng),
            },
            1 => Frame::Learn {
                request_id: rng.random(),
                label: rng.random(),
                features: sample_features(rng),
            },
            2 => Frame::Ping {
                request_id: rng.random(),
            },
            3 => Frame::Answer {
                request_id: rng.random(),
                elapsed_us: rng.random(),
                label: rng.random(),
                dims_used: rng.random(),
                tier: rng.random(),
                shard: rng.random(),
                degraded: rng.random_range(0u32..2) == 1,
            },
            4 => Frame::Accepted {
                request_id: rng.random(),
            },
            5 => {
                let n = rng.random_range(0usize..48);
                Frame::Refusal {
                    request_id: rng.random(),
                    status: REFUSAL_STATUSES[rng.random_range(0..REFUSAL_STATUSES.len())],
                    detail: (0..n)
                        .map(|_| (rng.random_range(0x20u8..0x7F)) as char)
                        .collect(),
                }
            }
            _ => Frame::Goodbye,
        }
    }
}

/// Draws a vector of canonical frames for stream-reassembly tests.
struct FrameStream;

impl Strategy for FrameStream {
    type Value = Vec<Frame>;

    fn sample(&self, rng: &mut StdRng) -> Vec<Frame> {
        let n = rng.random_range(1usize..6);
        (0..n).map(|_| AnyFrame.sample(rng)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the decoder or the incremental
    /// reader — every outcome is `Ok` or a typed error.
    #[test]
    fn arbitrary_bytes_do_not_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&bytes);
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        // Drain until the reader neither yields nor errors further.
        for _ in 0..16 {
            match reader.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Encode→decode is the identity, and re-encoding the decoded frame
    /// reproduces the exact wire bytes (one canonical image per value).
    #[test]
    fn round_trip_is_byte_exact(frame in AnyFrame) {
        let bytes = frame.encode();
        prop_assert!(bytes.len() <= 4 + MAX_FRAME_LEN);
        let decoded = Frame::decode(&bytes).expect("canonical frame decodes");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Cutting a frame anywhere yields `Truncated` (or `Undersized`
    /// when the mangled length prefix itself is implausible) — never a
    /// partial decode, never an over-read.
    #[test]
    fn truncation_is_a_typed_error(frame in AnyFrame, cut_seed in any::<u64>()) {
        let bytes = frame.encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let err = Frame::decode(&bytes[..cut]).expect_err("short frame must be refused");
        prop_assert!(
            matches!(err, FrameError::Truncated { .. } | FrameError::Undersized { .. }),
            "cut {}: {}", cut, err
        );
    }

    /// Any single flipped bit is fatal: the CRC trailer (or a stricter
    /// header check that fires first) refuses the frame. No flip is
    /// silently absorbed.
    #[test]
    fn flipped_bit_is_rejected(frame in AnyFrame, pos_seed in any::<u64>(), bit in 0u32..8) {
        let mut bytes = frame.encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            Frame::decode(&bytes).is_err(),
            "flip at {} bit {} was absorbed", pos, bit
        );
    }

    /// A declared length beyond the cap is refused up front — before
    /// any allocation sized by attacker-controlled bytes.
    #[test]
    fn oversized_declared_length_is_refused(extra in 1u32..1024) {
        let mut bytes = Frame::Ping { request_id: 1 }.encode();
        let len = (MAX_FRAME_LEN as u32).saturating_add(extra);
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let err = Frame::decode(&bytes).expect_err("oversized length must be refused");
        prop_assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
    }

    /// Every version byte other than ours is refused with the typed
    /// version error (checked before the CRC, so old peers get a clear
    /// signal instead of a checksum complaint).
    #[test]
    fn wrong_version_is_refused(frame in AnyFrame, version in any::<u8>()) {
        prop_assume!(version != PROTOCOL_VERSION);
        let mut bytes = frame.encode();
        bytes[8] = version; // body[4]: the version byte
        let err = Frame::decode(&bytes).expect_err("foreign version must be refused");
        prop_assert!(
            matches!(err, FrameError::UnsupportedVersion { got } if got == version),
            "{err}"
        );
    }

    /// The incremental reader reassembles a stream of frames from
    /// arbitrary chunk boundaries, byte-for-byte.
    #[test]
    fn frame_reader_reassembles_any_chunking(
        frames in FrameStream,
        chunk_seed in any::<u64>(),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        let mut seed = chunk_seed;
        while offset < stream.len() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take = 1 + (seed % 37) as usize;
            let end = (offset + take).min(stream.len());
            reader.extend(&stream[offset..end]);
            offset = end;
            while let Some(f) = reader.next_frame().expect("canonical stream decodes") {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
    }
}

/// Guards the fuzz helpers against drifting out of sync with the
/// format: a canonical frame of every opcode decodes standalone.
#[test]
fn canonical_frames_decode_standalone() {
    let samples = [
        Frame::Infer {
            request_id: 1,
            deadline_us: 250,
            tenant: Some("acme".to_owned()),
            features: vec![1.0, -2.5],
        },
        Frame::Learn {
            request_id: 2,
            label: 3,
            features: vec![0.0],
        },
        Frame::Ping { request_id: 3 },
        Frame::Answer {
            request_id: 1,
            elapsed_us: 412,
            label: 2,
            dims_used: 2048,
            tier: 4,
            shard: 1,
            degraded: true,
        },
        Frame::Accepted { request_id: 2 },
        Frame::Refusal {
            request_id: 4,
            status: NetStatus::Shed,
            detail: "deadline hopeless".to_owned(),
        },
        Frame::Goodbye,
    ];
    for frame in samples {
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).expect("decodes"), frame);
    }
}
