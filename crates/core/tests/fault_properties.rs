//! Statistical properties of the fault-injection engine: flip counts
//! track the requested bit-error rate, and everything is reproducible
//! from its seed.

use generic_hdc::{BinaryHv, FaultModel, HdcModel, IntHv, QuantizedModel};
use proptest::prelude::*;

fn sample_quantized(bit_width: u8) -> QuantizedModel {
    let encoded: Vec<IntHv> = (0..4u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(512, s).expect("dim > 0")))
        .collect();
    let model = HdcModel::fit(&encoded, &[0, 1, 2, 3], 4).expect("valid inputs");
    QuantizedModel::from_model(&model, bit_width).expect("valid width")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The number of injected flips is binomial around `ber × total
    /// effective bits`: within 6 standard deviations for every width.
    #[test]
    fn flip_count_tracks_the_bit_error_rate(seed in any::<u64>(), ber in 0.02f64..0.5) {
        for bw in [1u8, 2, 4, 8, 16] {
            let mut q = sample_quantized(bw);
            let total_bits = (q.n_classes() * q.dim() * bw as usize) as f64;
            let flips = q.inject_bit_flips(ber, seed).expect("valid ber") as f64;
            let expected = ber * total_bits;
            let sigma = (total_bits * ber * (1.0 - ber)).sqrt();
            prop_assert!(
                (flips - expected).abs() <= 6.0 * sigma + 1.0,
                "bw {}: {} flips, expected {} ± {}", bw, flips, expected, sigma
            );
        }
    }

    /// The same seed injects the same damage: identical flip count and
    /// identical resulting class memory.
    #[test]
    fn injection_is_reproducible_for_a_fixed_seed(seed in any::<u64>(), ber in 0.0f64..0.5) {
        let mut a = sample_quantized(4);
        let mut b = a.clone();
        let fa = a.inject_bit_flips(ber, seed).expect("valid ber");
        let fb = b.inject_bit_flips(ber, seed).expect("valid ber");
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(a, b);
    }

    /// Different read indices of a transient fault model draw fresh
    /// noise, while a persistent model replays the same defects.
    #[test]
    fn transient_varies_per_read_but_persistent_does_not(seed in any::<u64>()) {
        let golden = sample_quantized(8);

        let transient = FaultModel::transient(0.2, seed).expect("valid ber");
        let mut t0 = golden.clone();
        let mut t1 = golden.clone();
        transient.corrupt_model(&mut t0, 0);
        transient.corrupt_model(&mut t1, 1);
        prop_assert_ne!(&t0, &t1);

        let persistent = FaultModel::persistent(0.2, seed).expect("valid ber");
        let mut p0 = golden.clone();
        let mut p1 = golden;
        persistent.corrupt_model(&mut p0, 0);
        persistent.corrupt_model(&mut p1, 1);
        prop_assert_eq!(&p0, &p1);
    }
}
