//! Chaos tests for the supervised sharded serving runtime: shard kills
//! mid-batch, restart backoff, circuit breaking, backpressure, writer
//! stalls, injected checkpoint failures, graceful drain, and the
//! lossless dead-letter export.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::runtime::{
    read_dead_letters_csv, write_dead_letters_csv, CheckpointStore, OnlineRuntime, RetryPolicy,
    RuntimeConfig, RuntimeStats,
};
use generic_hdc::serve::{ServeConfig, ServeError, Server, SubmitError};
use generic_hdc::{HdcPipeline, NormMode, PredictOptions};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "ghdc-serve-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir is creatable");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const N_FEATURES: usize = 6;

fn sample_features(i: usize) -> Vec<f64> {
    (0..N_FEATURES).map(|j| ((i * 3 + j) % 7) as f64).collect()
}

fn sample_pipeline(seed: u64) -> HdcPipeline {
    let features: Vec<Vec<f64>> = (0..24).map(sample_features).collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let spec = GenericEncoderSpec::new(256, N_FEATURES).with_seed(seed);
    HdcPipeline::train(spec, &features, &labels, 2, 3).expect("valid inputs")
}

fn runtime_in(dir: &Path) -> OnlineRuntime {
    let store = CheckpointStore::open(dir, 3, RetryPolicy::default()).expect("dir is creatable");
    let config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    OnlineRuntime::new(sample_pipeline(7), store, config).expect("valid config")
}

fn quick_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        restart_backoff: Duration::from_millis(1),
        restart_backoff_max: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

/// Every admitted request is answered, and every answer is bit-identical
/// to the scalar oracle replayed against the exact snapshot and tier
/// the worker used.
#[test]
fn answers_match_the_scalar_oracle() {
    let dir = TempDir::new("oracle");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let handle = server.handle();

    let tickets: Vec<_> = (0..200)
        .map(|i| {
            handle
                .submit(sample_features(i), None)
                .expect("no overload without deadlines")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let answer = ticket.wait().expect("admitted requests are answered");
        let pipeline = answer.snapshot.pipeline();
        let encoded = pipeline.encode(&sample_features(i)).expect("clean row");
        let opts = PredictOptions::reduced(answer.dims_used, NormMode::Updated);
        let oracle = pipeline
            .model()
            .try_predict_with(&encoded, opts)
            .expect("oracle scores");
        assert_eq!(answer.label, oracle, "request {i} diverged from oracle");
    }

    let report = server.drain().expect("drain succeeds");
    assert_eq!(report.workers.answered, 200);
    assert_eq!(report.serve.admitted, 200);
    assert_eq!(report.serve.canceled, 0);
    assert!(report.final_checkpoint_ok);
}

/// A shard killed mid-batch loses nothing: its in-flight batch is
/// requeued and re-answered, and the shard restarts.
#[test]
fn shard_kill_recovers_in_flight_requests() {
    let dir = TempDir::new("kill");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let handle = server.handle();

    handle.chaos_kill_shard(0);
    let tickets: Vec<_> = (0..300)
        .map(|i| handle.submit(sample_features(i), None).expect("admitted"))
        .collect();
    for ticket in tickets {
        ticket
            .wait_timeout(Duration::from_secs(20))
            .expect("every admitted request is still answered after the kill");
    }

    let stats = handle.stats();
    assert_eq!(stats.shard_panics, 1, "exactly the injected kill");
    assert_eq!(stats.shard_restarts, 1, "the killed shard restarted");
    assert!(stats.requeued >= 1, "the in-flight batch was requeued");
    assert_eq!(handle.live_shards(), 2);

    let report = server.drain().expect("drain succeeds");
    assert_eq!(
        report.workers.answered + report.serve.canceled,
        report.serve.admitted,
        "admitted = answered + canceled, nothing vanished"
    );
    assert_eq!(report.serve.canceled, 0);
}

/// A shard that keeps panicking exhausts its restart budget and trips
/// its circuit breaker; the rest of the fleet keeps serving. When every
/// shard is broken, admission fails fast with `Unavailable`.
#[test]
fn restart_budget_opens_the_circuit() {
    let dir = TempDir::new("circuit");
    let config = ServeConfig {
        restart_budget: 2,
        ..quick_config(1)
    };
    let server = Server::start(runtime_in(dir.path()), config).expect("server starts");
    let handle = server.handle();

    // Kill the lone shard through its whole restart budget (2 restarts
    // → the 3rd panic opens the circuit).
    for round in 0..3 {
        handle.chaos_kill_shard(0);
        let deadline = Instant::now() + Duration::from_secs(20);
        // Feed requests until the panic is observed.
        while handle.stats().shard_panics <= round {
            let _ = handle.submit(sample_features(0), None).map(|t| {
                let _ = t.wait_timeout(Duration::from_millis(200));
            });
            assert!(Instant::now() < deadline, "kill {round} was never honoured");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let deadline = Instant::now() + Duration::from_secs(20);
    while handle.live_shards() > 0 {
        assert!(Instant::now() < deadline, "circuit never opened");
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = handle.stats();
    assert_eq!(stats.circuit_opens, 1);
    assert_eq!(stats.shard_panics, 3);
    assert_eq!(stats.shard_restarts, 2, "budget-limited restarts");
    assert!(matches!(
        handle.submit(sample_features(0), None),
        Err(SubmitError::Unavailable | SubmitError::ShuttingDown)
    ));

    let report = server.drain().expect("drain succeeds even after outage");
    assert_eq!(
        report.workers.answered + report.serve.canceled,
        report.serve.admitted,
        "every admitted request was answered or explicitly canceled"
    );
}

/// The bounded work queue rejects with `QueueFull` instead of buffering
/// unboundedly, and malformed rows are rejected synchronously.
#[test]
fn admission_backpressure_and_sanitization() {
    let dir = TempDir::new("admission");
    let config = ServeConfig {
        queue_depth: 4,
        ..quick_config(1)
    };
    let server = Server::start(runtime_in(dir.path()), config).expect("server starts");
    let handle = server.handle();

    // Park the lone shard on a chaos kill so the queue backs up.
    handle.chaos_kill_shard(0);
    let mut overflowed = false;
    let mut tickets = Vec::new();
    for i in 0..200 {
        match handle.submit(sample_features(i), None) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => {
                overflowed = true;
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(overflowed, "a depth-4 queue must overflow");

    // Malformed rows never reach the queue.
    assert!(matches!(
        handle.submit(vec![1.0; N_FEATURES + 1], None),
        Err(SubmitError::Rejected(_))
    ));
    assert!(matches!(
        handle.submit(vec![f64::NAN; N_FEATURES], None),
        Err(SubmitError::Rejected(_))
    ));
    let stats = handle.stats();
    assert!(stats.rejected_queue_full >= 1);
    assert_eq!(stats.rejected_malformed, 2);

    for ticket in tickets {
        ticket
            .wait_timeout(Duration::from_secs(20))
            .expect("queued requests are answered after the restart");
    }
    server.drain().expect("drain succeeds");
}

/// A stalled writer backs the bounded learn queue up against its bound
/// (visible backpressure) without disturbing the read path, and learning
/// resumes once the stall clears.
#[test]
fn writer_stall_causes_learn_backpressure_not_outage() {
    let dir = TempDir::new("stall");
    let config = ServeConfig {
        learn_queue_depth: 8,
        publish_every: 1,
        ..quick_config(1)
    };
    let server = Server::start(runtime_in(dir.path()), config).expect("server starts");
    let handle = server.handle();

    handle.chaos_stall_writer(Duration::from_millis(300));
    let mut rejected = 0u64;
    for i in 0..64 {
        if handle.submit_learn(sample_features(i), i % 2).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "a stalled writer must surface backpressure");

    // Reads keep flowing from the last published snapshot meanwhile.
    let answer = handle
        .submit(sample_features(1), None)
        .expect("read path unaffected")
        .wait_timeout(Duration::from_secs(10))
        .expect("answered during the stall");
    assert!(answer.label < 2);

    let report = server.drain().expect("drain flushes the learn queue");
    assert_eq!(report.serve.writer_stalls, 1);
    assert!(
        report.writer.learned + report.writer.held_out > 0,
        "accepted learn samples were applied after the stall"
    );
    assert_eq!(
        report.writer.learned + report.writer.held_out + report.writer.quarantined,
        report.serve.learn_submitted - report.serve.learn_rejected,
        "every accepted learn sample is accounted for"
    );
}

/// Injected checkpoint-write failures are absorbed by the retry policy
/// when transient and surface as a failed-but-non-fatal final checkpoint
/// when persistent; serving continues either way.
#[test]
fn checkpoint_failures_are_retried_then_degraded() {
    let dir = TempDir::new("ckptfail");
    let store = CheckpointStore::open(
        dir.path(),
        3,
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        },
    )
    .expect("dir is creatable");
    // The clone shares the injection counters with the store the
    // runtime owns — chaos can arm failures while the server runs.
    let injector = store.clone();
    let config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime = OnlineRuntime::new(sample_pipeline(7), store, config).expect("valid config");
    let server = Server::start(runtime, quick_config(1)).expect("server starts");
    let handle = server.handle();

    for i in 0..20 {
        handle
            .submit_learn(sample_features(i), i % 2)
            .expect("learn queue has room");
    }
    // Two transient failures: the final checkpoint's 3-attempt budget
    // absorbs them.
    injector.inject_write_failures(2);
    let report = server.drain().expect("drain succeeds");
    assert!(
        report.final_checkpoint_ok,
        "two transient failures fit the retry budget"
    );
    assert_eq!(report.writer.checkpoint_retries, 2);
    assert_eq!(report.writer.checkpoint_failures, 0);
}

/// Quarantined rows survive the full path — writer quarantine → drain
/// report → CSV export → reimport — losslessly.
#[test]
fn dead_letters_round_trip_through_drain_and_csv() {
    let dir = TempDir::new("deadletter");
    let server = Server::start(runtime_in(dir.path()), quick_config(1)).expect("server starts");
    let handle = server.handle();

    let poison = vec![
        (vec![1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0], 0),
        (vec![1.0, 2.0], 1),
        (sample_features(3), 99),
    ];
    for (features, label) in &poison {
        handle
            .submit_learn(features.clone(), *label)
            .expect("learn queue has room");
    }
    for i in 0..10 {
        handle
            .submit_learn(sample_features(i), i % 2)
            .expect("learn queue has room");
    }

    let report = server.drain().expect("drain succeeds");
    assert_eq!(report.writer.quarantined, poison.len() as u64);
    assert_eq!(report.dead_letters.len(), poison.len());

    let mut csv = Vec::new();
    write_dead_letters_csv(&mut csv, &report.dead_letters).expect("in-memory write");
    let text = String::from_utf8(csv).expect("csv is utf-8");
    let reimported = read_dead_letters_csv(&text).expect("export parses");
    assert_eq!(reimported.len(), report.dead_letters.len());
    for (exported, reimported) in report.dead_letters.iter().zip(&reimported) {
        assert_eq!(exported.label, reimported.label);
        assert_eq!(exported.reason, reimported.reason);
        assert_eq!(exported.features.len(), reimported.features.len());
        for (a, b) in exported.features.iter().zip(&reimported.features) {
            if a.is_nan() {
                assert!(b.is_nan(), "NaN survives the round trip");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact features");
            }
        }
    }
}

/// Per-shard stats merged on drain sum exactly: with requests fanned
/// across shards concurrently, the aggregated counters match the
/// client-side ledger.
#[test]
fn shard_stats_aggregate_exactly_under_concurrency() {
    let dir = TempDir::new("stats");
    let server = Server::start(runtime_in(dir.path()), quick_config(3)).expect("server starts");
    let handle = server.handle();

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut answered = 0u64;
                for i in 0..100 {
                    if let Ok(ticket) = handle.submit(sample_features(w * 100 + i), None) {
                        if ticket.wait_timeout(Duration::from_secs(20)).is_ok() {
                            answered += 1;
                        }
                    }
                }
                answered
            })
        })
        .collect();
    let client_answered: u64 = workers
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .sum();

    let report = server.drain().expect("drain succeeds");
    assert_eq!(client_answered, 400, "no deadline → nothing refused");
    assert_eq!(report.workers.answered, 400);
    assert_eq!(report.serve.admitted, 400);

    // The merge operation itself is associative: merging the report
    // into an accumulator twice doubles every counter.
    let mut acc = RuntimeStats::default();
    acc.merge(&report.workers);
    acc.merge(&report.workers);
    assert_eq!(acc.answered, 2 * report.workers.answered);
    assert_eq!(acc.infer_requests, 2 * report.workers.infer_requests);
}

/// Deadline-aware admission sheds hopeless requests once the floor
/// estimate is warm, and every shed is visible in the stats.
#[test]
fn hopeless_deadlines_are_shed_at_admission() {
    let dir = TempDir::new("shed");
    let server = Server::start(runtime_in(dir.path()), quick_config(1)).expect("server starts");
    let handle = server.handle();

    // Warm the ladder estimates.
    for i in 0..50 {
        let _ = handle
            .submit(sample_features(i), None)
            .expect("admitted")
            .wait_timeout(Duration::from_secs(10));
    }
    // A 1 ns budget is hopeless at any tier.
    let mut shed = 0;
    for i in 0..20 {
        match handle.submit(sample_features(i), Some(Duration::from_nanos(1))) {
            Err(SubmitError::DeadlineHopeless { .. }) => shed += 1,
            Ok(ticket) => {
                let _ = ticket.wait_timeout(Duration::from_secs(10));
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(shed > 0, "warm estimates must shed 1 ns budgets");
    assert_eq!(handle.stats().rejected_deadline, shed);
    server.drain().expect("drain succeeds");
}

/// After drain, late submissions are refused and tickets from canceled
/// work resolve to `Canceled`, not a hang.
#[test]
fn drain_refuses_new_work() {
    let dir = TempDir::new("drainrefuse");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let handle = server.handle();
    let answer = handle
        .submit(sample_features(0), None)
        .expect("admitted")
        .wait_timeout(Duration::from_secs(10));
    assert!(answer.is_ok());
    server.drain().expect("drain succeeds");
    assert!(matches!(
        handle.submit(sample_features(1), None),
        Err(SubmitError::ShuttingDown)
    ));
    assert!(matches!(
        handle.submit_learn(sample_features(1), 0),
        Err(SubmitError::ShuttingDown)
    ));
    let _ = ServeError::Canceled; // referenced: the cancel contract above
}

/// Tenant-routed requests score their own mapped models, bit-identically
/// to the heap-packed oracle, while shared-snapshot traffic interleaves
/// on the same shards; unknown tenants are refused at admission with a
/// typed reason.
#[test]
fn tenant_requests_score_their_mapped_models() {
    use generic_hdc::{ModelRegistry, QuantizedModel, RegistryConfig};
    use std::sync::Arc;

    let dir = TempDir::new("tenant");
    let reg_dir = TempDir::new("tenant-reg");
    let registry = Arc::new(
        ModelRegistry::open(
            reg_dir.path(),
            RegistryConfig {
                byte_budget: 1 << 20,
                dim: 256,
                ..RegistryConfig::default()
            },
        )
        .expect("registry opens"),
    );
    // Two tenants with distinct class memories (different training seeds)
    // behind the one shared encoder the server owns.
    let model_a = QuantizedModel::from_model(sample_pipeline(11).model(), 8).expect("valid width");
    let model_b = QuantizedModel::from_model(sample_pipeline(23).model(), 8).expect("valid width");
    registry.publish("acme", &model_a).expect("publish acme");
    registry
        .publish("globex", &model_b)
        .expect("publish globex");

    let server = Server::start_with_registry(
        runtime_in(dir.path()),
        quick_config(2),
        Some(Arc::clone(&registry)),
    )
    .expect("server starts");
    let handle = server.handle();

    assert!(matches!(
        handle.submit_tenant("nobody", sample_features(0), None),
        Err(SubmitError::TenantUnavailable { .. })
    ));
    assert!(matches!(
        handle.submit_tenant("../escape", sample_features(0), None),
        Err(SubmitError::TenantUnavailable { .. })
    ));

    let tickets: Vec<_> = (0..60)
        .map(|i| {
            let tenant = if i % 3 == 0 { "acme" } else { "globex" };
            let ticket = if i % 3 == 2 {
                handle.submit(sample_features(i), None)
            } else {
                handle.submit_tenant(tenant, sample_features(i), None)
            };
            (i, ticket.expect("no overload without deadlines"))
        })
        .collect();
    for (i, ticket) in tickets {
        let answer = ticket.wait().expect("admitted requests are answered");
        if i % 3 == 2 {
            assert!(answer.tenant.is_none(), "request {i} is shared-model");
            continue;
        }
        let (name, oracle_model) = if i % 3 == 0 {
            ("acme", &model_a)
        } else {
            ("globex", &model_b)
        };
        let pinned = answer
            .tenant
            .as_ref()
            .expect("tenant answers carry the pin");
        assert_eq!(pinned.tenant(), name, "request {i} routed wrong");
        assert!(!answer.degraded, "mapped scoring is full-width");
        // Replay through the heap oracle: encode with the server's own
        // snapshot, score the packed model, demand the same label.
        let query = answer
            .snapshot
            .pipeline()
            .encode(&sample_features(i))
            .expect("clean row")
            .to_binary();
        let scores = oracle_model
            .pack()
            .expect("packs")
            .scores(&query)
            .expect("scores");
        let mut oracle = 0usize;
        let mut best = f64::NEG_INFINITY;
        for (c, &s) in scores.iter().enumerate() {
            if s >= best {
                best = s;
                oracle = c;
            }
        }
        assert_eq!(answer.label, oracle, "request {i} diverged from oracle");
        // And the mapped view the worker actually used agrees too.
        let mapped = pinned.view().scores(&query).expect("mapped scores");
        assert_eq!(
            mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "request {i}: mapped scores must be bit-identical"
        );
    }

    let stats = registry.stats();
    assert_eq!(stats.swaps, 2, "both publishes hot-swapped");
    assert!(stats.hits > 0, "published tenants serve from residency");
    server.drain().expect("drain succeeds");
}
