//! Property tests for the serving data path: `MicroBatcher` flush
//! invariants (flush at `batch_max`, at a labeled-row barrier, at end
//! of stream) and bit-identity of batched serving with the unbatched
//! per-row path.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::runtime::{
    CheckpointStore, MicroBatcher, OnlineRuntime, RetryPolicy, RuntimeConfig,
};
use generic_hdc::HdcPipeline;
use proptest::prelude::*;
use proptest::Arbitrary;

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "ghdc-serveprop-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir is creatable");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const N_FEATURES: usize = 5;

/// A deterministic clean feature row derived from one seed.
fn row(seed: u64) -> Vec<f64> {
    (0..N_FEATURES)
        .map(|j| ((seed.wrapping_mul(31).wrapping_add(j as u64 * 7)) % 13) as f64 / 2.0)
        .collect()
}

fn runtime_in(dir: &Path, seed: u64) -> OnlineRuntime {
    let features: Vec<Vec<f64>> = (0..30).map(|i| row(i as u64)).collect();
    let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
    let spec = GenericEncoderSpec::new(256, N_FEATURES).with_seed(seed);
    let pipeline = HdcPipeline::train(spec, &features, &labels, 3, 3).expect("valid inputs");
    let store = CheckpointStore::open(dir, 2, RetryPolicy::default()).expect("dir is creatable");
    let config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    OnlineRuntime::new(pipeline, store, config).expect("valid config")
}

/// One element of a generated serve stream.
#[derive(Debug, Clone)]
enum StreamRow {
    Infer(u64),
    /// A labeled row: a barrier — every queued inference must flush
    /// before it is learned.
    Learn(u64, usize),
}

struct ArbStreamRow;

impl Strategy for ArbStreamRow {
    type Value = StreamRow;

    fn sample(&self, rng: &mut rand::rngs::StdRng) -> StreamRow {
        let seed = u64::arbitrary(rng) % 1000;
        if u32::arbitrary(rng) % 4 == 0 {
            StreamRow::Learn(seed, (seed % 3) as usize)
        } else {
            StreamRow::Infer(seed)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Driving a stream through the `MicroBatcher` exactly as the serve
    /// loop does — flush when `push` says the batch is full, flush
    /// before every labeled row, flush at end of stream — upholds:
    /// 1. the batcher never holds more than `batch_max` rows;
    /// 2. `push` reports full exactly at `batch_max`;
    /// 3. every inference row is answered exactly once, in order;
    /// 4. each answered label is bit-identical to the unbatched
    ///    per-row `infer` of the same model state (labeled rows are
    ///    applied at identical points in both universes).
    #[test]
    fn micro_batcher_flush_invariants(
        seed in 0u64..1_000,
        batch_max in 1usize..9,
        stream in proptest::collection::vec(ArbStreamRow, 1..40),
    ) {
        let dir_a = TempDir::new("batched");
        let dir_b = TempDir::new("unbatched");
        // Two identically trained universes, one batched, one not.
        let mut batched = runtime_in(dir_a.path(), seed);
        let mut unbatched = runtime_in(dir_b.path(), seed);

        let mut batcher = MicroBatcher::new(batch_max);
        prop_assert_eq!(batcher.batch_max(), batch_max);

        let mut batched_labels: Vec<usize> = Vec::new();
        let mut unbatched_labels: Vec<usize> = Vec::new();
        let drain = |batcher: &mut MicroBatcher,
                         batched: &mut OnlineRuntime,
                         out: &mut Vec<usize>|
         -> Result<(), proptest::TestCaseError> {
            let n = batcher.len();
            let results = batcher.flush(batched, None);
            prop_assert_eq!(results.len(), n, "one result per queued row");
            prop_assert!(batcher.is_empty(), "flush clears the queue");
            for result in results {
                let outcome = match result {
                    Ok(outcome) => outcome,
                    Err(e) => return Err(proptest::TestCaseError::Fail(
                        format!("clean row rejected: {e}"),
                    )),
                };
                out.push(outcome.label);
            }
            Ok(())
        };

        for item in &stream {
            match item {
                StreamRow::Infer(s) => {
                    let full = batcher.push(row(*s));
                    prop_assert!(batcher.len() <= batch_max, "never exceeds batch_max");
                    prop_assert_eq!(full, batcher.len() == batch_max,
                        "`push` reports full exactly at batch_max");
                    if full {
                        drain(&mut batcher, &mut batched, &mut batched_labels)?;
                    }
                    // The unbatched universe answers immediately.
                    let outcome = unbatched.infer(&row(*s), None).map_err(|e| {
                        proptest::TestCaseError::Fail(format!("unbatched rejected: {e}"))
                    })?;
                    unbatched_labels.push(outcome.label);
                }
                StreamRow::Learn(s, label) => {
                    // Barrier: queued inferences must not observe the
                    // updated model.
                    drain(&mut batcher, &mut batched, &mut batched_labels)?;
                    let _ = batched.learn(&row(*s), *label);
                    let _ = unbatched.learn(&row(*s), *label);
                }
            }
        }
        // End of stream: flush the tail.
        drain(&mut batcher, &mut batched, &mut batched_labels)?;
        prop_assert!(batcher.is_empty());

        prop_assert_eq!(
            batched_labels,
            unbatched_labels,
            "batched serving must be bit-identical to per-row serving"
        );
    }

    /// An empty flush is a no-op: no results, no stats movement.
    #[test]
    fn empty_flush_is_a_no_op(seed in 0u64..100) {
        let dir = TempDir::new("noop");
        let mut runtime = runtime_in(dir.path(), seed);
        let mut batcher = MicroBatcher::new(4);
        let before = *runtime.stats();
        let results = batcher.flush(&mut runtime, None);
        prop_assert!(results.is_empty());
        prop_assert_eq!(*runtime.stats(), before);
    }
}
