//! Steady-state allocation regression test for the batched scoring engine.
//!
//! Installs a counting global allocator and asserts that, once the
//! [`ScoreBatch`] scratch arena and the caller-owned output buffers have
//! been warmed by one full pass, repeated batched scoring and prediction
//! perform **zero** heap allocations. This pins the zero-allocation
//! contract of the serve hot path: any accidental per-call `Vec` or
//! boxed temporary on the tile loop shows up here as a test failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use generic_hdc::io::write_packed;
use generic_hdc::{
    HdcModel, IntHv, Mapping, NormMode, PackedModelView, PredictOptions, QuantizedModel, ScoreBatch,
};

/// Forwards to the system allocator while counting every allocation
/// event (fresh allocations and reallocations; frees are not counted
/// because a steady-state loop that frees must first have allocated).
struct CountingAlloc;

static ALLOCATION_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator with the
        // caller's layout; the GlobalAlloc contract is inherited.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System.alloc`/`System.realloc`
        // with this same layout, as required by the GlobalAlloc contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr`/`layout` obey the contract
        // the caller already guarantees to GlobalAlloc.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_hv(dim: usize, state: &mut u64) -> IntHv {
    let values: Vec<i32> = (0..dim)
        .map(|_| (splitmix64(state) % 7) as i32 - 3)
        .collect();
    IntHv::from_values(values).expect("non-empty hypervector")
}

#[test]
fn batched_scoring_steady_state_allocates_nothing() {
    let dim = 1_024;
    let n_classes = 6;
    let n_queries = 37; // deliberately not a tile multiple
    let mut state = 0xfeed_5eed_u64;

    let encoded: Vec<IntHv> = (0..n_classes * 8)
        .map(|_| random_hv(dim, &mut state))
        .collect();
    let labels: Vec<usize> = (0..encoded.len()).map(|i| i % n_classes).collect();
    let model = HdcModel::fit(&encoded, &labels, n_classes).expect("fit");

    let queries: Vec<IntHv> = (0..n_queries).map(|_| random_hv(dim, &mut state)).collect();
    let variants = [
        PredictOptions::full(dim),
        PredictOptions::reduced(dim / 2, NormMode::Updated),
    ];

    let mut batch = ScoreBatch::new();
    let mut scores = Vec::new();
    let mut preds = Vec::new();

    // Warm-up pass: sizes the tile scratch arena inside `batch` and the
    // caller-owned output buffers to their steady-state capacities.
    for opts in variants {
        batch.scores_into(&model, &queries, opts, &mut scores);
        batch.predict_into(&model, &queries, opts, &mut preds);
    }

    let before = ALLOCATION_EVENTS.load(Ordering::SeqCst);
    for _ in 0..16 {
        for opts in variants {
            batch.scores_into(&model, &queries, opts, &mut scores);
            batch.predict_into(&model, &queries, opts, &mut preds);
        }
    }
    let after = ALLOCATION_EVENTS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state batched scoring must not touch the heap"
    );
    assert_eq!(scores.len(), n_queries * n_classes);
    assert_eq!(preds.len(), n_queries);
}

#[test]
fn mapped_view_scoring_steady_state_allocates_nothing() {
    let dim = 1_024;
    let n_classes = 6;
    let mut state = 0x5eed_feed_u64;

    let encoded: Vec<IntHv> = (0..n_classes * 8)
        .map(|_| random_hv(dim, &mut state))
        .collect();
    let labels: Vec<usize> = (0..encoded.len()).map(|i| i % n_classes).collect();
    let model = HdcModel::fit(&encoded, &labels, n_classes).expect("fit");
    let quantized = QuantizedModel::from_model(&model, 8).expect("quantize");
    let mut bytes = Vec::new();
    write_packed(&quantized, &mut bytes).expect("vec write cannot fail");
    let mapping = Mapping::from_bytes(&bytes).expect("aligned copy allocates");
    let view = PackedModelView::new(&mapping).expect("sealed v3 image");

    let queries: Vec<_> = (0..37)
        .map(|_| random_hv(dim, &mut state).to_binary())
        .collect();
    let mut scores = Vec::new();

    // Warm-up pass: sizes the caller-owned score buffer. The view itself
    // owns nothing — scoring walks the mapped words in place.
    for query in &queries {
        view.scores_into(query, &mut scores).expect("dim matches");
    }

    let before = ALLOCATION_EVENTS.load(Ordering::SeqCst);
    for _ in 0..16 {
        for query in &queries {
            view.scores_into(query, &mut scores).expect("dim matches");
        }
    }
    let after = ALLOCATION_EVENTS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state mapped-view scoring must not touch the heap"
    );
    assert_eq!(scores.len(), n_classes);
}
