//! Deterministic loopback integration tests for the framed TCP
//! front-end over the work-stealing sharded server: steal accounting,
//! slow-client isolation, graceful drain (final GOODBYE frame), and
//! malformed-frame connection drops that leave the shards healthy.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::net::{read_frame, write_frame, NetConfig, NetFrontend};
use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
use generic_hdc::serve::{ServeConfig, Server};
use generic_hdc::{Frame, HdcPipeline, NetStatus};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "ghdc-net-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir is creatable");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const N_FEATURES: usize = 6;

fn sample_features(i: usize) -> Vec<f64> {
    (0..N_FEATURES).map(|j| ((i * 3 + j) % 7) as f64).collect()
}

fn sample_pipeline(seed: u64) -> HdcPipeline {
    let features: Vec<Vec<f64>> = (0..24).map(sample_features).collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let spec = GenericEncoderSpec::new(256, N_FEATURES).with_seed(seed);
    HdcPipeline::train(spec, &features, &labels, 2, 3).expect("valid inputs")
}

fn runtime_in(dir: &Path) -> OnlineRuntime {
    let store = CheckpointStore::open(dir, 3, RetryPolicy::default()).expect("dir is creatable");
    let config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    OnlineRuntime::new(sample_pipeline(7), store, config).expect("valid config")
}

fn quick_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        batch_max: 4,
        restart_backoff: Duration::from_millis(1),
        restart_backoff_max: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

fn connect(frontend: &NetFrontend) -> TcpStream {
    let conn = TcpStream::connect(frontend.local_addr()).expect("front-end accepts");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout is settable");
    conn
}

/// A stalled shard's queue is drained by its sibling, and the steals
/// surface in the merged [`generic_hdc::runtime::RuntimeStats`] of the
/// drain report.
#[test]
fn stalled_shard_queue_is_stolen_by_sibling() {
    let dir = TempDir::new("steal");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let handle = server.handle();

    // Shard 0 sleeps before its next pop: anything in its queue beyond
    // the (at most) one batch it already holds must be served by shard 1
    // stealing across.
    handle.chaos_stall_shard(0, Duration::from_millis(1500));
    let tickets: Vec<_> = (0..64)
        .map(|i| handle.submit(sample_features(i), None).expect("admitted"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("admitted requests are answered");
    }

    let report = server.drain().expect("drain succeeds");
    assert_eq!(report.workers.answered, 64);
    assert!(
        report.workers.steals > 0,
        "sibling shard should have stolen from the stalled queue: {:?}",
        report.workers
    );
    assert_eq!(report.serve.shard_panics, 0);
}

/// A client that submits a pipeline of requests but never reads its
/// responses does not stall other connections: per-connection writer
/// threads are independent, so a prompt client gets every answer while
/// the slow one idles.
#[test]
fn slow_client_does_not_stall_other_connections() {
    let dir = TempDir::new("slow");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let frontend = NetFrontend::bind("127.0.0.1:0", server.handle(), NetConfig::default())
        .expect("loopback binds");

    // The slow client floods requests and never reads a byte back.
    let mut slow = connect(&frontend);
    for i in 0..32u64 {
        write_frame(
            &mut slow,
            &Frame::Infer {
                request_id: i,
                deadline_us: 0,
                tenant: None,
                features: sample_features(i as usize),
            },
        )
        .expect("request writes");
    }

    // The prompt client gets all of its answers, in order, while the
    // slow client's responses sit unread.
    let mut prompt = connect(&frontend);
    for i in 100..108u64 {
        write_frame(
            &mut prompt,
            &Frame::Infer {
                request_id: i,
                deadline_us: 0,
                tenant: None,
                features: sample_features(i as usize),
            },
        )
        .expect("request writes");
    }
    for i in 100..108u64 {
        match read_frame(&mut prompt).expect("answer arrives") {
            Some(Frame::Answer { request_id, .. }) => assert_eq!(request_id, i),
            other => panic!("expected Answer {i}, got {other:?}"),
        }
    }

    drop(prompt);
    drop(slow);
    let stats = frontend.shutdown();
    assert_eq!(stats.connections, 2);
    server.drain().expect("drain succeeds");
}

/// Graceful shutdown closes every connection with a final GOODBYE
/// status frame, then EOF — a client can distinguish drain from a
/// connection fault.
#[test]
fn graceful_shutdown_says_goodbye_before_eof() {
    let dir = TempDir::new("goodbye");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let frontend = NetFrontend::bind("127.0.0.1:0", server.handle(), NetConfig::default())
        .expect("loopback binds");

    let mut conn = connect(&frontend);
    // One answered request proves the connection was live first.
    write_frame(
        &mut conn,
        &Frame::Infer {
            request_id: 1,
            deadline_us: 0,
            tenant: None,
            features: sample_features(1),
        },
    )
    .expect("request writes");
    assert!(matches!(
        read_frame(&mut conn).expect("answer arrives"),
        Some(Frame::Answer { request_id: 1, .. })
    ));

    let shutdown = std::thread::spawn(move || frontend.shutdown());
    match read_frame(&mut conn).expect("goodbye arrives") {
        Some(Frame::Goodbye) => {}
        other => panic!("expected Goodbye, got {other:?}"),
    }
    assert!(
        matches!(read_frame(&mut conn), Ok(None)),
        "clean EOF after GOODBYE"
    );
    let stats = shutdown.join().expect("shutdown joins");
    assert_eq!(stats.answered, 1);
    server.drain().expect("drain succeeds");
}

/// A connection sending a corrupt frame is refused (Malformed) and
/// dropped — without poisoning the shards: a fresh connection is still
/// answered and the drain report shows no supervision events.
#[test]
fn malformed_frame_drops_the_connection_not_the_shard() {
    let dir = TempDir::new("malformed");
    let server = Server::start(runtime_in(dir.path()), quick_config(2)).expect("server starts");
    let frontend = NetFrontend::bind("127.0.0.1:0", server.handle(), NetConfig::default())
        .expect("loopback binds");

    // CRC-tamper a valid frame: flip a bit in the trailer.
    let mut bytes = Frame::Ping { request_id: 9 }.encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    let mut bad = connect(&frontend);
    bad.write_all(&bytes).expect("bytes write");
    match read_frame(&mut bad).expect("refusal arrives") {
        Some(Frame::Refusal { status, .. }) => assert_eq!(status, NetStatus::Malformed),
        other => panic!("expected Refusal, got {other:?}"),
    }
    let mut rest = Vec::new();
    let eof = bad.read_to_end(&mut rest);
    assert!(
        eof.is_ok() && rest.is_empty(),
        "malformed connection should be dropped"
    );

    // The shards are untouched: a fresh connection gets a real answer.
    let mut good = connect(&frontend);
    write_frame(
        &mut good,
        &Frame::Infer {
            request_id: 10,
            deadline_us: 0,
            tenant: None,
            features: sample_features(3),
        },
    )
    .expect("request writes");
    assert!(matches!(
        read_frame(&mut good).expect("answer arrives"),
        Some(Frame::Answer { request_id: 10, .. })
    ));

    drop(good);
    let stats = frontend.shutdown();
    assert_eq!(stats.malformed, 1);
    assert_eq!(stats.answered, 1);
    let report = server.drain().expect("drain succeeds");
    assert_eq!(report.serve.shard_panics, 0);
    assert_eq!(report.serve.circuit_opens, 0);
}
