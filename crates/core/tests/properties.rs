//! Property-based tests for the core hypervector data structures and the
//! algebraic invariants the GENERIC encoding relies on.

use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::{
    BinaryHv, BitSliceAccumulator, HdcModel, IntHv, LevelMemory, NormMode, PackedInts,
    PredictOptions, QuantizedModel, Quantizer,
};
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(64usize),
        Just(128),
        Just(192),
        Just(70),
        Just(100),
        Just(256)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XOR binding is an involution: (a ⊕ b) ⊕ b = a.
    #[test]
    fn xor_involution(dim in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = BinaryHv::random_seeded(dim, s1).unwrap();
        let b = BinaryHv::random_seeded(dim, s2).unwrap();
        prop_assert_eq!(a.xor(&b).unwrap().xor(&b).unwrap(), a);
    }

    /// XOR is commutative.
    #[test]
    fn xor_commutative(dim in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = BinaryHv::random_seeded(dim, s1).unwrap();
        let b = BinaryHv::random_seeded(dim, s2).unwrap();
        prop_assert_eq!(a.xor(&b).unwrap(), b.xor(&a).unwrap());
    }

    /// Hamming distance is a metric: symmetric and satisfies the triangle
    /// inequality.
    #[test]
    fn hamming_is_a_metric(dim in arb_dim(), s in any::<[u64; 3]>()) {
        let a = BinaryHv::random_seeded(dim, s[0]).unwrap();
        let b = BinaryHv::random_seeded(dim, s[1]).unwrap();
        let c = BinaryHv::random_seeded(dim, s[2]).unwrap();
        let ab = a.hamming(&b).unwrap();
        let ba = b.hamming(&a).unwrap();
        let bc = b.hamming(&c).unwrap();
        let ac = a.hamming(&c).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert!(ac <= ab + bc);
        prop_assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    /// XOR with a common vector preserves Hamming distance (binding is an
    /// isometry — why id binding does not destroy similarity structure).
    #[test]
    fn binding_preserves_distance(dim in arb_dim(), s in any::<[u64; 3]>()) {
        let a = BinaryHv::random_seeded(dim, s[0]).unwrap();
        let b = BinaryHv::random_seeded(dim, s[1]).unwrap();
        let key = BinaryHv::random_seeded(dim, s[2]).unwrap();
        let d0 = a.hamming(&b).unwrap();
        let d1 = a.xor(&key).unwrap().hamming(&b.xor(&key).unwrap()).unwrap();
        prop_assert_eq!(d0, d1);
    }

    /// Rotation composes additively and preserves population count.
    #[test]
    fn rotation_composes(dim in arb_dim(), seed in any::<u64>(), j in 0usize..200, k in 0usize..200) {
        let a = BinaryHv::random_seeded(dim, seed).unwrap();
        let lhs = a.rotated(j).rotated(k);
        let rhs = a.rotated((j + k) % dim);
        prop_assert_eq!(&lhs, &rhs);
        prop_assert_eq!(lhs.count_ones(), a.count_ones());
    }

    /// Rotation distributes over XOR: ρ(a ⊕ b) = ρ(a) ⊕ ρ(b) — the identity
    /// that lets the accelerator rotate ids instead of window products.
    #[test]
    fn rotation_distributes_over_xor(dim in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>(), k in 0usize..300) {
        let a = BinaryHv::random_seeded(dim, s1).unwrap();
        let b = BinaryHv::random_seeded(dim, s2).unwrap();
        let lhs = a.xor(&b).unwrap().rotated(k);
        let rhs = a.rotated(k).xor(&b.rotated(k)).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// dim - 2·hamming equals the bipolar dot product computed naively.
    #[test]
    fn dot_binary_identity(dim in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = BinaryHv::random_seeded(dim, s1).unwrap();
        let b = BinaryHv::random_seeded(dim, s2).unwrap();
        let naive: i64 = a
            .to_bipolar()
            .iter()
            .zip(b.to_bipolar())
            .map(|(&x, y)| i64::from(x) * i64::from(y))
            .sum();
        prop_assert_eq!(a.dot_binary(&b).unwrap(), naive);
    }

    /// Bundling then binarizing an odd number of copies of one vector
    /// recovers the vector (majority rule).
    #[test]
    fn majority_recovers_dominant(dim in arb_dim(), seed in any::<u64>(), copies in 1usize..6) {
        let a = BinaryHv::random_seeded(dim, seed).unwrap();
        let mut acc = IntHv::zeros(dim).unwrap();
        for _ in 0..(2 * copies - 1) {
            acc.bundle_binary(&a).unwrap();
        }
        prop_assert_eq!(acc.to_binary(), a);
    }

    /// Quantizer bins are always in range and monotone in the value.
    #[test]
    fn quantizer_bins_in_range(
        lo in -100.0f64..0.0,
        span in 0.1f64..100.0,
        levels in 2usize..64,
        v1 in -200.0f64..200.0,
        v2 in -200.0f64..200.0,
    ) {
        let q = Quantizer::fit(&[vec![lo], vec![lo + span]], levels).unwrap();
        let b1 = q.bin(0, v1);
        let b2 = q.bin(0, v2);
        prop_assert!(b1 < levels && b2 < levels);
        if v1 <= v2 {
            prop_assert!(b1 <= b2);
        }
    }

    /// Level-memory Hamming distance is exactly linear in bin distance.
    #[test]
    fn level_distance_linear(levels in 2usize..17, i in 0usize..16, j in 0usize..16) {
        let i = i % levels;
        let j = j % levels;
        let lm = LevelMemory::new(1024, levels, 42).unwrap();
        let step = 1024 / (2 * (levels - 1));
        let d = lm.level(i).hamming(lm.level(j)).unwrap();
        prop_assert_eq!(d, step * i.abs_diff(j));
    }

    /// Encoding is deterministic and its components are bounded by the
    /// window count.
    #[test]
    fn encode_bounded_and_deterministic(seed in any::<u64>(), rows in 4usize..12) {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|r| (0..8).map(|c| ((r * 3 + c * 5) % 7) as f64).collect())
            .collect();
        let spec = GenericEncoderSpec::new(256, 8).with_seed(seed);
        let enc = GenericEncoder::from_data(spec, &data).unwrap();
        let h1 = enc.encode(&data[0]).unwrap();
        let h2 = enc.encode(&data[0]).unwrap();
        prop_assert_eq!(&h1, &h2);
        let windows = 8 - 3 + 1;
        prop_assert!(h1.values().iter().all(|v| (v.unsigned_abs() as usize) <= windows));
        // Parity: each component is a sum of `windows` ±1 terms.
        prop_assert!(h1.values().iter().all(|v| (v.rem_euclid(2)) as usize == windows % 2));
    }

    /// A model trained on a single sample per class predicts those samples.
    #[test]
    fn one_shot_model_memorizes(seeds in any::<[u64; 3]>()) {
        let encoded: Vec<IntHv> = seeds
            .iter()
            .map(|&s| IntHv::from(BinaryHv::random_seeded(512, s).unwrap()))
            .collect();
        // Seeds may collide; skip the degenerate case.
        prop_assume!(encoded[0] != encoded[1] && encoded[1] != encoded[2] && encoded[0] != encoded[2]);
        let labels = vec![0usize, 1, 2];
        let model = HdcModel::fit(&encoded, &labels, 3).unwrap();
        for (hv, &label) in encoded.iter().zip(&labels) {
            prop_assert_eq!(model.predict(hv), label);
        }
    }

    /// 16-bit quantization with per-class scaling never changes the
    /// ranking of a strongly separated query.
    #[test]
    fn wide_quantization_is_faithful(seeds in any::<[u64; 2]>()) {
        prop_assume!(seeds[0] != seeds[1]);
        let encoded: Vec<IntHv> = seeds
            .iter()
            .map(|&s| IntHv::from(BinaryHv::random_seeded(512, s).unwrap()))
            .collect();
        let labels = vec![0usize, 1];
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let quantized = QuantizedModel::from_model(&model, 16).unwrap();
        for (hv, &label) in encoded.iter().zip(&labels) {
            prop_assert_eq!(quantized.predict(hv), label);
        }
    }

    /// Bit-sliced (carry-save) bundling is bit-identical to scalar
    /// per-dimension accumulation for any dimensionality (including
    /// non-multiples of 64) and any bundle size.
    #[test]
    fn bit_sliced_bundling_matches_scalar(
        dim in arb_dim(),
        seeds in proptest::collection::vec(any::<u64>(), 1..=24),
    ) {
        let mut fast = BitSliceAccumulator::new(dim).unwrap();
        let mut scalar = IntHv::zeros(dim).unwrap();
        for &s in &seeds {
            let hv = BinaryHv::random_seeded(dim, s).unwrap();
            fast.add(&hv).unwrap();
            scalar.bundle_binary(&hv).unwrap();
        }
        prop_assert_eq!(fast.count(), seeds.len());
        prop_assert_eq!(fast.to_int_hv(), scalar);
    }

    /// The fused bind-then-bundle (`add_xor`) equals materializing the
    /// XOR first — and a cleared accumulator behaves like a fresh one.
    #[test]
    fn fused_xor_bundling_matches_bind_then_bundle(
        dim in arb_dim(),
        windows in proptest::collection::vec(any::<[u64; 3]>(), 1..=12),
    ) {
        let mut fast = BitSliceAccumulator::new(dim).unwrap();
        fast.add(&BinaryHv::random_seeded(dim, 999).unwrap()).unwrap();
        fast.clear();
        let mut scalar = IntHv::zeros(dim).unwrap();
        for s in &windows {
            let a = BinaryHv::random_seeded(dim, s[0]).unwrap();
            let b = BinaryHv::random_seeded(dim, s[1]).unwrap();
            let c = BinaryHv::random_seeded(dim, s[2]).unwrap();
            fast.add_xor(&[&a, &b, &c]).unwrap();
            let bound = a.xor(&b).unwrap().xor(&c).unwrap();
            scalar.bundle_binary(&bound).unwrap();
        }
        prop_assert_eq!(fast.to_int_hv(), scalar);
    }

    /// The bit-sliced GENERIC encoder is bit-identical to the retained
    /// scalar reference for every window size and id-binding mode.
    #[test]
    fn encoder_kernels_bit_identical(
        dim in arb_dim(),
        seed in any::<u64>(),
        window in 1usize..=5,
        id_binding in any::<bool>(),
    ) {
        let data: Vec<Vec<f64>> = (0..10)
            .map(|r| (0..8).map(|c| ((r * 3 + c * 5) % 7) as f64).collect())
            .collect();
        let spec = GenericEncoderSpec::new(dim, 8)
            .with_levels(8) // small dims cannot host the default 64 levels
            .with_window(window)
            .with_id_binding(id_binding)
            .with_seed(seed);
        let enc = GenericEncoder::from_data(spec, &data).unwrap();
        for row in data.iter().take(3) {
            let bins = enc.quantizer().bins(row).unwrap();
            prop_assert_eq!(
                enc.encode_bins(&bins).unwrap(),
                enc.encode_bins_scalar(&bins).unwrap()
            );
        }
    }

    /// The packed sign/magnitude dot product equals the scalar reference
    /// for every quantization width 1..=16 (values spanning the full
    /// signed range of the width, including non-multiple-of-64 dims).
    #[test]
    fn packed_dot_matches_scalar(
        dim in arb_dim(),
        seed in any::<u64>(),
        bw in 1u32..=16,
    ) {
        let query = BinaryHv::random_seeded(dim, seed).unwrap();
        let hi = (1i64 << (bw - 1)) - 1;
        let hi = if bw == 1 { 1 } else { hi };
        let span = 2 * hi + 1;
        let values: Vec<i32> = (0..dim as i64)
            .map(|i| ((i.wrapping_mul(2_654_435_761) + seed as i64 % 1_000_003).rem_euclid(span) - hi) as i32)
            .collect();
        let packed = PackedInts::from_values(&values).unwrap();
        prop_assert_eq!(packed.dim(), dim);
        prop_assert_eq!(
            query.dot_packed(&packed).unwrap(),
            query.dot_int(&values).unwrap()
        );
    }

    /// Blocked class scoring (cache-blocked, sub-norm-chunk reuse) is
    /// bit-identical to the scalar reference in both norm modes and at
    /// reduced dimensions.
    #[test]
    fn blocked_scores_match_scalar(
        dim in arb_dim(),
        seeds in any::<[u64; 4]>(),
        dims_raw in 1usize..=256,
    ) {
        let encoded: Vec<IntHv> = seeds[..3]
            .iter()
            .map(|&s| IntHv::from(BinaryHv::random_seeded(dim, s).unwrap()))
            .collect();
        let model = HdcModel::fit(&encoded, &[0, 1, 2], 3).unwrap();
        let query = IntHv::from(BinaryHv::random_seeded(dim, seeds[3]).unwrap());
        let dims = dims_raw.min(dim);
        for mode in [NormMode::Updated, NormMode::Constant] {
            let opts = PredictOptions::reduced(dims, mode);
            prop_assert_eq!(
                model.scores_with(&query, opts),
                model.scores_scalar(&query, opts)
            );
        }
    }

    /// Fault injection at BER=0 is the identity; BER=1 flips every bit.
    #[test]
    fn fault_injection_extremes(seed in any::<u64>()) {
        let encoded = vec![
            IntHv::from(BinaryHv::random_seeded(256, seed).unwrap()),
            IntHv::from(BinaryHv::random_seeded(256, seed.wrapping_add(1)).unwrap()),
        ];
        let model = HdcModel::fit(&encoded, &[0, 1], 2).unwrap();
        let clean = QuantizedModel::from_model(&model, 4).unwrap();
        let mut zero = clean.clone();
        zero.inject_bit_flips(0.0, seed).unwrap();
        prop_assert_eq!(&zero, &clean);
        let mut full = clean.clone();
        let flipped = full.inject_bit_flips(1.0, seed).unwrap();
        prop_assert_eq!(flipped, full.storage_bits());
    }
}
