//! Robustness of the GHDC v3 mapped path: truncated, oversized,
//! misaligned, and bit-flipped byte images must be rejected with typed
//! errors **before any view is constructed** — there is no input that
//! reaches the byte→word reinterpretation without passing the full
//! validation gauntlet (magic/version/kind, header plausibility, exact
//! length, base alignment, CRC32 footer). Mirrors `io_robustness` for
//! the zero-copy surface.

use generic_hdc::io::{write_packed, PackedLayout, ReadModelError, PACKED_ALIGN};
use generic_hdc::{BinaryHv, HdcModel, IntHv, Mapping, PackedModelView, QuantizedModel};
use proptest::prelude::*;

fn sample_packed(bit_width: u8) -> Vec<u8> {
    let encoded: Vec<IntHv> = (0..3u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(256, s).expect("dim > 0")))
        .collect();
    let model = HdcModel::fit(&encoded, &[0, 1, 2], 3).expect("valid inputs");
    let quantized = QuantizedModel::from_model(&model, bit_width).expect("valid width");
    let mut buf = Vec::new();
    write_packed(&quantized, &mut buf).expect("vec write cannot fail");
    buf
}

/// Validation runs on the raw slice; a failure must happen before
/// `PackedModelView` exists. This helper asserts both layers agree.
fn rejects(bytes: &[u8]) -> ReadModelError {
    let layout_err = PackedLayout::validate(bytes).expect_err("layout must reject");
    let view_err = PackedModelView::new(bytes).expect_err("view must reject");
    assert_eq!(
        std::mem::discriminant(&layout_err),
        std::mem::discriminant(&view_err),
        "layout and view must reject identically: {layout_err} vs {view_err}"
    );
    layout_err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes never panic the v3 parser, the validator, or the
    /// view constructor.
    #[test]
    fn arbitrary_bytes_do_not_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = PackedLayout::parse(&bytes);
        let _ = PackedLayout::validate(&bytes);
        let _ = PackedModelView::new(&bytes);
        let _ = generic_hdc::io::read_packed(bytes.as_slice());
    }

    /// Truncating a sealed v3 image anywhere is a typed error — never a
    /// view over a short mapping (the UB path a mapped file shrinking
    /// out from under a reader would take).
    #[test]
    fn truncation_is_rejected_before_view_construction(
        bw_index in 0usize..5,
        cut_seed in any::<u64>(),
    ) {
        let buf = sample_packed([1u8, 2, 4, 8, 16][bw_index]);
        let cut = (cut_seed % buf.len() as u64) as usize;
        let err = rejects(&buf[..cut]);
        prop_assert!(
            matches!(
                err,
                ReadModelError::Truncated { .. } | ReadModelError::Io(_)
            ),
            "cut {}: {}", cut, err
        );
    }

    /// Growing the image is just as fatal: a mapped model's length must
    /// equal the header-computed layout exactly.
    #[test]
    fn oversized_images_are_rejected(extra in 1usize..64) {
        let mut buf = sample_packed(4);
        let grown = buf.len() + extra;
        buf.resize(grown, 0);
        let err = rejects(&buf);
        prop_assert!(
            matches!(err, ReadModelError::Truncated { .. }),
            "extra {}: {}", extra, err
        );
    }

    /// Any flipped bit past the magic/version/kind prefix fails the
    /// CRC (or a header check) — no silent corruption reaches scoring.
    #[test]
    fn flipped_bit_is_rejected(pos_seed in any::<u64>(), bit in 0u32..8) {
        let mut buf = sample_packed(8);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= 1 << bit;
        let _ = rejects(&buf);
    }

    /// A misaligned base address is a typed error even for otherwise
    /// perfect bytes: the view refuses to reinterpret unaligned memory.
    #[test]
    fn misaligned_buffers_are_rejected(offset in 1usize..PACKED_ALIGN) {
        let buf = sample_packed(2);
        // Build a copy whose base is deliberately `offset` bytes past a
        // 64-byte boundary.
        let mut backing = vec![0u8; buf.len() + PACKED_ALIGN * 2];
        let base = backing.as_ptr() as usize;
        let shift = (PACKED_ALIGN - base % PACKED_ALIGN) % PACKED_ALIGN + offset;
        backing[shift..shift + buf.len()].copy_from_slice(&buf);
        let slice = &backing[shift..shift + buf.len()];
        prop_assume!(!(slice.as_ptr() as usize).is_multiple_of(PACKED_ALIGN));
        // The layout (pure arithmetic) accepts; the view (which would
        // reinterpret) must refuse with the typed alignment error.
        prop_assert!(PackedLayout::validate(slice).is_ok());
        let err = PackedModelView::new(slice).expect_err("misaligned base must be refused");
        prop_assert!(
            matches!(err, ReadModelError::Misaligned { required: 64, .. }),
            "offset {}: {}", offset, err
        );
    }
}

#[test]
fn untouched_images_validate_and_serve() {
    // Guards against the fuzz helpers drifting out of sync with the
    // format: the untouched image must construct a working view.
    for bw in [1u8, 2, 4, 8, 16] {
        let buf = sample_packed(bw);
        let mapping = Mapping::from_bytes(&buf).expect("aligned copy allocates");
        let view = PackedModelView::new(&mapping).expect("sealed image serves");
        let query = BinaryHv::random_seeded(256, 9).expect("dim > 0");
        let scores = view.scores(&query).expect("dim matches");
        assert_eq!(scores.len(), 3, "bw {bw}");
        assert!(scores.iter().all(|s| s.is_finite()), "bw {bw}");
    }
}
