//! Robustness of the generational tenant ledger: the manifest parser
//! must reject torn, garbled, and bit-flipped commit records with typed
//! errors on *any* input, and the recovery scan must never elect a
//! CRC-invalid image as a tenant's live generation while a valid older
//! one exists. Mirrors `mapped_robustness` for the ledger surface.

use std::collections::BTreeSet;

use generic_hdc::io::write_packed;
use generic_hdc::ledger::MANIFEST_NAME;
use generic_hdc::{BinaryHv, HdcModel, IntHv, Ledger, Manifest, ManifestError, QuantizedModel};
use proptest::prelude::*;

/// Bitwise IEEE CRC32 — deliberately re-implemented here (rather than
/// reusing the crate's table-driven one) so a table-generation bug
/// cannot hide from its own tests.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (crc & 1).wrapping_neg());
        }
    }
    !crc
}

/// Seals a hand-written manifest body with a correct CRC footer, so the
/// parser's structural checks are reached (a wrong CRC would mask them).
fn seal(body: &str) -> Vec<u8> {
    let mut bytes = body.as_bytes().to_vec();
    let crc = crc32(body.as_bytes());
    bytes.extend_from_slice(format!("crc {crc:08x}\n").as_bytes());
    bytes
}

fn sample_image() -> Vec<u8> {
    let encoded: Vec<IntHv> = (0..3u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(256, s + 11).expect("dim > 0")))
        .collect();
    let model = HdcModel::fit(&encoded, &[0, 1, 2], 3).expect("valid inputs");
    let quantized = QuantizedModel::from_model(&model, 8).expect("valid width");
    let mut buf = Vec::new();
    write_packed(&quantized, &mut buf).expect("vec write cannot fail");
    buf
}

#[allow(clippy::field_reassign_with_default)]
fn manifest_with(epoch: u64) -> Manifest {
    let mut manifest = Manifest::default();
    manifest.epoch = epoch;
    manifest
}

fn scratch(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ghdc-ledger-robust-{tag}-{}", std::process::id()))
}

#[test]
fn forged_structural_corruption_gets_its_own_typed_error() {
    // Duplicate generation within one tenant line.
    let bytes = seal("GHDCLEDGER 1\nepoch 3\ntenant acme live 1 retained 1,1\n");
    assert_eq!(
        Manifest::parse(&bytes),
        Err(ManifestError::DuplicateGeneration {
            tenant: "acme".into(),
            generation: 1,
        })
    );

    // The same tenant listed twice.
    let bytes = seal(
        "GHDCLEDGER 1\nepoch 3\ntenant acme live 1 retained 1\ntenant acme live 2 retained 2\n",
    );
    assert_eq!(
        Manifest::parse(&bytes),
        Err(ManifestError::DuplicateTenant("acme".into()))
    );

    // A live generation outside the retained set.
    let bytes = seal("GHDCLEDGER 1\nepoch 3\ntenant acme live 5 retained 1,2\n");
    assert_eq!(
        Manifest::parse(&bytes),
        Err(ManifestError::LiveNotRetained {
            tenant: "acme".into(),
            live: 5,
        })
    );

    // A wrong header is not silently tolerated even with a valid CRC.
    let bytes = seal("GHDCLEDGER 2\nepoch 0\n");
    assert!(matches!(
        Manifest::parse(&bytes),
        Err(ManifestError::UnsupportedHeader(_))
    ));

    // Grammar violations name the offending line.
    let bytes = seal("GHDCLEDGER 1\nepoch 0\ntenant acme lives forever\n");
    assert!(matches!(
        Manifest::parse(&bytes),
        Err(ManifestError::Garbage { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes never panic the parser; anything it does accept
    /// re-serializes to a canonical form it parses identically.
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        if let Ok(manifest) = Manifest::parse(&bytes) {
            let canonical = manifest.serialize();
            prop_assert_eq!(Manifest::parse(&canonical), Ok(manifest));
        }
    }

    /// Every canonically built manifest round-trips bit-exactly through
    /// serialize → parse.
    #[test]
    fn canonical_manifests_round_trip(
        epoch in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 0..4),
    ) {
        let mut manifest = manifest_with(epoch);
        let mut expected: std::collections::BTreeMap<String, (u64, BTreeSet<u64>)> =
            std::collections::BTreeMap::new();
        for seed in &seeds {
            let name = format!("tenant-{}", seed % 17);
            let live = (seed >> 8) % 40;
            let retained: BTreeSet<u64> =
                (0..seed % 4).map(|i| (seed >> (16 + i)) % 40).collect();
            manifest.set_tenant(name.clone(), live, retained.iter().copied());
            let mut set = retained.clone();
            set.insert(live);
            expected.insert(name, (live, set));
        }
        let parsed = Manifest::parse(&manifest.serialize()).expect("canonical form parses");
        prop_assert_eq!(&parsed, &manifest);
        for (name, (live, retained)) in &expected {
            let entry = parsed.tenant(name).expect("tenant survives");
            prop_assert_eq!(entry.live, *live);
            prop_assert_eq!(&entry.retained, retained);
        }
    }

    /// Truncating a sealed manifest anywhere is a typed rejection —
    /// never a partially applied commit record.
    #[test]
    fn any_truncation_is_a_typed_rejection(
        epoch in 0u64..1000,
        cut_seed in any::<u64>(),
    ) {
        let mut manifest = manifest_with(epoch);
        manifest.set_tenant("acme", 3, [1, 2, 3]);
        manifest.set_tenant("globex", 7, [6, 7]);
        let bytes = manifest.serialize();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            Manifest::parse(&bytes[..cut]).is_err(),
            "cut at {cut} of {} parsed", bytes.len()
        );
    }

    /// Flipping any single bit of a sealed manifest is rejected; flips
    /// confined to the stored CRC digits are caught as a checksum or
    /// grammar error specifically.
    #[test]
    fn any_bit_flip_is_rejected(
        pos_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut manifest = manifest_with(41);
        manifest.set_tenant("acme", 2, [1, 2]);
        let mut bytes = manifest.serialize();
        let pos = (pos_seed % (bytes.len() as u64 - 1)) as usize; // keep the final newline
        bytes[pos] ^= 1 << bit;
        let err = Manifest::parse(&bytes).expect_err("a flipped manifest must not parse");
        // Flips inside the 8 stored CRC hex digits leave the body
        // intact, so only the footer checks can fire.
        let crc_digits = bytes.len() - 9..bytes.len() - 1;
        if crc_digits.contains(&pos) {
            prop_assert!(
                matches!(
                    err,
                    ManifestError::ChecksumMismatch { .. }
                        | ManifestError::Garbage { .. }
                        | ManifestError::Truncated
                ),
                "crc-digit flip at {pos}: {err}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Corrupting the newest k of n published generations and tearing
    /// up the manifest must recover live = the newest *valid*
    /// generation — recovery never elects a CRC-invalid image when an
    /// older valid one exists.
    #[test]
    fn recovery_never_selects_a_corrupt_generation(
        tag in any::<u64>(),
        n_gens in 2u64..=4,
        corrupt_hi in 1u64..=3,
        mask in 1u8..=255,
    ) {
        let n_corrupt = corrupt_hi.min(n_gens - 1);
        let dir = scratch(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let image = sample_image();

        let (mut ledger, _) = Ledger::open(&dir).expect("scratch dir is creatable");
        prop_assert!(ledger.is_writer());
        for _ in 0..n_gens {
            let (gen, _, _) = ledger.publish_image("acme", &image).expect("clean publish");
            ledger.commit_live("acme", gen).expect("clean commit");
        }
        drop(ledger);

        // Corrupt the newest `n_corrupt` images and tear the manifest.
        for gen in (n_gens - n_corrupt + 1)..=n_gens {
            let path = dir.join(format!("acme.g{gen}.ghdc"));
            let mut bytes = std::fs::read(&path).expect("image exists");
            let mid = bytes.len() / 2;
            bytes[mid] ^= mask;
            std::fs::write(&path, bytes).expect("image rewrite");
        }
        std::fs::remove_file(dir.join(MANIFEST_NAME)).expect("manifest exists");

        let (ledger, outcome) = Ledger::open(&dir).expect("recovery opens");
        prop_assert!(outcome.repaired, "a missing manifest must trigger a rebuild");
        let entry = ledger
            .manifest()
            .tenant("acme")
            .expect("tenant survives recovery");
        let expected_live = n_gens - n_corrupt;
        prop_assert_eq!(
            entry.live, expected_live,
            "live must be the newest CRC-valid generation"
        );
        let (live_gen, live_path) = ledger.live_path("acme").expect("live path resolves");
        prop_assert_eq!(live_gen, expected_live);
        prop_assert!(
            Ledger::validate_image(&live_path).is_ok(),
            "the recovered live image must validate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
