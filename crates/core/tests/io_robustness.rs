//! Robustness of the GHDC wire formats: arbitrary and corrupted byte
//! streams must produce errors, never panics or absurd allocations.

use generic_hdc::encoding::GenericEncoderSpec;
use generic_hdc::io::{read_model, read_quantized, write_model, ReadModelError};
use generic_hdc::{BinaryHv, HdcModel, HdcPipeline, IntHv};
use proptest::prelude::*;

fn sample_model() -> HdcModel {
    let encoded: Vec<IntHv> = (0..3u64)
        .map(|s| IntHv::from(BinaryHv::random_seeded(256, s).expect("dim > 0")))
        .collect();
    HdcModel::fit(&encoded, &[0, 1, 2], 3).expect("valid inputs")
}

fn sample_pipeline() -> HdcPipeline {
    let features: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..6).map(|j| ((i * 3 + j) % 7) as f64).collect())
        .collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let spec = GenericEncoderSpec::new(256, 6).with_seed(5);
    HdcPipeline::train(spec, &features, &labels, 2, 3).expect("valid inputs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes never panic the model reader.
    #[test]
    fn arbitrary_bytes_do_not_panic_model_reader(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_model(bytes.as_slice());
        let _ = read_quantized(bytes.as_slice());
        let _ = HdcPipeline::read_from(bytes.as_slice());
    }

    /// Changing any single byte of a sealed model stream is an error —
    /// the CRC footer leaves no silent corruption.
    #[test]
    fn single_byte_corruption_is_rejected(pos_seed in any::<u64>(), delta in 1u8..=255) {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] = buf[pos].wrapping_add(delta);
        prop_assert!(read_model(buf.as_slice()).is_err());
    }

    /// Any flipped bit past the magic/version prefix fails specifically
    /// with a checksum mismatch — the CRC is validated before the header
    /// is even interpreted.
    #[test]
    fn flipped_bit_fails_the_checksum(pos_seed in any::<u64>(), bit in 0u32..8) {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        let pos = 5 + (pos_seed % (buf.len() - 5) as u64) as usize;
        buf[pos] ^= 1 << bit;
        let err = read_model(buf.as_slice()).expect_err("corruption must be caught");
        prop_assert!(
            matches!(err, ReadModelError::ChecksumMismatch { .. }),
            "pos {}: {}", pos, err
        );
    }

    /// Truncating a sealed model stream fails cleanly: as a checksum
    /// mismatch once enough survives to check, as an I/O error before.
    #[test]
    fn truncated_model_stream_is_rejected(cut_seed in any::<u64>()) {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        let cut = (cut_seed % buf.len() as u64) as usize;
        buf.truncate(cut);
        let err = read_model(buf.as_slice()).expect_err("truncation must be caught");
        if cut >= 12 {
            prop_assert!(
                matches!(err, ReadModelError::ChecksumMismatch { .. }),
                "cut {}: {}", cut, err
            );
        }
    }

    /// Truncating a valid pipeline stream at any point fails cleanly.
    #[test]
    fn truncated_pipeline_streams_error(cut_seed in any::<u64>()) {
        let pipeline = sample_pipeline();
        let mut buf = Vec::new();
        pipeline.write_to(&mut buf).expect("vec write cannot fail");
        let cut = (cut_seed % buf.len() as u64) as usize;
        buf.truncate(cut);
        prop_assert!(HdcPipeline::read_from(buf.as_slice()).is_err());
    }
}

#[test]
fn valid_pipeline_stream_decodes_after_fuzzing_setup() {
    // Guards against the fuzz helpers drifting out of sync with the
    // format: the untouched stream must still round-trip.
    let pipeline = sample_pipeline();
    let mut buf = Vec::new();
    pipeline.write_to(&mut buf).expect("vec write cannot fail");
    let restored = HdcPipeline::read_from(buf.as_slice()).expect("untouched stream decodes");
    assert_eq!(
        restored.predict(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).ok(),
        pipeline.predict(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).ok()
    );
}
