//! Multi-tenant model registry: mmap-on-demand serving of GHDC v3
//! class memories with a crash-recoverable generation ledger.
//!
//! At fleet scale the binding constraint is not single-model speed but
//! footprint: thousands of per-tenant models, each fully deserialized,
//! multiply cold-load latency and resident set linearly. The paper's
//! seed-based id regeneration (§4.2, ~1024× id-memory compression)
//! means tenants can share one item/id memory — only the *class*
//! memories differ per tenant. This module serves those class memories
//! straight out of the OS page cache:
//!
//! - [`ModelRegistry::get`] maps the tenant's **live generation**
//!   (`DIR/<tenant>.g<N>.ghdc`, resolved through the
//!   [`Ledger`](crate::ledger::Ledger) manifest) on demand and
//!   validates it (header, exact length, alignment, CRC32) before any
//!   view exists. A failing live image **auto-rolls back**: the newest
//!   retained generation that passes validation is committed live and
//!   served, so a bad image degrades to the previous model instead of
//!   shedding the tenant's traffic. Only when *no* retained generation
//!   validates is the tenant quarantined.
//! - Resident mappings live in an LRU under a configurable byte
//!   budget; eviction drops the registry's reference, and the mapping
//!   itself is retired only when the last in-flight reader drops its
//!   [`TenantHandle`] (RCU by refcount).
//! - [`ModelRegistry::publish`] stages a new generation through the
//!   atomic path checkpoints use — write `*.tmp`, fsync, rename, fsync
//!   the directory, retrying transient faults per the configured
//!   [`RetryPolicy`] — validates it, and only then commits the
//!   manifest. A crash at any boundary leaves the previous generation
//!   live; [`ModelRegistry::open`]'s recovery scan sweeps the staging
//!   debris. The last `keep_generations` images are retained for
//!   [`ModelRegistry::rollback`].
//! - Cross-process coherence: the first registry over a directory takes
//!   an advisory `flock` and becomes the writer; further registries
//!   (other processes, or other instances in this one) open as readers
//!   whose [`ModelRegistry::get`] cheaply re-stats the manifest every
//!   `watch_every` admissions and refreshes changed tenants — so a
//!   serving process picks up another process's publishes and
//!   rollbacks at admission time without restarting.
//! - One seeded [`IdMemory`] is shared across every tenant
//!   ([`ModelRegistry::shared_ids`]), so per-tenant state is exactly
//!   one mapped file.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::io::{write_packed, PackedLayout, ReadModelError};
use crate::ledger::{
    valid_tenant_name, FsckReport, GenerationRecord, Ledger, LedgerFs, RecoveryOutcome,
};
use crate::mapped::Mapping;
use crate::quant::{PackedModelView, QuantizedModel};
use crate::runtime::RetryPolicy;
use crate::{HdcError, IdMemory};

/// File extension of tenant model files inside a registry directory.
pub const TENANT_EXT: &str = "ghdc";

/// Tunables of a [`ModelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Byte budget for resident mappings; the LRU evicts down to this
    /// after every load. A single model larger than the budget is
    /// refused outright ([`RegistryError::BudgetTooSmall`]).
    pub byte_budget: usize,
    /// Hypervector dimensionality every tenant must match (the shared
    /// encoder's output width). Mismatching files are quarantined.
    pub dim: usize,
    /// Id vectors in the shared seeded item memory.
    pub id_count: usize,
    /// Seed of the shared item memory (paper §4.2: ids are regenerated
    /// from the seed, so this one number replaces a per-tenant table).
    pub id_seed: u64,
    /// Generations retained per tenant for rollback (≥ 1; older images
    /// are garbage-collected at commit).
    pub keep_generations: usize,
    /// A reader registry re-stats the manifest every `watch_every`-th
    /// admission to pick up cross-process publishes (1 = every call).
    pub watch_every: u64,
    /// Backoff policy for transient publish/manifest I/O faults (the
    /// same shape `CheckpointStore::save` uses).
    pub retry: RetryPolicy,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            byte_budget: 64 << 20,
            dim: 2048,
            id_count: 64,
            id_seed: 0x1D5E_ED00,
            keep_generations: 4,
            watch_every: 64,
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a registry operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// The tenant id contains characters outside `[A-Za-z0-9_-]` (or is
    /// empty / too long) — refused before it can touch a path.
    InvalidTenant(String),
    /// No model file exists for the tenant.
    NotFound(String),
    /// No retained generation of the tenant's file passes
    /// CRC/alignment/layout validation; the tenant is quarantined until
    /// a valid model is published for it.
    Quarantined {
        /// The quarantined tenant.
        tenant: String,
        /// Human-readable validation failure that caused the quarantine.
        reason: String,
    },
    /// The model's mapped size alone exceeds the LRU byte budget.
    BudgetTooSmall {
        /// Bytes the mapping needs.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A model offered for publication doesn't match the registry's
    /// dimensionality.
    DimMismatch {
        /// The registry's (shared encoder's) dimensionality.
        expected: usize,
        /// The offered model's dimensionality.
        actual: usize,
    },
    /// A freshly staged publish image failed validation and was
    /// discarded; the tenant keeps serving its previous generation.
    PublishRejected {
        /// The tenant whose publish was rejected.
        tenant: String,
        /// Why the staged image failed validation.
        reason: String,
    },
    /// A mutation (publish, rollback, gc) was attempted without the
    /// advisory writer lock — another process owns the directory.
    NotWriter,
    /// A rollback targeted a generation the ledger does not retain.
    NoSuchGeneration {
        /// The tenant.
        tenant: String,
        /// The requested generation (`None` = no older generation
        /// exists to roll back to).
        generation: Option<u64>,
    },
    /// Underlying I/O failure (not a validation failure).
    Io(io::Error),
    /// The registry itself could not be constructed.
    Config(HdcError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidTenant(t) => write!(f, "invalid tenant id `{t}`"),
            RegistryError::NotFound(t) => write!(f, "no model file for tenant `{t}`"),
            RegistryError::Quarantined { tenant, reason } => {
                write!(f, "tenant `{tenant}` is quarantined: {reason}")
            }
            RegistryError::BudgetTooSmall { needed, budget } => write!(
                f,
                "model needs {needed} resident bytes but the budget is {budget}"
            ),
            RegistryError::DimMismatch { expected, actual } => write!(
                f,
                "model dimensionality {actual} does not match the registry's {expected}"
            ),
            RegistryError::PublishRejected { tenant, reason } => write!(
                f,
                "publish for tenant `{tenant}` rejected (previous generation stays live): {reason}"
            ),
            RegistryError::NotWriter => {
                write!(f, "another process holds the registry writer lock")
            }
            RegistryError::NoSuchGeneration { tenant, generation } => match generation {
                Some(g) => write!(f, "tenant `{tenant}` retains no generation {g}"),
                None => write!(
                    f,
                    "tenant `{tenant}` has no older generation to roll back to"
                ),
            },
            RegistryError::Io(e) => write!(f, "registry i/o failure: {e}"),
            RegistryError::Config(e) => write!(f, "registry configuration: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Point-in-time registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Cache hits: [`ModelRegistry::get`] served a resident mapping.
    pub hits: u64,
    /// Cold loads: a file was mapped and validated.
    pub cold_loads: u64,
    /// Mappings evicted by the LRU to stay under the byte budget.
    pub evictions: u64,
    /// Successful hot-swaps through [`ModelRegistry::publish`].
    pub swaps: u64,
    /// Validation failures that quarantined a tenant (no retained
    /// generation validated).
    pub quarantines: u64,
    /// Transient publish/manifest I/O faults absorbed by the
    /// [`RetryPolicy`].
    pub publish_retries: u64,
    /// Generations reverted — explicit [`ModelRegistry::rollback`]s,
    /// auto-rollbacks on a corrupt live image, and rejected publishes
    /// that kept the previous generation live.
    pub rollbacks: u64,
    /// Recovery scans at open that had to repair state (torn/missing
    /// manifest rebuilt, orphaned images adopted, or staging files
    /// swept).
    pub recoveries: u64,
    /// Orphaned `*.tmp` staging files swept by recovery scans.
    pub tmp_sweeps: u64,
}

/// One validated, mapped tenant model. Owned by `Arc`: the registry
/// holds one reference while resident, every in-flight request holds
/// another — the mapping unmaps when the last one drops.
#[derive(Debug)]
struct TenantEntry {
    bytes: Mapping,
    layout: PackedLayout,
}

impl TenantEntry {
    fn view(&self) -> PackedModelView<'_> {
        // The cheap invariants cannot fail: `layout` was validated
        // against these exact bytes at load, and the mapping base is
        // 64-byte aligned by construction. Degrade to the full check
        // (which reports the typed error) rather than unwrap.
        #[allow(clippy::redundant_closure_for_method_calls)]
        match PackedModelView::with_layout(&self.bytes, self.layout) {
            Ok(view) => view,
            Err(_) => unreachable!("entry bytes were validated at load"),
        }
    }
}

/// A clonable, thread-safe reference to one tenant's mapped model,
/// pinned against eviction and hot-swap for as long as it lives.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    tenant: Arc<str>,
    entry: Arc<TenantEntry>,
}

impl TenantHandle {
    /// The tenant this handle serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The zero-copy scoring view over the pinned mapping.
    pub fn view(&self) -> PackedModelView<'_> {
        self.entry.view()
    }

    /// Resident bytes this mapping accounts for.
    pub fn len_bytes(&self) -> usize {
        self.entry.bytes.len()
    }

    /// Whether the pinned region is a real OS memory mapping.
    pub fn is_mmap(&self) -> bool {
        self.entry.bytes.is_mmap()
    }
}

#[derive(Debug)]
struct Resident {
    entry: Arc<TenantEntry>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct State {
    resident: HashMap<Arc<str>, Resident>,
    quarantined: HashMap<String, String>,
    resident_bytes: usize,
    tick: u64,
    stats: RegistryStats,
}

/// The multi-tenant registry. See the [module docs](self) for the
/// serving model.
///
/// Lock discipline: the ledger mutex is acquired before the state
/// mutex, never the reverse; the resident-hit fast path takes only the
/// state mutex.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    config: RegistryConfig,
    ids: IdMemory,
    ledger: Mutex<Ledger>,
    state: Mutex<State>,
    recovery: RecoveryOutcome,
    watch_tick: AtomicU64,
}

impl ModelRegistry {
    /// Opens (creating if missing) a registry over `dir`, running the
    /// ledger recovery scan (sweep staging orphans, repair a
    /// torn/missing manifest from the on-disk generations, adopt
    /// uncommitted images).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] if the directory cannot be created,
    /// [`RegistryError::Config`] if the shared id memory parameters are
    /// degenerate.
    pub fn open(dir: impl Into<PathBuf>, config: RegistryConfig) -> Result<Self, RegistryError> {
        Self::open_with_fs(dir, config, LedgerFs::new())
    }

    /// [`ModelRegistry::open`] with an injectable filesystem layer —
    /// the crash-fault hook soak and conformance campaigns use to fail
    /// or kill the process at exact publish boundaries.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::open`].
    pub fn open_with_fs(
        dir: impl Into<PathBuf>,
        config: RegistryConfig,
        fs: LedgerFs,
    ) -> Result<Self, RegistryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let ids = IdMemory::seeded(config.dim, config.id_count, config.id_seed)
            .map_err(RegistryError::Config)?;
        let (ledger, recovery) =
            Ledger::open_with(&dir, config.keep_generations.max(1), config.retry, fs)?;
        let mut state = State::default();
        state.stats.tmp_sweeps = recovery.swept_tmp as u64;
        if recovery.repaired || recovery.adopted > 0 || recovery.swept_tmp > 0 {
            state.stats.recoveries = 1;
        }
        Ok(ModelRegistry {
            dir,
            config,
            ids,
            ledger: Mutex::new(ledger),
            state: Mutex::new(state),
            recovery,
            watch_tick: AtomicU64::new(0),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the registry was opened with.
    pub fn config(&self) -> RegistryConfig {
        self.config
    }

    /// The one seeded item memory every tenant shares (§4.2).
    pub fn shared_ids(&self) -> &IdMemory {
        &self.ids
    }

    /// What the recovery scan at open found and did.
    pub fn recovery(&self) -> &RecoveryOutcome {
        &self.recovery
    }

    /// Whether this registry holds the advisory single-writer lock on
    /// the directory (the first opener does; later openers — typically
    /// other processes — serve as coherent readers).
    pub fn is_writer(&self) -> bool {
        lock_ledger(&self.ledger).is_writer()
    }

    /// The ledger's commit epoch (bumps on every publish/rollback).
    pub fn epoch(&self) -> u64 {
        lock_ledger(&self.ledger).epoch()
    }

    /// A shared-state clone of the injectable filesystem layer, for
    /// arming faults mid-run.
    pub fn ledger_fs(&self) -> LedgerFs {
        lock_ledger(&self.ledger).fs()
    }

    /// The path a tenant's **live** model image lives at (the legacy
    /// flat `<tenant>.ghdc` when the ledger has no entry yet).
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidTenant`] for unsafe names.
    pub fn tenant_path(&self, tenant: &str) -> Result<PathBuf, RegistryError> {
        validate_tenant(tenant)?;
        let ledger = lock_ledger(&self.ledger);
        Ok(match ledger.live_path(tenant) {
            Some((_, path)) => path,
            None => ledger.gen_path(tenant, crate::ledger::LEGACY_GENERATION),
        })
    }

    /// Resolves a tenant to a pinned mapped model: resident hit, or
    /// cold map-and-validate of the live generation with auto-rollback
    /// to the newest valid retained generation when the live image
    /// fails validation. Touches the LRU and evicts down to the byte
    /// budget after a cold load. Every `watch_every`-th call re-stats
    /// the manifest so cross-process publishes are picked up at
    /// admission time.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no file exists,
    /// [`RegistryError::Quarantined`] when no retained generation
    /// validates (now or previously), [`RegistryError::BudgetTooSmall`]
    /// when the file can never fit.
    pub fn get(&self, tenant: &str) -> Result<TenantHandle, RegistryError> {
        validate_tenant(tenant)?;
        let tick = self.watch_tick.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(self.config.watch_every.max(1)) {
            let _ = self.refresh();
        }
        {
            let mut state = lock_state(&self.state);
            if let Some(reason) = state.quarantined.get(tenant) {
                return Err(RegistryError::Quarantined {
                    tenant: tenant.to_owned(),
                    reason: reason.clone(),
                });
            }
            state.tick += 1;
            let tick = state.tick;
            if let Some((name, resident)) = state.resident.get_key_value(tenant) {
                let handle = TenantHandle {
                    tenant: Arc::clone(name),
                    entry: Arc::clone(&resident.entry),
                };
                let name = Arc::clone(name);
                if let Some(resident) = state.resident.get_mut(&name) {
                    resident.last_used = tick;
                }
                state.stats.hits += 1;
                return Ok(handle);
            }
        }
        // Cold load under the ledger lock: resolve the live generation,
        // map + validate it, auto-roll back on failure. The ledger lock
        // also serializes concurrent cold loads of one tenant, keeping
        // the LRU arithmetic in one place.
        let mut ledger = lock_ledger(&self.ledger);
        if ledger.manifest().tenant(tenant).is_none() {
            // Lazy adoption of a legacy flat image dropped into the
            // directory after open.
            ledger.adopt_flat(tenant)?;
        }
        let Some((live, path)) = ledger.live_path(tenant) else {
            return Err(RegistryError::NotFound(tenant.to_owned()));
        };
        let (entry, _gen) = match self.load(&path) {
            Ok(entry) => (entry, live),
            Err(LoadError::Missing) => return Err(RegistryError::NotFound(tenant.to_owned())),
            Err(LoadError::Io(e)) => return Err(RegistryError::Io(e)),
            Err(LoadError::Invalid(reason)) => {
                match self.auto_rollback(&mut ledger, tenant, live) {
                    Some((entry, gen)) => (entry, gen),
                    None => {
                        let mut state = lock_state(&self.state);
                        state.stats.quarantines += 1;
                        state.quarantined.insert(tenant.to_owned(), reason.clone());
                        return Err(RegistryError::Quarantined {
                            tenant: tenant.to_owned(),
                            reason,
                        });
                    }
                }
            }
        };
        drop(ledger);
        let needed = entry.bytes.len();
        if needed > self.config.byte_budget {
            return Err(RegistryError::BudgetTooSmall {
                needed,
                budget: self.config.byte_budget,
            });
        }
        let mut state = lock_state(&self.state);
        // Another thread may have raced the load; prefer its entry.
        if let Some((name, resident)) = state.resident.get_key_value(tenant) {
            let handle = TenantHandle {
                tenant: Arc::clone(name),
                entry: Arc::clone(&resident.entry),
            };
            state.stats.hits += 1;
            return Ok(handle);
        }
        state.stats.cold_loads += 1;
        state.tick += 1;
        let tick = state.tick;
        let name: Arc<str> = Arc::from(tenant);
        let entry = Arc::new(entry);
        let handle = TenantHandle {
            tenant: Arc::clone(&name),
            entry: Arc::clone(&entry),
        };
        state.resident_bytes += needed;
        state.resident.insert(
            name,
            Resident {
                entry,
                last_used: tick,
            },
        );
        Self::evict_to_budget(&mut state, self.config.byte_budget, Some(tenant));
        Ok(handle)
    }

    /// Walks the retained generations below `live`, newest first, and
    /// commits the first one that fully validates. Returns the loaded
    /// entry and its generation, or `None` when nothing validates.
    fn auto_rollback(
        &self,
        ledger: &mut Ledger,
        tenant: &str,
        live: u64,
    ) -> Option<(TenantEntry, u64)> {
        for gen in ledger.retained_below(tenant, live).into_iter().rev() {
            let path = ledger.gen_path(tenant, gen);
            if let Ok(entry) = self.load(&path) {
                // Commit the reverted live generation; a failed commit
                // (reader role, injected fault) still serves the valid
                // entry — the in-memory manifest reverts and the next
                // miss retries the commit.
                let _ = ledger.commit_live(tenant, gen);
                let mut state = lock_state(&self.state);
                state.stats.rollbacks += 1;
                state.quarantined.remove(tenant);
                return Some((entry, gen));
            }
        }
        None
    }

    /// Stages, validates, and commits a new generation for the tenant:
    /// v3 bytes to `*.tmp`, fsync, atomic rename to
    /// `<tenant>.g<N>.ghdc` (transient I/O faults retried per the
    /// configured [`RetryPolicy`]), full validation of the staged
    /// image, then the CRC'd manifest commit — which is the publish's
    /// commit point: a crash anywhere earlier leaves the previous
    /// generation live. On success the resident entry is republished
    /// and any quarantine lifted; readers holding the previous
    /// [`TenantHandle`] keep serving the old mapping until they drop
    /// it. Returns the committed generation number.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DimMismatch`] before any byte is written;
    /// [`RegistryError::NotWriter`] when another process owns the
    /// directory; [`RegistryError::PublishRejected`] when the staged
    /// image fails validation (the tenant keeps its previous
    /// generation); otherwise I/O failures once retries are exhausted.
    pub fn publish(&self, tenant: &str, model: &QuantizedModel) -> Result<u64, RegistryError> {
        validate_tenant(tenant)?;
        if model.dim() != self.config.dim {
            return Err(RegistryError::DimMismatch {
                expected: self.config.dim,
                actual: model.dim(),
            });
        }
        let mut bytes = Vec::new();
        write_packed(model, &mut bytes)?;
        self.publish_bytes(tenant, bytes)
    }

    /// [`publish`](ModelRegistry::publish) for a compressed (pruned +
    /// quantized) model. The tenant is keyed by the *parent*
    /// dimensionality — the width queries arrive at — so a pruned
    /// tenant serves through the same registry as its full-support
    /// peers, it just costs a fraction of the byte budget.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DimMismatch`] when the parent dimensionality
    /// does not match the registry's; otherwise as
    /// [`publish`](ModelRegistry::publish).
    pub fn publish_compressed(
        &self,
        tenant: &str,
        model: &crate::CompressedModel,
    ) -> Result<u64, RegistryError> {
        validate_tenant(tenant)?;
        if model.parent_dim() != self.config.dim {
            return Err(RegistryError::DimMismatch {
                expected: self.config.dim,
                actual: model.parent_dim(),
            });
        }
        let bytes = model
            .image_bytes()
            .map_err(|e| RegistryError::PublishRejected {
                tenant: tenant.to_owned(),
                reason: e.to_string(),
            })?;
        self.publish_bytes(tenant, bytes)
    }

    /// Shared staging/validation/commit tail of both publish paths.
    fn publish_bytes(&self, tenant: &str, bytes: Vec<u8>) -> Result<u64, RegistryError> {
        let mut ledger = lock_ledger(&self.ledger);
        if !ledger.try_acquire_writer()? {
            return Err(RegistryError::NotWriter);
        }
        // Fold in commits another process made while we were idle, so
        // the new generation numbers past them.
        let _ = ledger.refresh_if_changed();
        let (gen, path, retries) = ledger.publish_image(tenant, &bytes)?;
        if retries > 0 {
            lock_state(&self.state).stats.publish_retries += u64::from(retries);
        }
        // Validate the staged image *before* the manifest moves: a bad
        // image is discarded and the previous generation stays live.
        let entry = match self.load(&path) {
            Ok(entry) => Arc::new(entry),
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                let reason = match e {
                    LoadError::Invalid(reason) => reason,
                    LoadError::Missing => "staged image vanished".to_owned(),
                    LoadError::Io(e) => e.to_string(),
                };
                let mut state = lock_state(&self.state);
                state.stats.rollbacks += 1;
                return Err(RegistryError::PublishRejected {
                    tenant: tenant.to_owned(),
                    reason,
                });
            }
        };
        let commit_retries = ledger.commit_live(tenant, gen)?;
        drop(ledger);

        let needed = entry.bytes.len();
        if needed > self.config.byte_budget {
            return Err(RegistryError::BudgetTooSmall {
                needed,
                budget: self.config.byte_budget,
            });
        }
        let mut state = lock_state(&self.state);
        state.stats.publish_retries += u64::from(commit_retries);
        state.quarantined.remove(tenant);
        state.tick += 1;
        let tick = state.tick;
        state.stats.swaps += 1;
        if let Some(old) = state.resident.remove(tenant) {
            state.resident_bytes -= old.entry.bytes.len();
        }
        state.resident_bytes += needed;
        state.resident.insert(
            Arc::from(tenant),
            Resident {
                entry,
                last_used: tick,
            },
        );
        Self::evict_to_budget(&mut state, self.config.byte_budget, Some(tenant));
        Ok(gen)
    }

    /// Reverts a tenant to a retained generation: the newest one below
    /// live when `to` is `None`, else exactly generation `to`. The
    /// target must pass full validation; with `to = None` the walk
    /// skips corrupt candidates. Commits the manifest, drops the
    /// resident entry (in-flight handles keep the old mapping), and
    /// lifts any quarantine. Returns the now-live generation.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotWriter`] without the writer lock;
    /// [`RegistryError::NoSuchGeneration`] when the target isn't
    /// retained (or nothing older exists); [`RegistryError::Quarantined`]
    /// when an explicit target fails validation.
    pub fn rollback(&self, tenant: &str, to: Option<u64>) -> Result<u64, RegistryError> {
        validate_tenant(tenant)?;
        let mut ledger = lock_ledger(&self.ledger);
        if !ledger.try_acquire_writer()? {
            return Err(RegistryError::NotWriter);
        }
        let _ = ledger.refresh_if_changed();
        if ledger.manifest().tenant(tenant).is_none() {
            return Err(RegistryError::NotFound(tenant.to_owned()));
        }
        let target = match to {
            Some(_) => ledger.rollback_target(tenant, to),
            None => {
                // Walk older generations newest-first until one
                // validates.
                let Some((live, _)) = ledger.live_path(tenant) else {
                    return Err(RegistryError::NotFound(tenant.to_owned()));
                };
                ledger
                    .retained_below(tenant, live)
                    .into_iter()
                    .rev()
                    .find(|&g| Ledger::validate_image(&ledger.gen_path(tenant, g)).is_ok())
            }
        };
        let Some(target) = target else {
            return Err(RegistryError::NoSuchGeneration {
                tenant: tenant.to_owned(),
                generation: to,
            });
        };
        if let Err(reason) = Ledger::validate_image(&ledger.gen_path(tenant, target)) {
            return Err(RegistryError::Quarantined {
                tenant: tenant.to_owned(),
                reason,
            });
        }
        ledger.commit_live(tenant, target)?;
        drop(ledger);
        let mut state = lock_state(&self.state);
        state.stats.rollbacks += 1;
        state.quarantined.remove(tenant);
        if let Some(old) = state.resident.remove(tenant) {
            state.resident_bytes -= old.entry.bytes.len();
        }
        Ok(target)
    }

    /// Re-stats the manifest and, when another process changed it,
    /// refreshes the in-memory view: tenants whose live generation
    /// moved are dropped from residency (their next admission maps the
    /// new generation — RCU handle refresh) and un-quarantined.
    /// Returns the refreshed tenants.
    ///
    /// # Errors
    ///
    /// None today (watch failures read as "no change"); the signature
    /// leaves room for stricter modes.
    pub fn refresh(&self) -> Result<Vec<String>, RegistryError> {
        let mut ledger = lock_ledger(&self.ledger);
        let changed = ledger.refresh_if_changed()?;
        if changed.is_empty() {
            return Ok(changed);
        }
        drop(ledger);
        let mut state = lock_state(&self.state);
        for tenant in &changed {
            if let Some(old) = state.resident.remove(tenant.as_str()) {
                state.resident_bytes -= old.entry.bytes.len();
            }
            state.quarantined.remove(tenant);
        }
        Ok(changed)
    }

    /// Per-generation history of a tenant (ascending), from the ledger
    /// manifest.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidTenant`] for unsafe names.
    pub fn history(&self, tenant: &str) -> Result<Vec<GenerationRecord>, RegistryError> {
        validate_tenant(tenant)?;
        Ok(lock_ledger(&self.ledger).history(tenant))
    }

    /// Validates every retained generation of every tenant and lists
    /// unreferenced files. Read-only.
    ///
    /// # Errors
    ///
    /// Directory-walk failures.
    pub fn fsck(&self) -> Result<FsckReport, RegistryError> {
        Ok(lock_ledger(&self.ledger).fsck()?)
    }

    /// Removes staging orphans and unreferenced images (writer only).
    /// Returns how many files were removed.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotWriter`] without the writer lock.
    pub fn gc(&self) -> Result<usize, RegistryError> {
        let mut ledger = lock_ledger(&self.ledger);
        if !ledger.try_acquire_writer()? {
            return Err(RegistryError::NotWriter);
        }
        Ok(ledger.gc()?)
    }

    /// Drops a tenant's resident mapping (it remains on disk and
    /// reloadable). Returns whether it was resident. In-flight handles
    /// keep the mapping alive until dropped.
    pub fn evict(&self, tenant: &str) -> bool {
        let mut state = lock_state(&self.state);
        match state.resident.remove(tenant) {
            Some(old) => {
                state.resident_bytes -= old.entry.bytes.len();
                state.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Clears a tenant's quarantine so the next [`ModelRegistry::get`]
    /// retries the file (e.g. after it was repaired out of band).
    /// Returns whether the tenant was quarantined.
    pub fn clear_quarantine(&self, tenant: &str) -> bool {
        lock_state(&self.state).quarantined.remove(tenant).is_some()
    }

    /// Currently quarantined tenants with their validation failures.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        let state = lock_state(&self.state);
        let mut list: Vec<(String, String)> = state
            .quarantined
            .iter()
            .map(|(t, r)| (t.clone(), r.clone()))
            .collect();
        list.sort();
        list
    }

    /// Bytes of model data currently resident (mapped and registry-
    /// referenced; in-flight handles to evicted mappings are excluded,
    /// matching what the LRU controls).
    pub fn resident_bytes(&self) -> usize {
        lock_state(&self.state).resident_bytes
    }

    /// Number of resident tenants.
    pub fn resident_count(&self) -> usize {
        lock_state(&self.state).resident.len()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> RegistryStats {
        lock_state(&self.state).stats
    }

    /// Tenants known to the registry: the union of ledger entries and
    /// legacy flat images on disk, sorted.
    ///
    /// # Errors
    ///
    /// Returns the underlying directory-walk error.
    pub fn tenants(&self) -> Result<Vec<String>, RegistryError> {
        let ledger = lock_ledger(&self.ledger);
        let mut out = ledger.tenants();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(TENANT_EXT) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            // `<tenant>.g<N>` or legacy flat `<tenant>`.
            let tenant = match stem.rsplit_once(".g") {
                Some((t, g)) if g.parse::<u64>().is_ok() => t,
                _ => stem,
            };
            if valid_tenant_name(tenant) && !out.iter().any(|t| t == tenant) {
                out.push(tenant.to_owned());
            }
        }
        out.sort();
        Ok(out)
    }

    fn load(&self, path: &Path) -> Result<TenantEntry, LoadError> {
        let bytes = match Mapping::map_file(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Missing),
            Err(e) => return Err(LoadError::Io(e)),
        };
        let layout = PackedLayout::validate(&bytes).map_err(|e| invalid(&e))?;
        // Pruned images are keyed by the dimensionality queries arrive
        // at (the parent space), not the compacted support size.
        if layout.parent_dim() != self.config.dim {
            return Err(LoadError::Invalid(format!(
                "model dimensionality {} does not match the registry's {}",
                layout.parent_dim(),
                self.config.dim
            )));
        }
        // Prove the view is constructible (alignment) before the entry
        // is ever handed out.
        PackedModelView::with_layout(&bytes, layout).map_err(|e| invalid(&e))?;
        Ok(TenantEntry { bytes, layout })
    }

    /// Evicts least-recently-used residents until the budget holds,
    /// never evicting `keep` (the entry just loaded for the caller).
    fn evict_to_budget(state: &mut State, budget: usize, keep: Option<&str>) {
        while state.resident_bytes > budget {
            let victim = state
                .resident
                .iter()
                .filter(|(name, _)| Some(name.as_ref() as &str) != keep)
                .min_by_key(|(_, r)| r.last_used)
                .map(|(name, _)| Arc::clone(name));
            let Some(victim) = victim else {
                break;
            };
            if let Some(old) = state.resident.remove(&victim) {
                state.resident_bytes -= old.entry.bytes.len();
                state.stats.evictions += 1;
            }
        }
    }
}

enum LoadError {
    Missing,
    Io(io::Error),
    Invalid(String),
}

fn invalid(e: &ReadModelError) -> LoadError {
    LoadError::Invalid(e.to_string())
}

fn validate_tenant(tenant: &str) -> Result<(), RegistryError> {
    if valid_tenant_name(tenant) {
        Ok(())
    } else {
        Err(RegistryError::InvalidTenant(tenant.to_owned()))
    }
}

fn lock_state(state: &Mutex<State>) -> MutexGuard<'_, State> {
    match state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_ledger(ledger: &Mutex<Ledger>) -> MutexGuard<'_, Ledger> {
    match ledger.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ledger::FsOp;
    use crate::{BinaryHv, HdcModel, IntHv, QuantizedModel};
    use std::fs::File;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ghdc-registry-{tag}-{}", std::process::id()))
    }

    fn sample_model(dim: usize, seed: u64) -> QuantizedModel {
        let encoded: Vec<IntHv> = (0..4)
            .map(|c| IntHv::from(BinaryHv::random_seeded(dim, seed * 101 + c).unwrap()))
            .collect();
        let model = HdcModel::fit(&encoded, &[0, 1, 2, 3], 4).unwrap();
        QuantizedModel::from_model(&model, 8).unwrap()
    }

    fn config(dim: usize, budget: usize) -> RegistryConfig {
        RegistryConfig {
            byte_budget: budget,
            dim,
            ..RegistryConfig::default()
        }
    }

    #[test]
    fn publish_get_score_round_trip() {
        let dir = scratch("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 7);
        registry.publish("acme", &model).unwrap();

        let handle = registry.get("acme").unwrap();
        let query = BinaryHv::random_seeded(512, 99).unwrap();
        let mapped = handle.view().scores(&query).unwrap();
        let heap = model.pack().unwrap().scores(&query).unwrap();
        assert_eq!(
            mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            heap.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "mapped scores must be bit-identical to the heap path"
        );
        assert_eq!(registry.stats().hits + registry.stats().cold_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruned_tenant_publishes_loads_and_scores_like_the_scalar_oracle() {
        let dir = scratch("pruned");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();

        // Train, prune to a quarter of the dimensions, quantize.
        let encoded: Vec<IntHv> = (0..8)
            .map(|i| IntHv::from(BinaryHv::random_seeded(512, 900 + i).unwrap()))
            .collect();
        let labels: Vec<usize> = (0..8).map(|i| i as usize % 4).collect();
        let model = HdcModel::fit(&encoded, &labels, 4).unwrap();
        let sal = crate::saliency(&model, &encoded, &labels).unwrap();
        let mut pruned = crate::prune(&model, &sal, 128).unwrap();
        pruned.recover(&encoded, &labels, 2, 1).unwrap();
        let compressed = crate::CompressedModel::from_pruned(&pruned, 8).unwrap();

        registry.publish_compressed("edge", &compressed).unwrap();
        let handle = registry.get("edge").unwrap();
        assert!(handle.view().is_pruned());
        assert_eq!(handle.view().parent_dim(), 512);
        assert_eq!(handle.view().dim(), 128);

        // Parent-width queries served through the registry must match
        // the scalar pruned oracle (hand-compacted heap model).
        let query = BinaryHv::random_seeded(512, 31).unwrap();
        let mapped = handle.view().scores(&query).unwrap();
        let compact = BinaryHv::from_bits(
            &compressed
                .support()
                .iter()
                .map(|&d| query.bit(d))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let oracle = compressed.quantized().scores(&IntHv::from(compact));
        assert_eq!(
            mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            oracle.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "registry-served pruned scores must be bit-identical to the oracle"
        );

        // A full-support publish to the same registry still works: the
        // dim key is the parent space for both.
        registry.publish("full", &sample_model(512, 8)).unwrap();
        assert!(!registry.get("full").unwrap().view().is_pruned());

        // A compressed model from the wrong parent space is rejected
        // before any byte is written.
        let small: Vec<IntHv> = (0..4)
            .map(|i| IntHv::from(BinaryHv::random_seeded(256, 40 + i).unwrap()))
            .collect();
        let small_labels = vec![0, 1, 0, 1];
        let small_model = HdcModel::fit(&small, &small_labels, 2).unwrap();
        let small_sal = crate::saliency(&small_model, &small, &small_labels).unwrap();
        let small_pruned = crate::prune(&small_model, &small_sal, 64).unwrap();
        let wrong = crate::CompressedModel::from_pruned(&small_pruned, 8).unwrap();
        assert!(matches!(
            registry.publish_compressed("edge", &wrong),
            Err(RegistryError::DimMismatch {
                expected: 512,
                actual: 256
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let dir = scratch("lru");
        let _ = std::fs::remove_dir_all(&dir);
        let model = sample_model(512, 3);
        let mut bytes = Vec::new();
        write_packed(&model, &mut bytes).unwrap();
        // Budget fits exactly two resident models.
        let registry = ModelRegistry::open(&dir, config(512, bytes.len() * 2)).unwrap();
        for tenant in ["t0", "t1", "t2", "t3"] {
            registry.publish(tenant, &model).unwrap();
            assert!(registry.resident_bytes() <= bytes.len() * 2);
        }
        registry.evict("t3");
        registry.evict("t2");
        for tenant in ["t0", "t1", "t2", "t3"] {
            let _ = registry.get(tenant).unwrap();
            assert!(
                registry.resident_bytes() <= bytes.len() * 2,
                "budget must hold after every load"
            );
            assert!(registry.resident_count() <= 2);
        }
        assert!(registry.stats().evictions > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicted_mapping_survives_until_last_reader_drops() {
        let dir = scratch("rcu");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 5);
        registry.publish("acme", &model).unwrap();
        let pinned = registry.get("acme").unwrap();
        assert!(registry.evict("acme"));

        // Hot-swap a different model while the old reader is pinned.
        let replacement = sample_model(512, 6);
        registry.publish("acme", &replacement).unwrap();
        let fresh = registry.get("acme").unwrap();

        let query = BinaryHv::random_seeded(512, 17).unwrap();
        let old_scores = pinned.view().scores(&query).unwrap();
        let new_scores = fresh.view().scores(&query).unwrap();
        let old_oracle = model.pack().unwrap().scores(&query).unwrap();
        let new_oracle = replacement.pack().unwrap().scores(&query).unwrap();
        assert_eq!(old_scores, old_oracle, "pinned reader sees the old model");
        assert_eq!(new_scores, new_oracle, "fresh reader sees the swap");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_live_generation_auto_rolls_back_to_last_good() {
        let dir = scratch("autorollback");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let good = sample_model(512, 31);
        let bad_source = sample_model(512, 32);
        let g1 = registry.publish("acme", &good).unwrap();
        let g2 = registry.publish("acme", &bad_source).unwrap();
        assert_eq!((g1, g2), (1, 2));

        // Corrupt the live (second) generation on disk.
        let path = registry.tenant_path("acme").unwrap();
        assert!(path.to_string_lossy().contains(".g2."), "{path:?}");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        registry.evict("acme");

        // Admission auto-rolls back to generation 1 instead of
        // quarantining.
        let handle = registry.get("acme").unwrap();
        let query = BinaryHv::random_seeded(512, 77).unwrap();
        let served = handle.view().scores(&query).unwrap();
        let oracle = good.pack().unwrap().scores(&query).unwrap();
        assert_eq!(served, oracle, "prior generation serves bit-identically");
        assert_eq!(registry.stats().rollbacks, 1);
        assert!(registry.quarantined().is_empty());
        assert_eq!(
            registry.history("acme").unwrap().last().map(|r| r.live),
            Some(false)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_with_typed_reasons() {
        let dir = scratch("quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 11);
        registry.publish("acme", &model).unwrap();

        // Flip one payload byte on disk. With only one generation there
        // is nothing to roll back to, so quarantine must engage.
        let path = registry.tenant_path("acme").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        registry.evict("acme");

        let err = registry.get("acme").unwrap_err();
        assert!(matches!(err, RegistryError::Quarantined { .. }), "{err}");
        // Sticky until cleared or republished.
        let err = registry.get("acme").unwrap_err();
        assert!(matches!(err, RegistryError::Quarantined { .. }));
        assert_eq!(registry.quarantined().len(), 1);

        // Publishing a good model lifts the quarantine.
        registry.publish("acme", &model).unwrap();
        assert!(registry.get("acme").is_ok());
        assert!(registry.quarantined().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_rollback_restores_an_older_generation() {
        let dir = scratch("rollback");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let first = sample_model(512, 41);
        let second = sample_model(512, 42);
        registry.publish("acme", &first).unwrap();
        registry.publish("acme", &second).unwrap();

        let back = registry.rollback("acme", None).unwrap();
        assert_eq!(back, 1);
        let handle = registry.get("acme").unwrap();
        let query = BinaryHv::random_seeded(512, 55).unwrap();
        assert_eq!(
            handle.view().scores(&query).unwrap(),
            first.pack().unwrap().scores(&query).unwrap(),
            "rollback serves the first model"
        );
        assert!(matches!(
            registry.rollback("acme", Some(99)).unwrap_err(),
            RegistryError::NoSuchGeneration { .. }
        ));
        // Roll forward again to the retained generation 2.
        assert_eq!(registry.rollback("acme", Some(2)).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_publish_recovers_to_last_good_and_sweeps_tmp() {
        let dir = scratch("crashpub");
        let _ = std::fs::remove_dir_all(&dir);
        let fs = LedgerFs::new();
        let registry = ModelRegistry::open_with_fs(&dir, config(512, 1 << 20), fs.clone()).unwrap();
        let model = sample_model(512, 61);
        registry.publish("acme", &model).unwrap();

        // Kill the "process" mid-write of the next publish.
        fs.crash_at(FsOp::Write, 1);
        let err = registry
            .publish("acme", &sample_model(512, 62))
            .unwrap_err();
        assert!(matches!(err, RegistryError::Io(_)), "{err}");
        drop(registry);

        // A fresh process recovers: previous generation still live,
        // staging debris swept.
        let recovered = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let handle = recovered.get("acme").unwrap();
        let query = BinaryHv::random_seeded(512, 66).unwrap();
        assert_eq!(
            handle.view().scores(&query).unwrap(),
            model.pack().unwrap().scores(&query).unwrap(),
            "last-good generation survives the crash"
        );
        assert!(!dir.join("acme.g2.ghdc.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_registry_watches_cross_process_publishes() {
        let dir = scratch("coherence");
        let _ = std::fs::remove_dir_all(&dir);
        let writer = ModelRegistry::open(
            &dir,
            RegistryConfig {
                watch_every: 1,
                ..config(512, 1 << 20)
            },
        )
        .unwrap();
        assert!(writer.is_writer());
        let first = sample_model(512, 81);
        writer.publish("acme", &first).unwrap();

        // A second registry over the same dir models a second process:
        // the flock excludes it from writing, the watch keeps it
        // coherent.
        let reader = ModelRegistry::open(
            &dir,
            RegistryConfig {
                watch_every: 1,
                ..config(512, 1 << 20)
            },
        )
        .unwrap();
        assert!(!reader.is_writer());
        assert!(matches!(
            reader.publish("acme", &first).unwrap_err(),
            RegistryError::NotWriter
        ));
        let query = BinaryHv::random_seeded(512, 88).unwrap();
        let seen = reader.get("acme").unwrap().view().scores(&query).unwrap();
        assert_eq!(seen, first.pack().unwrap().scores(&query).unwrap());

        let second = sample_model(512, 82);
        writer.publish("acme", &second).unwrap();
        // The reader's next admission picks up the new generation.
        let seen = reader.get("acme").unwrap().view().scores(&query).unwrap();
        assert_eq!(
            seen,
            second.pack().unwrap().scores(&query).unwrap(),
            "reader refreshes to the cross-process publish"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dim_and_missing_and_bad_names_are_typed() {
        let dir = scratch("typed");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        assert!(matches!(
            registry.get("nobody").unwrap_err(),
            RegistryError::NotFound(_)
        ));
        assert!(matches!(
            registry.get("../escape").unwrap_err(),
            RegistryError::InvalidTenant(_)
        ));
        assert!(matches!(
            registry.publish("acme", &sample_model(256, 1)).unwrap_err(),
            RegistryError::DimMismatch {
                expected: 512,
                actual: 256
            }
        ));
        // A file written with the wrong dim quarantines on load.
        let other = sample_model(256, 2);
        let path = registry.tenant_path("alien").unwrap();
        let mut file = File::create(&path).unwrap();
        write_packed(&other, &mut file).unwrap();
        drop(file);
        assert!(matches!(
            registry.get("alien").unwrap_err(),
            RegistryError::Quarantined { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_ids_are_seed_stable_across_registries() {
        let dir_a = scratch("ids-a");
        let dir_b = scratch("ids-b");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
        let a = ModelRegistry::open(&dir_a, config(512, 1 << 20)).unwrap();
        let b = ModelRegistry::open(&dir_b, config(512, 1 << 20)).unwrap();
        assert_eq!(a.shared_ids().id(3), b.shared_ids().id(3));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn tenants_lists_disk_state() {
        let dir = scratch("list");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 21);
        registry.publish("beta", &model).unwrap();
        registry.publish("alpha", &model).unwrap();
        assert_eq!(registry.tenants().unwrap(), vec!["alpha", "beta"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
