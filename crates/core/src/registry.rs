//! Multi-tenant model registry: mmap-on-demand serving of GHDC v3
//! class memories.
//!
//! At fleet scale the binding constraint is not single-model speed but
//! footprint: thousands of per-tenant models, each fully deserialized,
//! multiply cold-load latency and resident set linearly. The paper's
//! seed-based id regeneration (§4.2, ~1024× id-memory compression)
//! means tenants can share one item/id memory — only the *class*
//! memories differ per tenant. This module serves those class memories
//! straight out of the OS page cache:
//!
//! - [`ModelRegistry::get`] maps `DIR/<tenant>.ghdc` on demand and
//!   validates it (header, exact length, alignment, CRC32) before any
//!   view exists; failures **quarantine** the tenant with a typed
//!   reason instead of crashing the fleet.
//! - Resident mappings live in an LRU under a configurable byte
//!   budget; eviction drops the registry's reference, and the mapping
//!   itself is retired only when the last in-flight reader drops its
//!   [`TenantHandle`] (RCU by refcount).
//! - [`ModelRegistry::publish`] hot-swaps a tenant through the same
//!   atomic path checkpoints use — write `*.tmp`, fsync, rename, fsync
//!   the directory — then republishes the resident entry; readers
//!   pinned to the old mapping keep scoring the old inode untouched.
//! - One seeded [`IdMemory`] is shared across every tenant
//!   ([`ModelRegistry::shared_ids`]), so per-tenant state is exactly
//!   one mapped file.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::io::{write_packed, PackedLayout, ReadModelError};
use crate::mapped::Mapping;
use crate::quant::{PackedModelView, QuantizedModel};
use crate::runtime::sync_dir;
use crate::{HdcError, IdMemory};

/// File extension of tenant model files inside a registry directory.
pub const TENANT_EXT: &str = "ghdc";

const TMP_SUFFIX: &str = ".tmp";

/// Tunables of a [`ModelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Byte budget for resident mappings; the LRU evicts down to this
    /// after every load. A single model larger than the budget is
    /// refused outright ([`RegistryError::BudgetTooSmall`]).
    pub byte_budget: usize,
    /// Hypervector dimensionality every tenant must match (the shared
    /// encoder's output width). Mismatching files are quarantined.
    pub dim: usize,
    /// Id vectors in the shared seeded item memory.
    pub id_count: usize,
    /// Seed of the shared item memory (paper §4.2: ids are regenerated
    /// from the seed, so this one number replaces a per-tenant table).
    pub id_seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            byte_budget: 64 << 20,
            dim: 2048,
            id_count: 64,
            id_seed: 0x1D5E_ED00,
        }
    }
}

/// Why a registry operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// The tenant id contains characters outside `[A-Za-z0-9_-]` (or is
    /// empty / too long) — refused before it can touch a path.
    InvalidTenant(String),
    /// No model file exists for the tenant.
    NotFound(String),
    /// The tenant's file failed CRC/alignment/layout validation and is
    /// quarantined until a valid model is published for it.
    Quarantined {
        /// The quarantined tenant.
        tenant: String,
        /// Human-readable validation failure that caused the quarantine.
        reason: String,
    },
    /// The model's mapped size alone exceeds the LRU byte budget.
    BudgetTooSmall {
        /// Bytes the mapping needs.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A model offered for publication doesn't match the registry's
    /// dimensionality.
    DimMismatch {
        /// The registry's (shared encoder's) dimensionality.
        expected: usize,
        /// The offered model's dimensionality.
        actual: usize,
    },
    /// Underlying I/O failure (not a validation failure).
    Io(io::Error),
    /// The registry itself could not be constructed.
    Config(HdcError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidTenant(t) => write!(f, "invalid tenant id `{t}`"),
            RegistryError::NotFound(t) => write!(f, "no model file for tenant `{t}`"),
            RegistryError::Quarantined { tenant, reason } => {
                write!(f, "tenant `{tenant}` is quarantined: {reason}")
            }
            RegistryError::BudgetTooSmall { needed, budget } => write!(
                f,
                "model needs {needed} resident bytes but the budget is {budget}"
            ),
            RegistryError::DimMismatch { expected, actual } => write!(
                f,
                "model dimensionality {actual} does not match the registry's {expected}"
            ),
            RegistryError::Io(e) => write!(f, "registry i/o failure: {e}"),
            RegistryError::Config(e) => write!(f, "registry configuration: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Point-in-time registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Cache hits: [`ModelRegistry::get`] served a resident mapping.
    pub hits: u64,
    /// Cold loads: a file was mapped and validated.
    pub cold_loads: u64,
    /// Mappings evicted by the LRU to stay under the byte budget.
    pub evictions: u64,
    /// Successful hot-swaps through [`ModelRegistry::publish`].
    pub swaps: u64,
    /// Validation failures that quarantined a tenant.
    pub quarantines: u64,
}

/// One validated, mapped tenant model. Owned by `Arc`: the registry
/// holds one reference while resident, every in-flight request holds
/// another — the mapping unmaps when the last one drops.
#[derive(Debug)]
struct TenantEntry {
    bytes: Mapping,
    layout: PackedLayout,
}

impl TenantEntry {
    fn view(&self) -> PackedModelView<'_> {
        // The cheap invariants cannot fail: `layout` was validated
        // against these exact bytes at load, and the mapping base is
        // 64-byte aligned by construction. Degrade to the full check
        // (which reports the typed error) rather than unwrap.
        #[allow(clippy::redundant_closure_for_method_calls)]
        match PackedModelView::with_layout(&self.bytes, self.layout) {
            Ok(view) => view,
            Err(_) => unreachable!("entry bytes were validated at load"),
        }
    }
}

/// A clonable, thread-safe reference to one tenant's mapped model,
/// pinned against eviction and hot-swap for as long as it lives.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    tenant: Arc<str>,
    entry: Arc<TenantEntry>,
}

impl TenantHandle {
    /// The tenant this handle serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The zero-copy scoring view over the pinned mapping.
    pub fn view(&self) -> PackedModelView<'_> {
        self.entry.view()
    }

    /// Resident bytes this mapping accounts for.
    pub fn len_bytes(&self) -> usize {
        self.entry.bytes.len()
    }

    /// Whether the pinned region is a real OS memory mapping.
    pub fn is_mmap(&self) -> bool {
        self.entry.bytes.is_mmap()
    }
}

#[derive(Debug)]
struct Resident {
    entry: Arc<TenantEntry>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct State {
    resident: HashMap<Arc<str>, Resident>,
    quarantined: HashMap<String, String>,
    resident_bytes: usize,
    tick: u64,
    stats: RegistryStats,
}

/// The multi-tenant registry. See the [module docs](self) for the
/// serving model.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    config: RegistryConfig,
    ids: IdMemory,
    state: Mutex<State>,
}

impl ModelRegistry {
    /// Opens (creating if missing) a registry over `dir`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] if the directory cannot be created,
    /// [`RegistryError::Config`] if the shared id memory parameters are
    /// degenerate.
    pub fn open(dir: impl Into<PathBuf>, config: RegistryConfig) -> Result<Self, RegistryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let ids = IdMemory::seeded(config.dim, config.id_count, config.id_seed)
            .map_err(RegistryError::Config)?;
        Ok(ModelRegistry {
            dir,
            config,
            ids,
            state: Mutex::new(State::default()),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the registry was opened with.
    pub fn config(&self) -> RegistryConfig {
        self.config
    }

    /// The one seeded item memory every tenant shares (§4.2).
    pub fn shared_ids(&self) -> &IdMemory {
        &self.ids
    }

    /// The path a tenant's model file lives at.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidTenant`] for unsafe names.
    pub fn tenant_path(&self, tenant: &str) -> Result<PathBuf, RegistryError> {
        validate_tenant(tenant)?;
        Ok(self.dir.join(format!("{tenant}.{TENANT_EXT}")))
    }

    /// Resolves a tenant to a pinned mapped model: resident hit, or
    /// cold map-and-validate. Touches the LRU and evicts down to the
    /// byte budget after a cold load.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no file exists,
    /// [`RegistryError::Quarantined`] when validation failed (now or
    /// previously), [`RegistryError::BudgetTooSmall`] when the file can
    /// never fit.
    pub fn get(&self, tenant: &str) -> Result<TenantHandle, RegistryError> {
        let path = self.tenant_path(tenant)?;
        let mut state = lock(&self.state);
        if let Some(reason) = state.quarantined.get(tenant) {
            return Err(RegistryError::Quarantined {
                tenant: tenant.to_owned(),
                reason: reason.clone(),
            });
        }
        state.tick += 1;
        let tick = state.tick;
        if let Some((name, resident)) = state.resident.get_key_value(tenant) {
            let handle = TenantHandle {
                tenant: Arc::clone(name),
                entry: Arc::clone(&resident.entry),
            };
            let name = Arc::clone(name);
            if let Some(resident) = state.resident.get_mut(&name) {
                resident.last_used = tick;
            }
            state.stats.hits += 1;
            return Ok(handle);
        }
        // Cold load. Mapping + validation happen under the lock: the
        // simple discipline (one loader per file, LRU arithmetic in one
        // place) is worth more than concurrent cold loads, which the
        // page cache already makes cheap on re-map.
        let entry = match self.load(&path) {
            Ok(entry) => entry,
            Err(LoadError::Missing) => return Err(RegistryError::NotFound(tenant.to_owned())),
            Err(LoadError::Io(e)) => return Err(RegistryError::Io(e)),
            Err(LoadError::Invalid(reason)) => {
                state.stats.quarantines += 1;
                state.quarantined.insert(tenant.to_owned(), reason.clone());
                return Err(RegistryError::Quarantined {
                    tenant: tenant.to_owned(),
                    reason,
                });
            }
        };
        let needed = entry.bytes.len();
        if needed > self.config.byte_budget {
            return Err(RegistryError::BudgetTooSmall {
                needed,
                budget: self.config.byte_budget,
            });
        }
        state.stats.cold_loads += 1;
        let name: Arc<str> = Arc::from(tenant);
        let entry = Arc::new(entry);
        let handle = TenantHandle {
            tenant: Arc::clone(&name),
            entry: Arc::clone(&entry),
        };
        state.resident_bytes += needed;
        state.resident.insert(
            name,
            Resident {
                entry,
                last_used: tick,
            },
        );
        Self::evict_to_budget(&mut state, self.config.byte_budget, Some(tenant));
        Ok(handle)
    }

    /// Atomically publishes (or replaces) a tenant's model: v3 bytes to
    /// `*.tmp`, fsync, rename over the live file, fsync the directory,
    /// then republish the resident entry and lift any quarantine.
    /// Readers holding the previous [`TenantHandle`] keep serving the
    /// old mapping until they drop it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DimMismatch`] before any byte is written;
    /// otherwise I/O and (unlikely — we just wrote it) validation
    /// failures.
    pub fn publish(&self, tenant: &str, model: &QuantizedModel) -> Result<(), RegistryError> {
        let path = self.tenant_path(tenant)?;
        if model.dim() != self.config.dim {
            return Err(RegistryError::DimMismatch {
                expected: self.config.dim,
                actual: model.dim(),
            });
        }
        let tmp = self.dir.join(format!("{tenant}.{TENANT_EXT}{TMP_SUFFIX}"));
        {
            let mut file = File::create(&tmp)?;
            write_packed(model, &mut file)?;
            file.flush()?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        sync_dir(&self.dir)?;

        // Map the file we just made durable and swap it in (RCU: the
        // old Arc is dropped here; in-flight readers retire it).
        let entry = match self.load(&path) {
            Ok(entry) => Arc::new(entry),
            Err(LoadError::Missing) => return Err(RegistryError::NotFound(tenant.to_owned())),
            Err(LoadError::Io(e)) => return Err(RegistryError::Io(e)),
            Err(LoadError::Invalid(reason)) => {
                let mut state = lock(&self.state);
                state.stats.quarantines += 1;
                state.quarantined.insert(tenant.to_owned(), reason.clone());
                return Err(RegistryError::Quarantined {
                    tenant: tenant.to_owned(),
                    reason,
                });
            }
        };
        let needed = entry.bytes.len();
        if needed > self.config.byte_budget {
            return Err(RegistryError::BudgetTooSmall {
                needed,
                budget: self.config.byte_budget,
            });
        }
        let mut state = lock(&self.state);
        state.quarantined.remove(tenant);
        state.tick += 1;
        let tick = state.tick;
        state.stats.swaps += 1;
        if let Some(old) = state.resident.remove(tenant) {
            state.resident_bytes -= old.entry.bytes.len();
        }
        state.resident_bytes += needed;
        state.resident.insert(
            Arc::from(tenant),
            Resident {
                entry,
                last_used: tick,
            },
        );
        Self::evict_to_budget(&mut state, self.config.byte_budget, Some(tenant));
        Ok(())
    }

    /// Drops a tenant's resident mapping (it remains on disk and
    /// reloadable). Returns whether it was resident. In-flight handles
    /// keep the mapping alive until dropped.
    pub fn evict(&self, tenant: &str) -> bool {
        let mut state = lock(&self.state);
        match state.resident.remove(tenant) {
            Some(old) => {
                state.resident_bytes -= old.entry.bytes.len();
                state.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Clears a tenant's quarantine so the next [`ModelRegistry::get`]
    /// retries the file (e.g. after it was repaired out of band).
    /// Returns whether the tenant was quarantined.
    pub fn clear_quarantine(&self, tenant: &str) -> bool {
        lock(&self.state).quarantined.remove(tenant).is_some()
    }

    /// Currently quarantined tenants with their validation failures.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        let state = lock(&self.state);
        let mut list: Vec<(String, String)> = state
            .quarantined
            .iter()
            .map(|(t, r)| (t.clone(), r.clone()))
            .collect();
        list.sort();
        list
    }

    /// Bytes of model data currently resident (mapped and registry-
    /// referenced; in-flight handles to evicted mappings are excluded,
    /// matching what the LRU controls).
    pub fn resident_bytes(&self) -> usize {
        lock(&self.state).resident_bytes
    }

    /// Number of resident tenants.
    pub fn resident_count(&self) -> usize {
        lock(&self.state).resident.len()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> RegistryStats {
        lock(&self.state).stats
    }

    /// Tenants with a model file on disk, sorted.
    ///
    /// # Errors
    ///
    /// Returns the underlying directory-walk error.
    pub fn tenants(&self) -> Result<Vec<String>, RegistryError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(TENANT_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if validate_tenant(stem).is_ok() {
                        out.push(stem.to_owned());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn load(&self, path: &Path) -> Result<TenantEntry, LoadError> {
        let bytes = match Mapping::map_file(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Missing),
            Err(e) => return Err(LoadError::Io(e)),
        };
        let layout = PackedLayout::validate(&bytes).map_err(|e| invalid(&e))?;
        if layout.dim() != self.config.dim {
            return Err(LoadError::Invalid(format!(
                "model dimensionality {} does not match the registry's {}",
                layout.dim(),
                self.config.dim
            )));
        }
        // Prove the view is constructible (alignment) before the entry
        // is ever handed out.
        PackedModelView::with_layout(&bytes, layout).map_err(|e| invalid(&e))?;
        Ok(TenantEntry { bytes, layout })
    }

    /// Evicts least-recently-used residents until the budget holds,
    /// never evicting `keep` (the entry just loaded for the caller).
    fn evict_to_budget(state: &mut State, budget: usize, keep: Option<&str>) {
        while state.resident_bytes > budget {
            let victim = state
                .resident
                .iter()
                .filter(|(name, _)| Some(name.as_ref() as &str) != keep)
                .min_by_key(|(_, r)| r.last_used)
                .map(|(name, _)| Arc::clone(name));
            let Some(victim) = victim else {
                break;
            };
            if let Some(old) = state.resident.remove(&victim) {
                state.resident_bytes -= old.entry.bytes.len();
                state.stats.evictions += 1;
            }
        }
    }
}

enum LoadError {
    Missing,
    Io(io::Error),
    Invalid(String),
}

fn invalid(e: &ReadModelError) -> LoadError {
    LoadError::Invalid(e.to_string())
}

fn validate_tenant(tenant: &str) -> Result<(), RegistryError> {
    let ok = !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::InvalidTenant(tenant.to_owned()))
    }
}

fn lock(state: &Mutex<State>) -> MutexGuard<'_, State> {
    match state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{BinaryHv, HdcModel, IntHv, QuantizedModel};

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ghdc-registry-{tag}-{}", std::process::id()))
    }

    fn sample_model(dim: usize, seed: u64) -> QuantizedModel {
        let encoded: Vec<IntHv> = (0..4)
            .map(|c| IntHv::from(BinaryHv::random_seeded(dim, seed * 101 + c).unwrap()))
            .collect();
        let model = HdcModel::fit(&encoded, &[0, 1, 2, 3], 4).unwrap();
        QuantizedModel::from_model(&model, 8).unwrap()
    }

    fn config(dim: usize, budget: usize) -> RegistryConfig {
        RegistryConfig {
            byte_budget: budget,
            dim,
            ..RegistryConfig::default()
        }
    }

    #[test]
    fn publish_get_score_round_trip() {
        let dir = scratch("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 7);
        registry.publish("acme", &model).unwrap();

        let handle = registry.get("acme").unwrap();
        let query = BinaryHv::random_seeded(512, 99).unwrap();
        let mapped = handle.view().scores(&query).unwrap();
        let heap = model.pack().unwrap().scores(&query).unwrap();
        assert_eq!(
            mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            heap.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "mapped scores must be bit-identical to the heap path"
        );
        assert_eq!(registry.stats().hits + registry.stats().cold_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let dir = scratch("lru");
        let _ = std::fs::remove_dir_all(&dir);
        let model = sample_model(512, 3);
        let mut bytes = Vec::new();
        write_packed(&model, &mut bytes).unwrap();
        // Budget fits exactly two resident models.
        let registry = ModelRegistry::open(&dir, config(512, bytes.len() * 2)).unwrap();
        for tenant in ["t0", "t1", "t2", "t3"] {
            registry.publish(tenant, &model).unwrap();
            assert!(registry.resident_bytes() <= bytes.len() * 2);
        }
        registry.evict("t3");
        registry.evict("t2");
        for tenant in ["t0", "t1", "t2", "t3"] {
            let _ = registry.get(tenant).unwrap();
            assert!(
                registry.resident_bytes() <= bytes.len() * 2,
                "budget must hold after every load"
            );
            assert!(registry.resident_count() <= 2);
        }
        assert!(registry.stats().evictions > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicted_mapping_survives_until_last_reader_drops() {
        let dir = scratch("rcu");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 5);
        registry.publish("acme", &model).unwrap();
        let pinned = registry.get("acme").unwrap();
        assert!(registry.evict("acme"));

        // Hot-swap a different model while the old reader is pinned.
        let replacement = sample_model(512, 6);
        registry.publish("acme", &replacement).unwrap();
        let fresh = registry.get("acme").unwrap();

        let query = BinaryHv::random_seeded(512, 17).unwrap();
        let old_scores = pinned.view().scores(&query).unwrap();
        let new_scores = fresh.view().scores(&query).unwrap();
        let old_oracle = model.pack().unwrap().scores(&query).unwrap();
        let new_oracle = replacement.pack().unwrap().scores(&query).unwrap();
        assert_eq!(old_scores, old_oracle, "pinned reader sees the old model");
        assert_eq!(new_scores, new_oracle, "fresh reader sees the swap");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_with_typed_reasons() {
        let dir = scratch("quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 11);
        registry.publish("acme", &model).unwrap();

        // Flip one payload byte on disk.
        let path = registry.tenant_path("acme").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        registry.evict("acme");

        let err = registry.get("acme").unwrap_err();
        assert!(matches!(err, RegistryError::Quarantined { .. }), "{err}");
        // Sticky until cleared or republished.
        let err = registry.get("acme").unwrap_err();
        assert!(matches!(err, RegistryError::Quarantined { .. }));
        assert_eq!(registry.quarantined().len(), 1);

        // Publishing a good model lifts the quarantine.
        registry.publish("acme", &model).unwrap();
        assert!(registry.get("acme").is_ok());
        assert!(registry.quarantined().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dim_and_missing_and_bad_names_are_typed() {
        let dir = scratch("typed");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        assert!(matches!(
            registry.get("nobody").unwrap_err(),
            RegistryError::NotFound(_)
        ));
        assert!(matches!(
            registry.get("../escape").unwrap_err(),
            RegistryError::InvalidTenant(_)
        ));
        assert!(matches!(
            registry.publish("acme", &sample_model(256, 1)).unwrap_err(),
            RegistryError::DimMismatch {
                expected: 512,
                actual: 256
            }
        ));
        // A file written with the wrong dim quarantines on load.
        let other = sample_model(256, 2);
        let path = registry.tenant_path("alien").unwrap();
        let mut file = File::create(&path).unwrap();
        write_packed(&other, &mut file).unwrap();
        drop(file);
        assert!(matches!(
            registry.get("alien").unwrap_err(),
            RegistryError::Quarantined { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_ids_are_seed_stable_across_registries() {
        let dir_a = scratch("ids-a");
        let dir_b = scratch("ids-b");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
        let a = ModelRegistry::open(&dir_a, config(512, 1 << 20)).unwrap();
        let b = ModelRegistry::open(&dir_b, config(512, 1 << 20)).unwrap();
        assert_eq!(a.shared_ids().id(3), b.shared_ids().id(3));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn tenants_lists_disk_state() {
        let dir = scratch("list");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir, config(512, 1 << 20)).unwrap();
        let model = sample_model(512, 21);
        registry.publish("beta", &model).unwrap();
        registry.publish("alpha", &model).unwrap();
        assert_eq!(registry.tenants().unwrap(), vec!["alpha", "beta"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
