//! HDC classification model: training, retraining, and inference.

use crate::{HdcError, IntHv, SUB_NORM_CHUNK};

/// Which class-vector L2 norms inference uses when running with reduced
/// dimensions (§4.3.3, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormMode {
    /// Norms recomputed over exactly the dimensions in use, assembled from
    /// the per-128-dimension sub-norms the accelerator stores in its norm2
    /// memory. This is the paper's fix for dimension reduction.
    #[default]
    Updated,
    /// The full-model norms regardless of how many dimensions are used —
    /// the naive scheme Fig. 5 shows losing up to 20.1 % accuracy.
    Constant,
}

/// Options for [`HdcModel::predict_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictOptions {
    /// Number of leading dimensions to use (on-demand dimension reduction).
    pub dims: usize,
    /// Norm handling under dimension reduction.
    pub norm: NormMode,
}

impl PredictOptions {
    /// Full-dimensional prediction with updated norms.
    pub fn full(dim: usize) -> Self {
        PredictOptions {
            dims: dim,
            norm: NormMode::Updated,
        }
    }

    /// Reduced-dimension prediction.
    pub fn reduced(dims: usize, norm: NormMode) -> Self {
        PredictOptions { dims, norm }
    }
}

/// A trained (or in-training) HDC classification model: one integer class
/// hypervector per category plus the squared-norm bookkeeping the
/// similarity metric needs.
///
/// ```
/// use generic_hdc::{BinaryHv, HdcModel, IntHv};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let class_a = IntHv::from(BinaryHv::random_seeded(512, 1)?);
/// let class_b = IntHv::from(BinaryHv::random_seeded(512, 2)?);
/// let model = HdcModel::fit(&[class_a.clone(), class_b], &[0, 1], 2)?;
/// assert_eq!(model.predict(&class_a), 0);
/// # Ok(())
/// # }
/// ```
///
/// Similarity is cosine; since the query norm is constant across classes,
/// the model ranks classes by `(H·C_i) / ‖C_i‖` (§4.2.1 drops `‖H‖` and
/// works with `(H·C_i)² / ‖C_i‖²` in hardware — sign-preserving here).
#[derive(Debug, Clone, PartialEq)]
pub struct HdcModel {
    dim: usize,
    classes: Vec<IntHv>,
    /// Per class: squared L2 norm of each 128-dim chunk (norm2 memory).
    sub_norms2: Vec<Vec<f64>>,
}

impl HdcModel {
    /// Creates an empty model with all-zero class hypervectors.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or `n_classes == 0`.
    pub fn new(dim: usize, n_classes: usize) -> Result<Self, HdcError> {
        if n_classes == 0 {
            return Err(HdcError::invalid("n_classes", "must be positive"));
        }
        let classes = (0..n_classes)
            .map(|_| IntHv::zeros(dim))
            .collect::<Result<Vec<_>, _>>()?;
        let n_chunks = dim.div_ceil(SUB_NORM_CHUNK);
        Ok(HdcModel {
            dim,
            classes,
            sub_norms2: vec![vec![0.0; n_chunks]; n_classes],
        })
    }

    /// Single-pass training (model initialization, Fig. 1a): bundles each
    /// encoded sample into its class hypervector.
    ///
    /// # Errors
    ///
    /// Returns an error for empty input, mismatched `encoded`/`labels`
    /// lengths, out-of-range labels, or dimension mismatches.
    pub fn fit(encoded: &[IntHv], labels: &[usize], n_classes: usize) -> Result<Self, HdcError> {
        if encoded.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                format!(
                    "got {} labels for {} encoded samples",
                    labels.len(),
                    encoded.len()
                ),
            ));
        }
        let mut model = HdcModel::new(encoded[0].dim(), n_classes)?;
        for (hv, &label) in encoded.iter().zip(labels) {
            model.bundle(hv, label)?;
        }
        Ok(model)
    }

    /// Builds a model directly from per-class accumulator hypervectors
    /// (e.g. class rows read back from an accelerator).
    ///
    /// # Errors
    ///
    /// Returns an error if `classes` is empty or dimensionalities differ.
    pub fn from_class_vectors(classes: Vec<IntHv>) -> Result<Self, HdcError> {
        if classes.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let dim = classes[0].dim();
        if let Some(bad) = classes.iter().find(|c| c.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                expected: dim,
                actual: bad.dim(),
            });
        }
        let mut model = HdcModel::new(dim, classes.len())?;
        for (label, class) in classes.into_iter().enumerate() {
            model.classes[label] = class;
            model.refresh_class_norms(label);
        }
        Ok(model)
    }

    /// Adds one encoded sample to class `label`.
    ///
    /// # Errors
    ///
    /// Returns an error on an out-of-range label or dimension mismatch.
    pub fn bundle(&mut self, encoded: &IntHv, label: usize) -> Result<(), HdcError> {
        self.check_label(label)?;
        self.classes[label].add_assign(encoded)?;
        self.refresh_class_norms(label);
        Ok(())
    }

    /// One retraining epoch (Fig. 1c): every mispredicted sample is
    /// subtracted from the wrong class and added to the correct one.
    /// Returns the number of mispredictions in this epoch.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched inputs, bad labels, or dimension
    /// mismatches.
    pub fn retrain_epoch(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
    ) -> Result<usize, HdcError> {
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                format!(
                    "got {} labels for {} encoded samples",
                    labels.len(),
                    encoded.len()
                ),
            ));
        }
        let mut errors = 0;
        for (hv, &label) in encoded.iter().zip(labels) {
            self.check_label(label)?;
            let predicted = self.predict(hv);
            if predicted != label {
                errors += 1;
                self.classes[predicted].sub_assign(hv)?;
                self.classes[label].add_assign(hv)?;
                self.refresh_class_norms(predicted);
                self.refresh_class_norms(label);
            }
        }
        Ok(errors)
    }

    /// Single-sample online update (streaming edge learning): predicts the
    /// encoded sample and, on a mistake, applies the retraining correction
    /// (subtract from the wrong class, add to the right one). Returns
    /// whether the prediction was already correct.
    ///
    /// # Errors
    ///
    /// Returns an error on an out-of-range label or dimension mismatch.
    pub fn update(&mut self, encoded: &IntHv, label: usize) -> Result<bool, HdcError> {
        self.check_label(label)?;
        if encoded.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: encoded.dim(),
            });
        }
        let predicted = self.predict(encoded);
        if predicted == label {
            return Ok(true);
        }
        self.classes[predicted].sub_assign(encoded)?;
        self.classes[label].add_assign(encoded)?;
        self.refresh_class_norms(predicted);
        self.refresh_class_norms(label);
        Ok(false)
    }

    /// Runs up to `epochs` retraining epochs, stopping early once an epoch
    /// makes no mistakes. Returns the per-epoch error counts.
    ///
    /// Invalid inputs (already validated by [`HdcModel::fit`]) are treated
    /// as programmer error here to keep the training loop ergonomic; use
    /// [`HdcModel::retrain_epoch`] for explicit error handling.
    ///
    /// # Panics
    ///
    /// Panics if `encoded`/`labels` disagree with the model (lengths,
    /// labels, or dimensions).
    pub fn retrain(&mut self, encoded: &[IntHv], labels: &[usize], epochs: usize) -> Vec<usize> {
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let errors = self
                .retrain_epoch(encoded, labels)
                .expect("inputs validated by fit; retrain called with consistent data");
            let done = errors == 0;
            history.push(errors);
            if done {
                break;
            }
        }
        history
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The class hypervector for `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn class(&self, label: usize) -> &IntHv {
        &self.classes[label]
    }

    /// Iterator over class hypervectors in label order.
    pub fn iter(&self) -> std::slice::Iter<'_, IntHv> {
        self.classes.iter()
    }

    /// The stored per-chunk squared norms for class `label` (what the
    /// accelerator's norm2 memory holds).
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn sub_norms2(&self, label: usize) -> &[f64] {
        &self.sub_norms2[label]
    }

    /// Similarity scores against every class using the full dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn scores(&self, query: &IntHv) -> Vec<f64> {
        self.scores_with(query, PredictOptions::full(self.dim))
    }

    /// Similarity scores with explicit dimension-reduction options.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `opts.dims > self.dim()` or
    /// `opts.dims == 0`.
    pub fn scores_with(&self, query: &IntHv, opts: PredictOptions) -> Vec<f64> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        assert!(
            opts.dims > 0 && opts.dims <= self.dim,
            "dims {} out of range (1..={})",
            opts.dims,
            self.dim
        );
        self.classes
            .iter()
            .enumerate()
            .map(|(c, class)| {
                let dot = query
                    .dot_prefix(class, opts.dims)
                    .expect("dims validated above") as f64;
                let norm2 = match opts.norm {
                    NormMode::Constant => self.sub_norms2[c].iter().sum::<f64>(),
                    NormMode::Updated => {
                        let full_chunks = opts.dims / SUB_NORM_CHUNK;
                        let mut n2: f64 = self.sub_norms2[c][..full_chunks].iter().sum();
                        // Partial trailing chunk: fall back to exact values.
                        let rem_start = full_chunks * SUB_NORM_CHUNK;
                        if rem_start < opts.dims {
                            n2 += class.values()[rem_start..opts.dims]
                                .iter()
                                .map(|&v| f64::from(v) * f64::from(v))
                                .sum::<f64>();
                        }
                        n2
                    }
                };
                if norm2 == 0.0 {
                    0.0
                } else {
                    dot / norm2.sqrt()
                }
            })
            .collect()
    }

    /// Predicts the class of an encoded query (highest similarity score).
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn predict(&self, query: &IntHv) -> usize {
        self.predict_with(query, PredictOptions::full(self.dim))
    }

    /// Predicts with explicit dimension-reduction options.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality or `opts.dims` is inconsistent
    /// with the model.
    pub fn predict_with(&self, query: &IntHv, opts: PredictOptions) -> usize {
        let scores = self.scores_with(query, opts);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .expect("model has at least one class")
    }

    /// Fraction of `encoded` samples predicted as their `labels`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or dimensions.
    pub fn accuracy(&self, encoded: &[IntHv], labels: &[usize]) -> f64 {
        self.accuracy_with(encoded, labels, PredictOptions::full(self.dim))
    }

    /// Accuracy with explicit dimension-reduction options.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or dimensions.
    pub fn accuracy_with(&self, encoded: &[IntHv], labels: &[usize], opts: PredictOptions) -> f64 {
        assert_eq!(
            encoded.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        if encoded.is_empty() {
            return 0.0;
        }
        let correct = encoded
            .iter()
            .zip(labels)
            .filter(|&(hv, &label)| self.predict_with(hv, opts) == label)
            .count();
        correct as f64 / encoded.len() as f64
    }

    fn refresh_class_norms(&mut self, label: usize) {
        let values = self.classes[label].values();
        for (ci, chunk) in values.chunks(SUB_NORM_CHUNK).enumerate() {
            self.sub_norms2[label][ci] = chunk.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        }
    }

    fn check_label(&self, label: usize) -> Result<(), HdcError> {
        if label >= self.classes.len() {
            return Err(HdcError::LabelOutOfRange {
                label,
                n_classes: self.classes.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    /// Builds encoded samples from two well-separated prototypes.
    fn two_class_data(dim: usize, per_class: usize) -> (Vec<IntHv>, Vec<usize>) {
        let proto0 = BinaryHv::random_seeded(dim, 100).unwrap();
        let proto1 = BinaryHv::random_seeded(dim, 200).unwrap();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..per_class {
            for (label, proto) in [(0usize, &proto0), (1usize, &proto1)] {
                // Corrupt ~10% of bits deterministically.
                let mut hv = proto.clone();
                for k in 0..dim / 10 {
                    hv.flip_bit((k * 7 + i * 13 + label * 29) % dim);
                }
                encoded.push(IntHv::from(hv));
                labels.push(label);
            }
        }
        (encoded, labels)
    }

    #[test]
    fn fit_then_predict_separable() {
        let (encoded, labels) = two_class_data(2048, 10);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        assert_eq!(model.accuracy(&encoded, &labels), 1.0);
    }

    #[test]
    fn retrain_reduces_errors() {
        let (encoded, labels) = two_class_data(1024, 20);
        let mut model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let history = model.retrain(&encoded, &labels, 10);
        if history.len() > 1 {
            assert!(history.last().unwrap() <= history.first().unwrap());
        }
        assert!(model.accuracy(&encoded, &labels) >= 0.95);
    }

    #[test]
    fn retrain_stops_early_when_clean() {
        let (encoded, labels) = two_class_data(2048, 5);
        let mut model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let history = model.retrain(&encoded, &labels, 50);
        assert!(history.len() < 50, "should converge: {history:?}");
        assert_eq!(*history.last().unwrap(), 0);
    }

    #[test]
    fn bundle_updates_norms() {
        let mut model = HdcModel::new(256, 2).unwrap();
        let hv = IntHv::from(BinaryHv::random_seeded(256, 1).unwrap());
        model.bundle(&hv, 0).unwrap();
        let total: f64 = model.sub_norms2(0).iter().sum();
        assert_eq!(total, hv.norm2());
        assert_eq!(model.sub_norms2(1).iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn label_out_of_range_rejected() {
        let mut model = HdcModel::new(128, 2).unwrap();
        let hv = IntHv::zeros(128).unwrap();
        assert!(matches!(
            model.bundle(&hv, 2),
            Err(HdcError::LabelOutOfRange {
                label: 2,
                n_classes: 2
            })
        ));
    }

    #[test]
    fn reduced_dims_with_updated_norms_still_classifies() {
        let (encoded, labels) = two_class_data(2048, 10);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let acc = model.accuracy_with(
            &encoded,
            &labels,
            PredictOptions::reduced(512, NormMode::Updated),
        );
        assert!(acc >= 0.9, "acc = {acc}");
    }

    #[test]
    fn sub_norm_sum_equals_full_norm() {
        let (encoded, labels) = two_class_data(1024, 4);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        for c in 0..2 {
            let stored: f64 = model.sub_norms2(c).iter().sum();
            assert!((stored - model.class(c).norm2()).abs() < 1e-9);
        }
    }

    #[test]
    fn updated_and_constant_norms_agree_at_full_dim() {
        let (encoded, labels) = two_class_data(512, 4);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let q = &encoded[0];
        let a = model.scores_with(q, PredictOptions::reduced(512, NormMode::Updated));
        let b = model.scores_with(q, PredictOptions::reduced(512, NormMode::Constant));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_validates_input() {
        assert!(matches!(
            HdcModel::fit(&[], &[], 2),
            Err(HdcError::EmptyInput)
        ));
        let hv = IntHv::zeros(64).unwrap();
        assert!(HdcModel::fit(std::slice::from_ref(&hv), &[0, 1], 2).is_err());
        assert!(HdcModel::fit(&[hv], &[5], 2).is_err());
    }

    #[test]
    fn online_update_corrects_mistakes() {
        let (encoded, labels) = two_class_data(1024, 8);
        let mut model = HdcModel::new(1024, 2).unwrap();
        // Seed with one sample per class, then stream the rest.
        model.bundle(&encoded[0], labels[0]).unwrap();
        model.bundle(&encoded[1], labels[1]).unwrap();
        let mut corrections = 0;
        for (hv, &label) in encoded.iter().zip(&labels).skip(2) {
            if !model.update(hv, label).unwrap() {
                corrections += 1;
            }
        }
        // Streaming learning must converge on separable data.
        assert!(model.accuracy(&encoded, &labels) >= 0.95);
        // And norms must stay consistent with the class vectors.
        for c in 0..2 {
            let stored: f64 = model.sub_norms2(c).iter().sum();
            assert!((stored - model.class(c).norm2()).abs() < 1e-9);
        }
        let _ = corrections;
    }

    #[test]
    fn online_update_validates_inputs() {
        let mut model = HdcModel::new(128, 2).unwrap();
        let hv = IntHv::zeros(128).unwrap();
        assert!(model.update(&hv, 5).is_err());
        let wrong = IntHv::zeros(64).unwrap();
        assert!(model.update(&wrong, 0).is_err());
    }

    #[test]
    fn zero_model_scores_zero() {
        let model = HdcModel::new(128, 3).unwrap();
        let q = IntHv::from(BinaryHv::random_seeded(128, 9).unwrap());
        assert!(model.scores(&q).iter().all(|&s| s == 0.0));
    }
}
