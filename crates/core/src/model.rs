//! HDC classification model: training, retraining, and inference.
//!
//! This module is part of the panic-free serving surface: apart from the
//! documented contract `assert!`s on the scoring fast paths, no code path
//! reachable from a public API may `unwrap`/`expect` — fallible
//! operations return typed [`HdcError`]s instead.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::kernels::{self, KernelSet};
use crate::{HdcError, IntHv, SUB_NORM_CHUNK};

/// Queries scored together per [`ScoreBatch`] tile: small enough that a
/// tile of query chunks plus one class chunk stays L1-resident, large
/// enough that each class chunk loaded from cache is reused eight times.
const SCORE_TILE: usize = 8;

/// Serial retraining falls back to the scalar scoring kernel when a
/// sample's score work (`dims × classes`) is below this — too little to
/// amortize the blocked path's chunk bookkeeping (the two paths are
/// bit-identical, so the choice is invisible in results).
const RETRAIN_BLOCKED_MIN_WORK: usize = 4 * SUB_NORM_CHUNK;

/// Minimum samples per worker thread for the parallel retraining gather:
/// below this, thread spawn and join overhead outweighs the scoring work,
/// so the effective thread count is clamped down.
const RETRAIN_MIN_SAMPLES_PER_THREAD: usize = 16;

/// Which class-vector L2 norms inference uses when running with reduced
/// dimensions (§4.3.3, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormMode {
    /// Norms recomputed over exactly the dimensions in use, assembled from
    /// the per-128-dimension sub-norms the accelerator stores in its norm2
    /// memory. This is the paper's fix for dimension reduction.
    #[default]
    Updated,
    /// The full-model norms regardless of how many dimensions are used —
    /// the naive scheme Fig. 5 shows losing up to 20.1 % accuracy.
    Constant,
}

/// Options for [`HdcModel::predict_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictOptions {
    /// Number of leading dimensions to use (on-demand dimension reduction).
    pub dims: usize,
    /// Norm handling under dimension reduction.
    pub norm: NormMode,
}

impl PredictOptions {
    /// Full-dimensional prediction with updated norms.
    pub fn full(dim: usize) -> Self {
        PredictOptions {
            dims: dim,
            norm: NormMode::Updated,
        }
    }

    /// Reduced-dimension prediction.
    pub fn reduced(dims: usize, norm: NormMode) -> Self {
        PredictOptions { dims, norm }
    }
}

/// A trained (or in-training) HDC classification model: one integer class
/// hypervector per category plus the squared-norm bookkeeping the
/// similarity metric needs.
///
/// ```
/// use generic_hdc::{BinaryHv, HdcModel, IntHv};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let class_a = IntHv::from(BinaryHv::random_seeded(512, 1)?);
/// let class_b = IntHv::from(BinaryHv::random_seeded(512, 2)?);
/// let model = HdcModel::fit(&[class_a.clone(), class_b], &[0, 1], 2)?;
/// assert_eq!(model.predict(&class_a), 0);
/// # Ok(())
/// # }
/// ```
///
/// Similarity is cosine; since the query norm is constant across classes,
/// the model ranks classes by `(H·C_i) / ‖C_i‖` (§4.2.1 drops `‖H‖` and
/// works with `(H·C_i)² / ‖C_i‖²` in hardware — sign-preserving here).
#[derive(Debug, Clone, PartialEq)]
pub struct HdcModel {
    dim: usize,
    classes: Vec<IntHv>,
    /// Per class: squared L2 norm of each 128-dim chunk (norm2 memory).
    sub_norms2: Vec<Vec<f64>>,
    /// Per class: running (left-to-right) prefix sums of `sub_norms2`, so
    /// `norm2_prefix[c][k]` is the squared norm of the first `k` chunks.
    /// Length `n_chunks + 1`; the last entry is the full squared norm.
    norm2_prefix: Vec<Vec<f64>>,
    /// Per class: `sqrt` of the full squared norm, shared by every
    /// [`NormMode::Constant`] score instead of re-rooting per query.
    full_norms: Vec<f64>,
}

impl HdcModel {
    /// Creates an empty model with all-zero class hypervectors.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or `n_classes == 0`.
    pub fn new(dim: usize, n_classes: usize) -> Result<Self, HdcError> {
        if n_classes == 0 {
            return Err(HdcError::invalid("n_classes", "must be positive"));
        }
        let classes = (0..n_classes)
            .map(|_| IntHv::zeros(dim))
            .collect::<Result<Vec<_>, _>>()?;
        let n_chunks = dim.div_ceil(SUB_NORM_CHUNK);
        Ok(HdcModel {
            dim,
            classes,
            sub_norms2: vec![vec![0.0; n_chunks]; n_classes],
            norm2_prefix: vec![vec![0.0; n_chunks + 1]; n_classes],
            full_norms: vec![0.0; n_classes],
        })
    }

    /// Single-pass training (model initialization, Fig. 1a): bundles each
    /// encoded sample into its class hypervector.
    ///
    /// # Errors
    ///
    /// Returns an error for empty input, mismatched `encoded`/`labels`
    /// lengths, out-of-range labels, or dimension mismatches.
    pub fn fit(encoded: &[IntHv], labels: &[usize], n_classes: usize) -> Result<Self, HdcError> {
        if encoded.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                format!(
                    "got {} labels for {} encoded samples",
                    labels.len(),
                    encoded.len()
                ),
            ));
        }
        let mut model = HdcModel::new(encoded[0].dim(), n_classes)?;
        for (hv, &label) in encoded.iter().zip(labels) {
            model.bundle(hv, label)?;
        }
        Ok(model)
    }

    /// Builds a model directly from per-class accumulator hypervectors
    /// (e.g. class rows read back from an accelerator).
    ///
    /// # Errors
    ///
    /// Returns an error if `classes` is empty or dimensionalities differ.
    pub fn from_class_vectors(classes: Vec<IntHv>) -> Result<Self, HdcError> {
        if classes.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let dim = classes[0].dim();
        if let Some(bad) = classes.iter().find(|c| c.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                expected: dim,
                actual: bad.dim(),
            });
        }
        let mut model = HdcModel::new(dim, classes.len())?;
        for (label, class) in classes.into_iter().enumerate() {
            model.classes[label] = class;
            model.refresh_class_norms(label);
        }
        Ok(model)
    }

    /// Adds one encoded sample to class `label`.
    ///
    /// # Errors
    ///
    /// Returns an error on an out-of-range label or dimension mismatch.
    pub fn bundle(&mut self, encoded: &IntHv, label: usize) -> Result<(), HdcError> {
        self.check_label(label)?;
        self.classes[label].add_assign(encoded)?;
        self.refresh_class_norms(label);
        Ok(())
    }

    /// One retraining epoch (Fig. 1c): every mispredicted sample is
    /// subtracted from the wrong class and added to the correct one.
    /// Returns the number of mispredictions in this epoch.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched inputs, bad labels, or dimension
    /// mismatches.
    pub fn retrain_epoch(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
    ) -> Result<usize, HdcError> {
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                format!(
                    "got {} labels for {} encoded samples",
                    labels.len(),
                    encoded.len()
                ),
            ));
        }
        let opts = PredictOptions::full(self.dim);
        let k = self.classes.len();
        let kernels = kernels::active();
        // One scratch pair for the whole epoch: no per-sample allocation.
        let mut dots = vec![0i64; k];
        let mut scores: Vec<f64> = Vec::with_capacity(k);
        let mut errors = 0;
        for (hv, &label) in encoded.iter().zip(labels) {
            self.check_label(label)?;
            if hv.dim() != self.dim {
                return Err(HdcError::DimensionMismatch {
                    expected: self.dim,
                    actual: hv.dim(),
                });
            }
            dots.iter_mut().for_each(|d| *d = 0);
            self.accumulate_dots(hv, opts, kernels, &mut dots);
            scores.clear();
            for (c, &dot) in dots.iter().enumerate() {
                scores.push(self.normalize_score(dot, c, opts));
            }
            let predicted = argmax(&scores);
            if predicted != label {
                errors += 1;
                self.classes[predicted].sub_assign(hv)?;
                self.classes[label].add_assign(hv)?;
                self.refresh_class_norms(predicted);
                self.refresh_class_norms(label);
            }
        }
        Ok(errors)
    }

    /// Single-sample online update (streaming edge learning): predicts the
    /// encoded sample and, on a mistake, applies the retraining correction
    /// (subtract from the wrong class, add to the right one). Returns
    /// whether the prediction was already correct.
    ///
    /// # Errors
    ///
    /// Returns an error on an out-of-range label or dimension mismatch.
    pub fn update(&mut self, encoded: &IntHv, label: usize) -> Result<bool, HdcError> {
        self.check_label(label)?;
        if encoded.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: encoded.dim(),
            });
        }
        let predicted = self.predict(encoded);
        if predicted == label {
            return Ok(true);
        }
        self.classes[predicted].sub_assign(encoded)?;
        self.classes[label].add_assign(encoded)?;
        self.refresh_class_norms(predicted);
        self.refresh_class_norms(label);
        Ok(false)
    }

    /// Runs up to `epochs` retraining epochs, stopping early once an epoch
    /// makes no mistakes. Returns the per-epoch error counts.
    ///
    /// # Errors
    ///
    /// Returns an error if `encoded`/`labels` disagree with the model
    /// (lengths, labels, or dimensions).
    pub fn retrain(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
        epochs: usize,
    ) -> Result<Vec<usize>, HdcError> {
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let errors = self.retrain_epoch(encoded, labels)?;
            let done = errors == 0;
            history.push(errors);
            if done {
                break;
            }
        }
        Ok(history)
    }

    /// One retraining epoch through the retained scalar scoring kernel
    /// ([`scores_scalar`](HdcModel::scores_scalar)): the same
    /// mispredict-driven updates as [`retrain_epoch`](HdcModel::retrain_epoch)
    /// — and the same resulting model, since the blocked and scalar scores
    /// are bit-identical — but walking every class one dimension at a
    /// time. Kept as the perf-regression baseline of the `hotpaths`
    /// harness; hot paths must use [`retrain_epoch`](HdcModel::retrain_epoch)
    /// or [`retrain_epoch_parallel`](HdcModel::retrain_epoch_parallel).
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched inputs, bad labels, or dimension
    /// mismatches.
    pub fn retrain_epoch_scalar(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
    ) -> Result<usize, HdcError> {
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                format!(
                    "got {} labels for {} encoded samples",
                    labels.len(),
                    encoded.len()
                ),
            ));
        }
        let opts = PredictOptions::full(self.dim);
        let mut errors = 0;
        for (hv, &label) in encoded.iter().zip(labels) {
            self.check_label(label)?;
            if hv.dim() != self.dim {
                return Err(HdcError::DimensionMismatch {
                    expected: self.dim,
                    actual: hv.dim(),
                });
            }
            let predicted = argmax(&self.scores_scalar(hv, opts));
            if predicted != label {
                errors += 1;
                self.classes[predicted].sub_assign(hv)?;
                self.classes[label].add_assign(hv)?;
                self.refresh_class_norms(predicted);
                self.refresh_class_norms(label);
            }
        }
        Ok(errors)
    }

    /// Runs up to `epochs` scalar-kernel retraining epochs
    /// ([`retrain_epoch_scalar`](HdcModel::retrain_epoch_scalar)) with
    /// early stopping, mirroring [`retrain`](HdcModel::retrain) — the
    /// retained end-to-end scalar baseline.
    ///
    /// # Errors
    ///
    /// Returns an error if `encoded`/`labels` disagree with the model
    /// (lengths, labels, or dimensions).
    pub fn retrain_scalar(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
        epochs: usize,
    ) -> Result<Vec<usize>, HdcError> {
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let errors = self.retrain_epoch_scalar(encoded, labels)?;
            let done = errors == 0;
            history.push(errors);
            if done {
                break;
            }
        }
        Ok(history)
    }

    /// One retraining epoch with the prediction work fanned out over
    /// `n_threads` scoped worker threads, **bit-identical** to
    /// [`retrain_epoch`](HdcModel::retrain_epoch).
    ///
    /// Samples are processed in chunks: each chunk's score vectors are
    /// gathered in parallel against the chunk-entry model, then the
    /// mispredict-update sweep runs serially in sample order. An update
    /// only moves two class vectors, so a later sample's gathered scores
    /// stay valid except for the *dirty* classes, whose scores are
    /// recomputed on the spot with the same kernel — the serial semantics
    /// (every sample scored against the model after all previous updates)
    /// are preserved exactly.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched inputs, bad labels, or dimension
    /// mismatches.
    pub fn retrain_epoch_parallel(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
        n_threads: usize,
    ) -> Result<usize, HdcError> {
        // Adaptive thread clamp: below ~16 samples per worker the scoped
        // spawn/join overhead exceeds the gathered scoring work.
        let n_threads = n_threads
            .max(1)
            .min((encoded.len() / RETRAIN_MIN_SAMPLES_PER_THREAD).max(1));
        if n_threads == 1 {
            // Serial fallback: pick the scoring kernel by per-sample work.
            // Both paths produce bit-identical models, so the adaptive
            // choice only affects throughput, never results.
            return if self.dim * self.classes.len() < RETRAIN_BLOCKED_MIN_WORK {
                self.retrain_epoch_scalar(encoded, labels)
            } else {
                self.retrain_epoch(encoded, labels)
            };
        }
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                format!(
                    "got {} labels for {} encoded samples",
                    labels.len(),
                    encoded.len()
                ),
            ));
        }
        for &label in labels {
            self.check_label(label)?;
        }
        if let Some(bad) = encoded.iter().find(|hv| hv.dim() != self.dim) {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: bad.dim(),
            });
        }

        let opts = PredictOptions::full(self.dim);
        let k = self.classes.len();
        // Large enough chunks to amortize thread spawn, small enough that
        // dirty-class rescoring stays cheap in error-heavy early epochs.
        let chunk_len = (n_threads * 32).max(64);
        let mut errors = 0;
        let mut dirty = vec![false; k];
        for (chunk, chunk_labels) in encoded.chunks(chunk_len).zip(labels.chunks(chunk_len)) {
            // Parallel gather: score vectors against the chunk-entry model.
            let model = &*self;
            let part_len = chunk.len().div_ceil(n_threads);
            let mut gathered: Vec<Vec<f64>> = Vec::with_capacity(chunk.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunk
                    .chunks(part_len)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut out = Vec::with_capacity(part.len());
                            let mut scores = Vec::with_capacity(k);
                            for hv in part {
                                model.score_all(hv, opts, &mut scores);
                                out.push(scores.clone());
                            }
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join() {
                        Ok(part) => gathered.extend(part),
                        // A worker only panics if the process is already
                        // unwinding from a bug; propagate, don't mask.
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            });

            // Serial sweep in sample order, patching dirty-class scores.
            dirty.iter_mut().for_each(|d| *d = false);
            let mut any_dirty = false;
            for ((hv, &label), scores) in chunk.iter().zip(chunk_labels).zip(&mut gathered) {
                if any_dirty {
                    for (c, scr) in scores.iter_mut().enumerate() {
                        if dirty[c] {
                            let dot = hv.dot_prefix(&self.classes[c], opts.dims)?;
                            *scr = self.normalize_score(dot, c, opts);
                        }
                    }
                }
                let predicted = argmax(scores);
                if predicted != label {
                    errors += 1;
                    self.classes[predicted].sub_assign(hv)?;
                    self.classes[label].add_assign(hv)?;
                    self.refresh_class_norms(predicted);
                    self.refresh_class_norms(label);
                    dirty[predicted] = true;
                    dirty[label] = true;
                    any_dirty = true;
                }
            }
        }
        Ok(errors)
    }

    /// Runs up to `epochs` parallel retraining epochs
    /// ([`retrain_epoch_parallel`](HdcModel::retrain_epoch_parallel)) with
    /// early stopping, mirroring [`retrain`](HdcModel::retrain) — same
    /// per-epoch error counts, same final model, for any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if `encoded`/`labels` disagree with the model
    /// (lengths, labels, or dimensions).
    pub fn retrain_parallel(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
        epochs: usize,
        n_threads: usize,
    ) -> Result<Vec<usize>, HdcError> {
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let errors = self.retrain_epoch_parallel(encoded, labels, n_threads)?;
            let done = errors == 0;
            history.push(errors);
            if done {
                break;
            }
        }
        Ok(history)
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The class hypervector for `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn class(&self, label: usize) -> &IntHv {
        &self.classes[label]
    }

    /// Iterator over class hypervectors in label order.
    pub fn iter(&self) -> std::slice::Iter<'_, IntHv> {
        self.classes.iter()
    }

    /// The stored per-chunk squared norms for class `label` (what the
    /// accelerator's norm2 memory holds).
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn sub_norms2(&self, label: usize) -> &[f64] {
        &self.sub_norms2[label]
    }

    /// Similarity scores against every class using the full dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn scores(&self, query: &IntHv) -> Vec<f64> {
        self.scores_with(query, PredictOptions::full(self.dim))
    }

    /// Similarity scores with explicit dimension-reduction options.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `opts.dims > self.dim()` or
    /// `opts.dims == 0`.
    pub fn scores_with(&self, query: &IntHv, opts: PredictOptions) -> Vec<f64> {
        let mut out = Vec::new();
        self.score_all(query, opts, &mut out);
        out
    }

    /// Scores a query against **all** classes in one cache-blocked pass,
    /// writing into a reusable buffer.
    ///
    /// The query is walked in [`SUB_NORM_CHUNK`]-dimension blocks; each
    /// block is held hot while every class row streams through it once, so
    /// the per-query working set stays in L1 regardless of the class count.
    /// Dot products are exact `i64` sums and the norm lookups come from the
    /// per-model prefix tables, so the scores are bit-identical to the
    /// retained scalar reference
    /// ([`scores_scalar`](HdcModel::scores_scalar)).
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `opts.dims > self.dim()` or
    /// `opts.dims == 0`.
    pub fn score_all(&self, query: &IntHv, opts: PredictOptions, out: &mut Vec<f64>) {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        assert!(
            opts.dims > 0 && opts.dims <= self.dim,
            "dims {} out of range (1..={})",
            opts.dims,
            self.dim
        );
        let k = self.classes.len();
        let mut dots = vec![0i64; k];
        self.accumulate_dots(query, opts, kernels::active(), &mut dots);
        out.clear();
        out.reserve(k);
        for (c, &dot) in dots.iter().enumerate() {
            out.push(self.normalize_score(dot, c, opts));
        }
    }

    /// Adds every class's exact `i64` dot product with `query` (over the
    /// leading `opts.dims` dimensions) into `dots`, walking the query in
    /// [`SUB_NORM_CHUNK`] blocks and dispatching each block through the
    /// given SIMD kernel set. Integer sums are associative, so every
    /// kernel — and every chunk traversal order — produces bit-identical
    /// dots.
    fn accumulate_dots(
        &self,
        query: &IntHv,
        opts: PredictOptions,
        kernels: &KernelSet,
        dots: &mut [i64],
    ) {
        let q = &query.values()[..opts.dims];
        for start in (0..opts.dims).step_by(SUB_NORM_CHUNK) {
            let end = (start + SUB_NORM_CHUNK).min(opts.dims);
            let qb = &q[start..end];
            for (dot, class) in dots.iter_mut().zip(&self.classes) {
                *dot += kernels.dot_i32(qb, &class.values()[start..end]);
            }
        }
    }

    /// Divides a class dot product by the class norm the options select,
    /// using the precomputed norm tables.
    fn normalize_score(&self, dot: i64, c: usize, opts: PredictOptions) -> f64 {
        match opts.norm {
            NormMode::Constant => {
                let norm = self.full_norms[c];
                if norm == 0.0 {
                    0.0
                } else {
                    dot as f64 / norm
                }
            }
            NormMode::Updated => {
                let full_chunks = opts.dims / SUB_NORM_CHUNK;
                let mut n2 = self.norm2_prefix[c][full_chunks];
                // Partial trailing chunk: fall back to exact values.
                let rem_start = full_chunks * SUB_NORM_CHUNK;
                if rem_start < opts.dims {
                    n2 += self.classes[c].values()[rem_start..opts.dims]
                        .iter()
                        .map(|&v| f64::from(v) * f64::from(v))
                        .sum::<f64>();
                }
                if n2 == 0.0 {
                    0.0
                } else {
                    dot as f64 / n2.sqrt()
                }
            }
        }
    }

    /// The retained scalar reference implementation of
    /// [`scores_with`](HdcModel::scores_with): one class at a time,
    /// re-summing the sub-norm chunks per query. Kept for the
    /// kernel-equivalence property tests and the `hotpaths` baseline; hot
    /// paths must use [`score_all`](HdcModel::score_all).
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `opts.dims > self.dim()` or
    /// `opts.dims == 0`.
    pub fn scores_scalar(&self, query: &IntHv, opts: PredictOptions) -> Vec<f64> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        assert!(
            opts.dims > 0 && opts.dims <= self.dim,
            "dims {} out of range (1..={})",
            opts.dims,
            self.dim
        );
        self.classes
            .iter()
            .enumerate()
            .map(|(c, class)| {
                let dot = match query.dot_prefix(class, opts.dims) {
                    Ok(d) => d as f64,
                    Err(_) => unreachable!("dims validated by the asserts above"),
                };
                let norm2 = match opts.norm {
                    NormMode::Constant => self.sub_norms2[c].iter().sum::<f64>(),
                    NormMode::Updated => {
                        let full_chunks = opts.dims / SUB_NORM_CHUNK;
                        let mut n2: f64 = self.sub_norms2[c][..full_chunks].iter().sum();
                        // Partial trailing chunk: fall back to exact values.
                        let rem_start = full_chunks * SUB_NORM_CHUNK;
                        if rem_start < opts.dims {
                            n2 += class.values()[rem_start..opts.dims]
                                .iter()
                                .map(|&v| f64::from(v) * f64::from(v))
                                .sum::<f64>();
                        }
                        n2
                    }
                };
                if norm2 == 0.0 {
                    0.0
                } else {
                    dot / norm2.sqrt()
                }
            })
            .collect()
    }

    /// Predicts the class of an encoded query (highest similarity score).
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn predict(&self, query: &IntHv) -> usize {
        self.predict_with(query, PredictOptions::full(self.dim))
    }

    /// Predicts with explicit dimension-reduction options.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality or `opts.dims` is inconsistent
    /// with the model.
    pub fn predict_with(&self, query: &IntHv, opts: PredictOptions) -> usize {
        let scores = self.scores_with(query, opts);
        argmax(&scores)
    }

    /// Non-panicking [`predict_with`](HdcModel::predict_with): the
    /// serving-surface entry point, validating the query dimensionality
    /// and `opts.dims` instead of asserting on them.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when the query width
    /// disagrees with the model and [`HdcError::InvalidParameter`] when
    /// `opts.dims` is zero or exceeds the model dimensionality.
    pub fn try_predict_with(&self, query: &IntHv, opts: PredictOptions) -> Result<usize, HdcError> {
        if query.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        if opts.dims == 0 || opts.dims > self.dim {
            return Err(HdcError::invalid(
                "dims",
                format!("{} out of range (1..={})", opts.dims, self.dim),
            ));
        }
        Ok(self.predict_with(query, opts))
    }

    /// Predicts every query in one cache-blocked pass through a throwaway
    /// [`ScoreBatch`] engine. Callers on a steady-state serving path
    /// should hold their own [`ScoreBatch`] and use
    /// [`ScoreBatch::predict_into`] to avoid the per-call scratch
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if any query dimensionality or `opts.dims` is inconsistent
    /// with the model.
    pub fn predict_batch(&self, queries: &[IntHv], opts: PredictOptions) -> Vec<usize> {
        let mut batch = ScoreBatch::new();
        let mut out = Vec::with_capacity(queries.len());
        batch.predict_into(self, queries, opts, &mut out);
        out
    }

    /// Fraction of `encoded` samples predicted as their `labels`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or dimensions.
    pub fn accuracy(&self, encoded: &[IntHv], labels: &[usize]) -> f64 {
        self.accuracy_with(encoded, labels, PredictOptions::full(self.dim))
    }

    /// Accuracy with explicit dimension-reduction options.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or dimensions.
    pub fn accuracy_with(&self, encoded: &[IntHv], labels: &[usize], opts: PredictOptions) -> f64 {
        assert_eq!(
            encoded.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        if encoded.is_empty() {
            return 0.0;
        }
        let correct = encoded
            .iter()
            .zip(labels)
            .filter(|&(hv, &label)| self.predict_with(hv, opts) == label)
            .count();
        correct as f64 / encoded.len() as f64
    }

    fn refresh_class_norms(&mut self, label: usize) {
        let values = self.classes[label].values();
        for (ci, chunk) in values.chunks(SUB_NORM_CHUNK).enumerate() {
            self.sub_norms2[label][ci] = chunk.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        }
        // Rebuild the prefix table with the same left-to-right fold the
        // scalar reference uses, so cached lookups are bit-identical.
        let mut running = 0.0f64;
        self.norm2_prefix[label][0] = 0.0;
        for (ci, &chunk2) in self.sub_norms2[label].iter().enumerate() {
            running += chunk2;
            self.norm2_prefix[label][ci + 1] = running;
        }
        self.full_norms[label] = if running == 0.0 { 0.0 } else { running.sqrt() };
    }

    fn check_label(&self, label: usize) -> Result<(), HdcError> {
        if label >= self.classes.len() {
            return Err(HdcError::LabelOutOfRange {
                label,
                n_classes: self.classes.len(),
            });
        }
        Ok(())
    }
}

/// Index of the maximum score with [`Iterator::max_by`] tie semantics
/// (the last maximal element wins), shared by every prediction path so
/// serial and parallel retraining agree bit-for-bit. Panic-free: NaN
/// scores are never selected (all comparisons against them are false)
/// and an empty slice — impossible for a constructed model, which always
/// has at least one class — maps to index 0.
fn argmax(scores: &[f64]) -> usize {
    let mut best = f64::NEG_INFINITY;
    let mut idx = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s >= best {
            best = s;
            idx = i;
        }
    }
    idx
}

/// Batched inference engine: scores B queries × C classes in cache-blocked
/// tiles with a reusable scratch arena.
///
/// Queries are processed [`SCORE_TILE`] at a time; within a tile the walk
/// is dimension-chunk-major so each class chunk loaded from cache is
/// reused across every query in the tile, and each chunk's dot product is
/// dispatched through the SIMD [`kernels`] layer. Dot products are exact
/// `i64` sums and normalization reuses the model's prefix-norm tables, so
/// batched scores are **bit-identical** to per-query
/// [`HdcModel::score_all`] and to the retained scalar reference
/// [`HdcModel::scores_scalar`].
///
/// The engine owns its dot-accumulator scratch and the output APIs write
/// into caller-provided buffers, so a warmed-up engine performs **zero
/// heap allocations** on the steady-state path (pinned by the
/// `alloc_regression` test and the `throughput` bench gate).
///
/// ```
/// use generic_hdc::{BinaryHv, HdcModel, IntHv, PredictOptions, ScoreBatch};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let class_a = IntHv::from(BinaryHv::random_seeded(512, 1)?);
/// let class_b = IntHv::from(BinaryHv::random_seeded(512, 2)?);
/// let queries = vec![class_a.clone(), class_b.clone()];
/// let model = HdcModel::fit(&[class_a, class_b], &[0, 1], 2)?;
///
/// let mut engine = ScoreBatch::new();
/// let mut labels = Vec::new();
/// engine.predict_into(&model, &queries, PredictOptions::full(512), &mut labels);
/// assert_eq!(labels, [0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScoreBatch {
    /// Kernel set every chunk dot dispatches through (not part of the
    /// value — all sets are bit-identical).
    kernels: &'static KernelSet,
    /// Scratch: row-major tile-query × class dot accumulators.
    dots: Vec<i64>,
}

impl Default for ScoreBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreBatch {
    /// Creates an engine dispatching through the fastest kernel set the
    /// host supports (see [`kernels::active`]).
    pub fn new() -> Self {
        Self::with_kernels(kernels::active())
    }

    /// Creates an engine pinned to a specific kernel set (used by the
    /// conformance harness to sweep every detected ISA).
    pub(crate) fn with_kernels(kernels: &'static KernelSet) -> Self {
        ScoreBatch {
            kernels,
            dots: Vec::new(),
        }
    }

    /// The ISA this engine's kernels run on.
    pub fn isa(&self) -> kernels::Isa {
        self.kernels.isa()
    }

    /// Scores every query against every class, appending the row-major
    /// `queries.len() × model.n_classes()` score matrix to `out`
    /// (`out` is cleared first). Bit-identical to calling
    /// [`HdcModel::score_all`] per query.
    ///
    /// # Panics
    ///
    /// Panics if any query dimensionality or `opts.dims` is inconsistent
    /// with the model.
    pub fn scores_into(
        &mut self,
        model: &HdcModel,
        queries: &[IntHv],
        opts: PredictOptions,
        out: &mut Vec<f64>,
    ) {
        let k = model.classes.len();
        out.clear();
        out.reserve(queries.len() * k);
        self.for_each_tile(model, queries, opts, |model, dots, _tile| {
            for row in dots.chunks_exact(k) {
                for (c, &dot) in row.iter().enumerate() {
                    out.push(model.normalize_score(dot, c, opts));
                }
            }
        });
    }

    /// Predicts every query, appending one label per query to `out`
    /// (`out` is cleared first). Ties resolve exactly as
    /// [`HdcModel::predict`]: the last maximal score wins.
    ///
    /// # Panics
    ///
    /// Panics if any query dimensionality or `opts.dims` is inconsistent
    /// with the model.
    pub fn predict_into(
        &mut self,
        model: &HdcModel,
        queries: &[IntHv],
        opts: PredictOptions,
        out: &mut Vec<usize>,
    ) {
        let k = model.classes.len();
        out.clear();
        out.reserve(queries.len());
        self.for_each_tile(model, queries, opts, |model, dots, _tile| {
            for row in dots.chunks_exact(k) {
                // Inline argmax over normalized scores with the shared
                // last-max-wins tie rule, without materializing the row.
                let mut best = f64::NEG_INFINITY;
                let mut idx = 0;
                for (c, &dot) in row.iter().enumerate() {
                    let s = model.normalize_score(dot, c, opts);
                    if s >= best {
                        best = s;
                        idx = c;
                    }
                }
                out.push(idx);
            }
        });
    }

    /// Validates inputs, then gathers each [`SCORE_TILE`]-query tile's dot
    /// products into the scratch arena and hands the row-major
    /// `tile.len() × n_classes` slice to `emit`.
    fn for_each_tile(
        &mut self,
        model: &HdcModel,
        queries: &[IntHv],
        opts: PredictOptions,
        mut emit: impl FnMut(&HdcModel, &[i64], &[IntHv]),
    ) {
        assert!(
            opts.dims > 0 && opts.dims <= model.dim,
            "dims {} out of range (1..={})",
            opts.dims,
            model.dim
        );
        for query in queries {
            assert_eq!(query.dim(), model.dim, "query dimension mismatch");
        }
        let k = model.classes.len();
        if self.dots.len() < SCORE_TILE * k {
            self.dots.resize(SCORE_TILE * k, 0);
        }
        for tile in queries.chunks(SCORE_TILE) {
            let dots = &mut self.dots[..tile.len() * k];
            dots.iter_mut().for_each(|d| *d = 0);
            // Chunk-major over the tile: one class chunk is reused by
            // every query in the tile before the walk moves on.
            for start in (0..opts.dims).step_by(SUB_NORM_CHUNK) {
                let end = (start + SUB_NORM_CHUNK).min(opts.dims);
                for (c, class) in model.classes.iter().enumerate() {
                    let cb = &class.values()[start..end];
                    for (qi, query) in tile.iter().enumerate() {
                        let qb = &query.values()[start..end];
                        dots[qi * k + c] += self.kernels.dot_i32(qb, cb);
                    }
                }
            }
            emit(model, dots, tile);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    /// Builds encoded samples from two well-separated prototypes.
    fn two_class_data(dim: usize, per_class: usize) -> (Vec<IntHv>, Vec<usize>) {
        let proto0 = BinaryHv::random_seeded(dim, 100).unwrap();
        let proto1 = BinaryHv::random_seeded(dim, 200).unwrap();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..per_class {
            for (label, proto) in [(0usize, &proto0), (1usize, &proto1)] {
                // Corrupt ~10% of bits deterministically.
                let mut hv = proto.clone();
                for k in 0..dim / 10 {
                    hv.flip_bit((k * 7 + i * 13 + label * 29) % dim);
                }
                encoded.push(IntHv::from(hv));
                labels.push(label);
            }
        }
        (encoded, labels)
    }

    #[test]
    fn fit_then_predict_separable() {
        let (encoded, labels) = two_class_data(2048, 10);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        assert_eq!(model.accuracy(&encoded, &labels), 1.0);
    }

    #[test]
    fn retrain_reduces_errors() {
        let (encoded, labels) = two_class_data(1024, 20);
        let mut model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let history = model.retrain(&encoded, &labels, 10).unwrap();
        if history.len() > 1 {
            assert!(history.last().unwrap() <= history.first().unwrap());
        }
        assert!(model.accuracy(&encoded, &labels) >= 0.95);
    }

    #[test]
    fn retrain_stops_early_when_clean() {
        let (encoded, labels) = two_class_data(2048, 5);
        let mut model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let history = model.retrain(&encoded, &labels, 50).unwrap();
        assert!(history.len() < 50, "should converge: {history:?}");
        assert_eq!(*history.last().unwrap(), 0);
    }

    #[test]
    fn bundle_updates_norms() {
        let mut model = HdcModel::new(256, 2).unwrap();
        let hv = IntHv::from(BinaryHv::random_seeded(256, 1).unwrap());
        model.bundle(&hv, 0).unwrap();
        let total: f64 = model.sub_norms2(0).iter().sum();
        assert_eq!(total, hv.norm2());
        assert_eq!(model.sub_norms2(1).iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn label_out_of_range_rejected() {
        let mut model = HdcModel::new(128, 2).unwrap();
        let hv = IntHv::zeros(128).unwrap();
        assert!(matches!(
            model.bundle(&hv, 2),
            Err(HdcError::LabelOutOfRange {
                label: 2,
                n_classes: 2
            })
        ));
    }

    #[test]
    fn reduced_dims_with_updated_norms_still_classifies() {
        let (encoded, labels) = two_class_data(2048, 10);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let acc = model.accuracy_with(
            &encoded,
            &labels,
            PredictOptions::reduced(512, NormMode::Updated),
        );
        assert!(acc >= 0.9, "acc = {acc}");
    }

    #[test]
    fn sub_norm_sum_equals_full_norm() {
        let (encoded, labels) = two_class_data(1024, 4);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        for c in 0..2 {
            let stored: f64 = model.sub_norms2(c).iter().sum();
            assert!((stored - model.class(c).norm2()).abs() < 1e-9);
        }
    }

    #[test]
    fn updated_and_constant_norms_agree_at_full_dim() {
        let (encoded, labels) = two_class_data(512, 4);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let q = &encoded[0];
        let a = model.scores_with(q, PredictOptions::reduced(512, NormMode::Updated));
        let b = model.scores_with(q, PredictOptions::reduced(512, NormMode::Constant));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_validates_input() {
        assert!(matches!(
            HdcModel::fit(&[], &[], 2),
            Err(HdcError::EmptyInput)
        ));
        let hv = IntHv::zeros(64).unwrap();
        assert!(HdcModel::fit(std::slice::from_ref(&hv), &[0, 1], 2).is_err());
        assert!(HdcModel::fit(&[hv], &[5], 2).is_err());
    }

    #[test]
    fn online_update_corrects_mistakes() {
        let (encoded, labels) = two_class_data(1024, 8);
        let mut model = HdcModel::new(1024, 2).unwrap();
        // Seed with one sample per class, then stream the rest.
        model.bundle(&encoded[0], labels[0]).unwrap();
        model.bundle(&encoded[1], labels[1]).unwrap();
        let mut corrections = 0;
        for (hv, &label) in encoded.iter().zip(&labels).skip(2) {
            if !model.update(hv, label).unwrap() {
                corrections += 1;
            }
        }
        // Streaming learning must converge on separable data.
        assert!(model.accuracy(&encoded, &labels) >= 0.95);
        // And norms must stay consistent with the class vectors.
        for c in 0..2 {
            let stored: f64 = model.sub_norms2(c).iter().sum();
            assert!((stored - model.class(c).norm2()).abs() < 1e-9);
        }
        let _ = corrections;
    }

    #[test]
    fn online_update_validates_inputs() {
        let mut model = HdcModel::new(128, 2).unwrap();
        let hv = IntHv::zeros(128).unwrap();
        assert!(model.update(&hv, 5).is_err());
        let wrong = IntHv::zeros(64).unwrap();
        assert!(model.update(&wrong, 0).is_err());
    }

    #[test]
    fn zero_model_scores_zero() {
        let model = HdcModel::new(128, 3).unwrap();
        let q = IntHv::from(BinaryHv::random_seeded(128, 9).unwrap());
        assert!(model.scores(&q).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn blocked_scores_match_scalar_reference() {
        // Includes a non-multiple-of-128 dimensionality so the partial
        // trailing chunk path is exercised.
        for dim in [512usize, 576, 1000] {
            let (encoded, labels) = two_class_data(dim, 6);
            let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
            for q in encoded.iter().take(4) {
                for dims in [dim, dim / 2, 100] {
                    for norm in [NormMode::Updated, NormMode::Constant] {
                        let opts = PredictOptions::reduced(dims, norm);
                        assert_eq!(
                            model.scores_with(q, opts),
                            model.scores_scalar(q, opts),
                            "dim={dim} dims={dims} norm={norm:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (encoded, labels) = two_class_data(1024, 8);
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let opts = PredictOptions::full(1024);
        let batch = model.predict_batch(&encoded, opts);
        for (hv, &p) in encoded.iter().zip(&batch) {
            assert_eq!(p, model.predict(hv));
        }
    }

    #[test]
    fn score_batch_matches_scalar_reference_on_every_kernel_set() {
        // Batch sizes straddle the tile width; dims include a partial
        // trailing chunk; both norm modes covered; and the sweep runs on
        // every kernel set the host supports, not just the active one.
        for dim in [512usize, 1000] {
            let (encoded, labels) = two_class_data(dim, 9); // 18 queries
            let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
            for isa in crate::kernels::available() {
                let set = crate::kernels::for_isa(isa).unwrap();
                let mut engine = ScoreBatch::with_kernels(set);
                assert_eq!(engine.isa(), isa);
                for n in [0usize, 1, 7, 8, 9, 18] {
                    let queries = &encoded[..n];
                    for dims in [dim, dim / 2, 100] {
                        for norm in [NormMode::Updated, NormMode::Constant] {
                            let opts = PredictOptions::reduced(dims, norm);
                            let mut batched = Vec::new();
                            engine.scores_into(&model, queries, opts, &mut batched);
                            let expect: Vec<f64> = queries
                                .iter()
                                .flat_map(|q| model.scores_scalar(q, opts))
                                .collect();
                            assert_eq!(
                                batched, expect,
                                "isa={isa} dim={dim} n={n} dims={dims} norm={norm:?}"
                            );
                            let mut preds = Vec::new();
                            engine.predict_into(&model, queries, opts, &mut preds);
                            let expect_preds: Vec<usize> = queries
                                .iter()
                                .map(|q| model.predict_with(q, opts))
                                .collect();
                            assert_eq!(preds, expect_preds, "isa={isa} dim={dim} n={n}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn awkward_dims_match_scalar_reference_on_every_kernel_set() {
        // Pruned supports are arbitrary-length, so the blocked scorers
        // must stay exact when the dimensionality is not a multiple of
        // the 128-dim sub-norm chunk — including a lone trailing
        // dimension and a chunk-straddling 129. The tail chunk must not
        // read padding as signal.
        for dim in [1usize, 127, 129, 4095] {
            let (encoded, labels) = two_class_data(dim, 5);
            let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
            for norm in [NormMode::Updated, NormMode::Constant] {
                let opts = PredictOptions::reduced(dim, norm);
                for q in encoded.iter().take(4) {
                    let expect = model.scores_scalar(q, opts);
                    let mut blocked = Vec::new();
                    model.score_all(q, opts, &mut blocked);
                    assert_eq!(blocked, expect, "score_all dim={dim} norm={norm:?}");
                }
                for isa in crate::kernels::available() {
                    let set = crate::kernels::for_isa(isa).unwrap();
                    let mut engine = ScoreBatch::with_kernels(set);
                    let mut batched = Vec::new();
                    engine.scores_into(&model, &encoded, opts, &mut batched);
                    let expect: Vec<f64> = encoded
                        .iter()
                        .flat_map(|q| model.scores_scalar(q, opts))
                        .collect();
                    assert_eq!(batched, expect, "isa={isa} dim={dim} norm={norm:?}");
                }
            }
        }
    }

    #[test]
    fn score_batch_ties_resolve_like_argmax() {
        // A zero model scores 0.0 for every class: the shared
        // last-max-wins rule must pick the last class everywhere.
        let model = HdcModel::new(256, 3).unwrap();
        let queries: Vec<IntHv> = (0..5)
            .map(|s| IntHv::from(BinaryHv::random_seeded(256, 77 + s).unwrap()))
            .collect();
        let mut engine = ScoreBatch::new();
        let mut preds = Vec::new();
        engine.predict_into(&model, &queries, PredictOptions::full(256), &mut preds);
        assert!(preds.iter().all(|&p| p == 2), "{preds:?}");
        for q in &queries {
            assert_eq!(model.predict(q), 2);
        }
    }

    #[test]
    fn parallel_retraining_is_bit_identical_to_serial() {
        let (encoded, labels) = two_class_data(1024, 20);
        for threads in [2usize, 3, 8] {
            let mut serial = HdcModel::fit(&encoded, &labels, 2).unwrap();
            let mut parallel = serial.clone();
            let hist_s = serial.retrain(&encoded, &labels, 10).unwrap();
            let hist_p = parallel
                .retrain_parallel(&encoded, &labels, 10, threads)
                .unwrap();
            assert_eq!(hist_s, hist_p, "threads={threads}");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn scalar_retraining_is_bit_identical_to_blocked() {
        let (encoded, labels) = two_class_data(1000, 20); // not a multiple of 128
        let mut blocked = HdcModel::fit(&encoded, &labels, 2).unwrap();
        let mut scalar = blocked.clone();
        let hist_b = blocked.retrain(&encoded, &labels, 10).unwrap();
        let hist_s = scalar.retrain_scalar(&encoded, &labels, 10).unwrap();
        assert_eq!(hist_b, hist_s);
        assert_eq!(blocked, scalar);
    }

    #[test]
    fn parallel_retraining_validates_inputs() {
        let mut model = HdcModel::new(128, 2).unwrap();
        let hv = IntHv::zeros(128).unwrap();
        assert!(model
            .retrain_epoch_parallel(std::slice::from_ref(&hv), &[0, 1], 4)
            .is_err());
        assert!(model
            .retrain_epoch_parallel(std::slice::from_ref(&hv), &[5], 4)
            .is_err());
        let wrong = IntHv::zeros(64).unwrap();
        assert!(model
            .retrain_epoch_parallel(&[wrong.clone(), wrong], &[0, 0], 4)
            .is_err());
    }
}
