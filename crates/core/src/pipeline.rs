//! The high-level classification pipeline: a [`GenericEncoder`] and an
//! [`HdcModel`] packaged as one trainable, persistable unit — the shape an
//! edge deployment actually ships.

use std::io::{self, Read, Write};

use crate::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use crate::io::ReadModelError;
use crate::{HdcError, HdcModel, IntHv, PredictOptions, Quantizer};

/// A trained encode-and-classify pipeline.
///
/// ```
/// use generic_hdc::{HdcPipeline, encoding::GenericEncoderSpec};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let features: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![if i % 2 == 0 { 1.0 } else { 9.0 }; 8])
///     .collect();
/// let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
///
/// let spec = GenericEncoderSpec::new(1024, 8).with_seed(7);
/// let pipeline = HdcPipeline::train(spec, &features, &labels, 2, 10)?;
/// assert_eq!(pipeline.predict(&[1.0; 8])?, 0);
/// assert_eq!(pipeline.predict(&[9.0; 8])?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HdcPipeline {
    encoder: GenericEncoder,
    model: HdcModel,
}

impl HdcPipeline {
    /// Trains a pipeline end to end: fits the quantizer, encodes the
    /// training data, bundles the initial model, and retrains for up to
    /// `epochs` epochs.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid spec, empty/ragged data, or
    /// out-of-range labels.
    pub fn train(
        spec: GenericEncoderSpec,
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        epochs: usize,
    ) -> Result<Self, HdcError> {
        let encoder = GenericEncoder::from_data(spec, features)?;
        let encoded = encoder.encode_batch(features)?;
        let mut model = HdcModel::fit(&encoded, labels, n_classes)?;
        for _ in 0..epochs {
            if model.retrain_epoch(&encoded, labels)? == 0 {
                break;
            }
        }
        Ok(HdcPipeline { encoder, model })
    }

    /// Assembles a pipeline from pre-built parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the encoder and model dimensionalities differ.
    pub fn from_parts(encoder: GenericEncoder, model: HdcModel) -> Result<Self, HdcError> {
        if encoder.dim() != model.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: encoder.dim(),
                actual: model.dim(),
            });
        }
        Ok(HdcPipeline { encoder, model })
    }

    /// The encoder half.
    pub fn encoder(&self) -> &GenericEncoder {
        &self.encoder
    }

    /// The model half.
    pub fn model(&self) -> &HdcModel {
        &self.model
    }

    /// Mutable access to the model (for streaming
    /// [`update`](HdcModel::update)s).
    pub fn model_mut(&mut self) -> &mut HdcModel {
        &mut self.model
    }

    /// Encodes and classifies one raw sample.
    ///
    /// # Errors
    ///
    /// Returns an error on a wrong-width sample.
    pub fn predict(&self, sample: &[f64]) -> Result<usize, HdcError> {
        Ok(self.model.predict(&self.encoder.encode(sample)?))
    }

    /// Encodes and classifies one raw sample under explicit
    /// dimension-reduction options — the deadline-aware serving path of
    /// [`runtime`](crate::runtime). Fully validated: never panics.
    ///
    /// # Errors
    ///
    /// Returns an error on a wrong-width sample or out-of-range
    /// `opts.dims`.
    pub fn predict_reduced(&self, sample: &[f64], opts: PredictOptions) -> Result<usize, HdcError> {
        let encoded = self.encoder.encode(sample)?;
        self.model.try_predict_with(&encoded, opts)
    }

    /// Encodes one raw sample (e.g. for clustering or custom scoring).
    ///
    /// # Errors
    ///
    /// Returns an error on a wrong-width sample.
    pub fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError> {
        self.encoder.encode(sample)
    }

    /// Classification accuracy on a labeled set.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched lengths or row widths.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> Result<f64, HdcError> {
        if features.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                "features and labels must have equal lengths",
            ));
        }
        if features.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let mut correct = 0;
        for (x, &y) in features.iter().zip(labels) {
            if self.predict(x)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / features.len() as f64)
    }

    /// Serializes the full pipeline (encoder spec, quantizer, and model)
    /// to the GHDC wire format.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let spec = self.encoder.spec();
        let quantizer = self.encoder.quantizer();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GHDC");
        let flags = u8::from(spec.id_binding()) | (u8::from(spec.seeded_ids()) << 1);
        buf.extend_from_slice(&[2u8, 2u8, 16u8, flags]);
        buf.extend_from_slice(&(spec.dim() as u32).to_le_bytes());
        buf.extend_from_slice(&(spec.n_features() as u32).to_le_bytes());
        buf.extend_from_slice(&(spec.n_levels() as u32).to_le_bytes());
        buf.extend_from_slice(&(spec.window() as u32).to_le_bytes());
        buf.extend_from_slice(&spec.seed().to_le_bytes());
        for &m in quantizer.mins() {
            buf.extend_from_slice(&m.to_le_bytes());
        }
        for &s in quantizer.spans() {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        crate::io::write_model(&self.model, &mut buf)?;
        // Outer CRC over everything, including the nested (itself sealed)
        // model section.
        crate::io::seal(&mut buf);
        writer.write_all(&buf)
    }

    /// Deserializes a pipeline written by [`HdcPipeline::write_to`].
    ///
    /// Version-1 streams (written before the CRC32 footer existed) are
    /// still accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ReadModelError`] on I/O failure, a malformed stream, or
    /// a checksum mismatch.
    pub fn read_from<R: Read>(outer: R) -> Result<Self, ReadModelError> {
        let bytes = crate::io::read_envelope(outer)?;
        let mut reader: &[u8] = &bytes;
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != b"GHDC" {
            return Err(ReadModelError::BadMagic);
        }
        let mut meta = [0u8; 4];
        reader.read_exact(&mut meta)?;
        if meta[1] != 2 {
            return Err(ReadModelError::WrongKind {
                found: meta[1],
                expected: 2,
            });
        }
        let id_binding = meta[3] & 1 != 0;
        let seeded_ids = meta[3] & 2 != 0;
        let mut w32 = [0u8; 4];
        let mut read_u32 = |r: &mut &[u8]| -> io::Result<usize> {
            r.read_exact(&mut w32)?;
            Ok(u32::from_le_bytes(w32) as usize)
        };
        let dim = read_u32(&mut reader)?;
        let n_features = read_u32(&mut reader)?;
        let n_levels = read_u32(&mut reader)?;
        let window = read_u32(&mut reader)?;
        let mut w64 = [0u8; 8];
        reader.read_exact(&mut w64)?;
        let seed = u64::from_le_bytes(w64);

        let read_f64s = |r: &mut &[u8], n: usize| -> io::Result<Vec<f64>> {
            let mut out = Vec::with_capacity(n);
            let mut buf = [0u8; 8];
            for _ in 0..n {
                r.read_exact(&mut buf)?;
                out.push(f64::from_le_bytes(buf));
            }
            Ok(out)
        };
        if n_features == 0 || n_features > 1 << 20 {
            return Err(ReadModelError::Corrupt(HdcError::invalid(
                "n_features",
                "implausible feature count",
            )));
        }
        let mins = read_f64s(&mut reader, n_features)?;
        let spans = read_f64s(&mut reader, n_features)?;
        let quantizer = Quantizer::from_parts(mins, spans, n_levels)?;

        let spec = GenericEncoderSpec::new(dim, n_features)
            .with_levels(n_levels)
            .with_window(window)
            .with_id_binding(id_binding)
            .with_seeded_ids(seeded_ids)
            .with_seed(seed);
        let encoder = GenericEncoder::with_quantizer(spec, quantizer)?;
        let model = crate::io::read_model(reader)?;
        HdcPipeline::from_parts(encoder, model).map_err(ReadModelError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let features: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let c = i % 3;
                (0..10)
                    .map(|j| (c * 4) as f64 + ((i * 3 + j) % 4) as f64 * 0.2)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        (features, labels)
    }

    #[test]
    fn train_and_predict() {
        let (xs, ys) = toy();
        let spec = GenericEncoderSpec::new(1024, 10).with_seed(1);
        let p = HdcPipeline::train(spec, &xs, &ys, 3, 10).unwrap();
        assert!(p.accuracy(&xs, &ys).unwrap() >= 0.95);
    }

    #[test]
    fn round_trips_through_bytes() {
        let (xs, ys) = toy();
        let spec = GenericEncoderSpec::new(1024, 10)
            .with_window(2)
            .with_id_binding(false)
            .with_seed(9);
        let p = HdcPipeline::train(spec, &xs, &ys, 3, 5).unwrap();
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        let restored = HdcPipeline::read_from(buf.as_slice()).unwrap();
        // Bit-identical behaviour: same predictions, same encodings.
        for x in &xs {
            assert_eq!(p.predict(x).unwrap(), restored.predict(x).unwrap());
            assert_eq!(p.encode(x).unwrap(), restored.encode(x).unwrap());
        }
        assert_eq!(restored.encoder().spec().window(), 2);
        assert!(!restored.encoder().spec().id_binding());
    }

    #[test]
    fn rejects_model_streams() {
        let (xs, ys) = toy();
        let spec = GenericEncoderSpec::new(512, 10).with_seed(2);
        let p = HdcPipeline::train(spec, &xs, &ys, 3, 2).unwrap();
        let mut buf = Vec::new();
        crate::io::write_model(p.model(), &mut buf).unwrap();
        assert!(matches!(
            HdcPipeline::read_from(buf.as_slice()),
            Err(ReadModelError::WrongKind {
                found: 0,
                expected: 2
            })
        ));
    }

    #[test]
    fn streaming_updates_through_model_mut() {
        let (xs, ys) = toy();
        let spec = GenericEncoderSpec::new(512, 10).with_seed(3);
        let mut p = HdcPipeline::train(spec, &xs[..6], &ys[..6], 3, 1).unwrap();
        for (x, &y) in xs.iter().zip(&ys).skip(6) {
            let hv = p.encode(x).unwrap();
            p.model_mut().update(&hv, y).unwrap();
        }
        assert!(p.accuracy(&xs, &ys).unwrap() >= 0.9);
    }

    #[test]
    fn from_parts_validates_dimensions() {
        let (xs, ys) = toy();
        let spec = GenericEncoderSpec::new(512, 10).with_seed(4);
        let encoder = GenericEncoder::from_data(spec, &xs).unwrap();
        let wrong_model = HdcModel::new(1024, 3).unwrap();
        assert!(HdcPipeline::from_parts(encoder, wrong_model).is_err());
        let _ = ys;
    }
}
