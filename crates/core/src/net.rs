//! Network-facing serving front-end: a dependency-free framed TCP
//! protocol over the sharded [`Server`](crate::serve::Server).
//!
//! The wire format mirrors the GHDC checkpoint discipline: explicit
//! little-endian layout, a version byte gating every parse, and a CRC32
//! trailer over the whole body so a torn or bit-flipped frame is a typed
//! error, never a mis-parse. Every frame is length-prefixed:
//!
//! ```text
//! offset  size  field
//! 0       4     body length N (u32 LE) — all bytes after this prefix
//! 4       4     magic "GNET"
//! 8       1     protocol version (1)
//! 9       1     opcode
//! 10      1     status code (NetStatus; 0 in requests)
//! 11      1     reserved (must be 0)
//! 12      8     request id (u64 LE, echoed in the response)
//! 20      8     deadline µs (requests; 0 = none) / elapsed µs (answers)
//! 28      2     tenant length T (u16 LE; only Infer may be non-zero)
//! 30      T     tenant id (UTF-8)
//! 30+T    P     payload (opcode-specific, see below)
//! 4+N-4   4     CRC32 (u32 LE) over body bytes [magic .. payload]
//! ```
//!
//! Payloads: `Infer` is `n: u32` then `n` f64 features; `Learn` is
//! `label: u64`, `n: u32`, then `n` f64 features; `Answer` is
//! `label: u64, dims: u32, tier: u32, shard: u32, degraded: u8`;
//! `Refusal` is `len: u16` then a UTF-8 detail string; `Ping`,
//! `Accepted`, and `Goodbye` carry no payload.
//!
//! [`NetFrontend`] accepts connections on a [`TcpListener`], decodes
//! frames into admission-checked requests against a [`ServerHandle`]
//! (including tenant routing through the server's
//! [`ModelRegistry`](crate::registry::ModelRegistry)), and streams
//! responses back with a per-request [`NetStatus`] for every shed,
//! deadline, quarantine, and drain outcome. Requests pipeline: each
//! connection has a reader (decode + admit) and a writer (redeem tickets
//! in request order, write responses), so one slow or stalled client
//! only ever stalls itself. A malformed frame drops that connection —
//! after a best-effort [`NetStatus::Malformed`] refusal — without
//! touching the shards, and graceful shutdown ends every connection
//! with a final [`Frame::Goodbye`] status frame.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::io::crc32;
use crate::serve::{ServeError, ServerHandle, SubmitError, Ticket};

/// Wire magic opening every frame body.
pub const FRAME_MAGIC: [u8; 4] = *b"GNET";

/// Protocol version this build speaks; every other version is refused
/// with [`FrameError::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u8 = 1;

/// Largest accepted body length. A length prefix beyond this is
/// [`FrameError::Oversized`] before any allocation happens.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Fixed header bytes between the magic and the tenant id.
const BODY_FIXED: usize = 26;

/// Smallest legal body: fixed header plus the CRC trailer.
const MIN_BODY: usize = BODY_FIXED + 4;

// ---------------------------------------------------------------------------
// Status codes
// ---------------------------------------------------------------------------

/// Per-request outcome carried in byte 10 of every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetStatus {
    /// The request was answered (or, in a request frame, no status).
    Ok,
    /// Backpressure: the bounded work queue refused admission.
    QueueFull,
    /// Shed at admission: the deadline was hopeless even degraded.
    Shed,
    /// The request failed sanitization (or the frame was malformed).
    Malformed,
    /// Every worker shard is circuit-broken.
    Unavailable,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// The tenant is unknown, quarantined, or over budget.
    TenantUnavailable,
    /// The request was admitted but canceled before scoring.
    Canceled,
    /// A learn or ping request was accepted (no answer payload).
    Accepted,
}

impl NetStatus {
    fn from_u8(byte: u8) -> Option<NetStatus> {
        Some(match byte {
            0 => NetStatus::Ok,
            1 => NetStatus::QueueFull,
            2 => NetStatus::Shed,
            3 => NetStatus::Malformed,
            4 => NetStatus::Unavailable,
            5 => NetStatus::ShuttingDown,
            6 => NetStatus::TenantUnavailable,
            7 => NetStatus::Canceled,
            8 => NetStatus::Accepted,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            NetStatus::Ok => 0,
            NetStatus::QueueFull => 1,
            NetStatus::Shed => 2,
            NetStatus::Malformed => 3,
            NetStatus::Unavailable => 4,
            NetStatus::ShuttingDown => 5,
            NetStatus::TenantUnavailable => 6,
            NetStatus::Canceled => 7,
            NetStatus::Accepted => 8,
        }
    }

    /// Stable lowercase name used in logs and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            NetStatus::Ok => "ok",
            NetStatus::QueueFull => "queue_full",
            NetStatus::Shed => "shed",
            NetStatus::Malformed => "malformed",
            NetStatus::Unavailable => "unavailable",
            NetStatus::ShuttingDown => "shutting_down",
            NetStatus::TenantUnavailable => "tenant_unavailable",
            NetStatus::Canceled => "canceled",
            NetStatus::Accepted => "accepted",
        }
    }

    /// The wire status an admission refusal maps to.
    pub fn from_submit_error(error: &SubmitError) -> NetStatus {
        match error {
            SubmitError::QueueFull => NetStatus::QueueFull,
            SubmitError::DeadlineHopeless { .. } => NetStatus::Shed,
            SubmitError::Rejected(_) => NetStatus::Malformed,
            SubmitError::Unavailable => NetStatus::Unavailable,
            SubmitError::ShuttingDown => NetStatus::ShuttingDown,
            SubmitError::TenantUnavailable { .. } => NetStatus::TenantUnavailable,
        }
    }

    /// The wire status a post-admission failure maps to.
    pub fn from_serve_error(error: &ServeError) -> NetStatus {
        match error {
            ServeError::Rejected(_) => NetStatus::Malformed,
            ServeError::Canceled => NetStatus::Canceled,
        }
    }
}

impl fmt::Display for NetStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

const OP_INFER: u8 = 0x01;
const OP_LEARN: u8 = 0x02;
const OP_PING: u8 = 0x03;
const OP_ANSWER: u8 = 0x81;
const OP_ACCEPTED: u8 = 0x82;
const OP_REFUSAL: u8 = 0x83;
const OP_GOODBYE: u8 = 0x84;

/// One protocol frame, either direction. [`encode`](Frame::encode) and
/// [`decode`](Frame::decode) round-trip byte-exactly: the encoding is
/// canonical (reserved bytes zero, unused header slots zero), so there
/// is exactly one wire image per frame value.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: score one feature vector.
    Infer {
        /// Correlation id echoed in the response.
        request_id: u64,
        /// Latency budget in µs (0 = none).
        deadline_us: u64,
        /// Tenant to route to (`None` = the shared writer model).
        tenant: Option<String>,
        /// Raw features, exactly the encoder's width.
        features: Vec<f64>,
    },
    /// Client → server: fold one labeled sample into the writer model.
    Learn {
        /// Correlation id echoed in the response.
        request_id: u64,
        /// Class label.
        label: u64,
        /// Raw features.
        features: Vec<f64>,
    },
    /// Client → server: liveness probe, answered with
    /// [`Frame::Accepted`].
    Ping {
        /// Correlation id echoed in the response.
        request_id: u64,
    },
    /// Server → client: a scored answer ([`NetStatus::Ok`]).
    Answer {
        /// Correlation id of the request this answers.
        request_id: u64,
        /// Admission-to-answer latency in µs.
        elapsed_us: u64,
        /// Predicted class.
        label: u64,
        /// Dimensions actually scored.
        dims_used: u32,
        /// Degradation-ladder tier that served the request.
        tier: u32,
        /// Worker shard that scored the request.
        shard: u32,
        /// Served below full dimensionality.
        degraded: bool,
    },
    /// Server → client: a learn/ping request was accepted
    /// ([`NetStatus::Accepted`]).
    Accepted {
        /// Correlation id of the accepted request.
        request_id: u64,
    },
    /// Server → client: the request was refused or lost; `status` says
    /// why (shed, backpressure, quarantine, drain, …).
    Refusal {
        /// Correlation id of the refused request (0 when the refusal is
        /// connection-level, e.g. a malformed frame).
        request_id: u64,
        /// Why the request was refused.
        status: NetStatus,
        /// Human-readable detail.
        detail: String,
    },
    /// Server → client: final status frame of a graceful drain; the
    /// socket closes right after.
    Goodbye,
}

/// Why a byte sequence is not a valid frame. Decoding never panics and
/// never reads past the declared length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the declared (or minimum) length.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared body length.
        len: u32,
    },
    /// The length prefix is smaller than the fixed header + trailer.
    Undersized {
        /// The declared body length.
        len: u32,
    },
    /// Bytes remain after the declared frame end.
    TrailingBytes {
        /// Extra byte count.
        extra: usize,
    },
    /// The body does not open with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version found.
        got: u8,
    },
    /// The CRC32 trailer does not match the body.
    ChecksumMismatch {
        /// The trailer's claim.
        stored: u32,
        /// The CRC of the received body.
        computed: u32,
    },
    /// The opcode byte names no known frame kind.
    UnknownOpcode {
        /// The opcode found.
        got: u8,
    },
    /// The status byte names no known [`NetStatus`].
    UnknownStatus {
        /// The status found.
        got: u8,
    },
    /// The tenant bytes are not UTF-8.
    BadTenant,
    /// The payload violates the opcode's layout.
    BadPayload {
        /// What was wrong.
        detail: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            FrameError::Oversized { len } => {
                write!(f, "declared body of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            FrameError::Undersized { len } => {
                write!(
                    f,
                    "declared body of {len} bytes is below the {MIN_BODY}-byte minimum"
                )
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} bytes remain after the declared frame end")
            }
            FrameError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            FrameError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (speaking {PROTOCOL_VERSION})"
                )
            }
            FrameError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::UnknownOpcode { got } => write!(f, "unknown opcode {got:#04x}"),
            FrameError::UnknownStatus { got } => write!(f, "unknown status code {got}"),
            FrameError::BadTenant => write!(f, "tenant id is not UTF-8"),
            FrameError::BadPayload { detail } => write!(f, "bad payload: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Bounds-checked reader over a payload slice; all reads are typed
/// errors, never panics or over-reads.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.bytes.len() < n {
            return Err(FrameError::BadPayload {
                detail: "payload shorter than its own layout claims",
            });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn features(&mut self) -> Result<Vec<f64>, FrameError> {
        let n = self.u32()? as usize;
        let byte_len = n.checked_mul(8).ok_or(FrameError::BadPayload {
            detail: "feature count overflows",
        })?;
        let raw = self.take(byte_len)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect())
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(FrameError::BadPayload {
                detail: "trailing payload bytes",
            })
        }
    }
}

impl Frame {
    fn opcode(&self) -> u8 {
        match self {
            Frame::Infer { .. } => OP_INFER,
            Frame::Learn { .. } => OP_LEARN,
            Frame::Ping { .. } => OP_PING,
            Frame::Answer { .. } => OP_ANSWER,
            Frame::Accepted { .. } => OP_ACCEPTED,
            Frame::Refusal { .. } => OP_REFUSAL,
            Frame::Goodbye => OP_GOODBYE,
        }
    }

    fn status(&self) -> NetStatus {
        match self {
            Frame::Infer { .. } | Frame::Learn { .. } | Frame::Ping { .. } => NetStatus::Ok,
            Frame::Answer { .. } => NetStatus::Ok,
            Frame::Accepted { .. } => NetStatus::Accepted,
            Frame::Refusal { status, .. } => *status,
            Frame::Goodbye => NetStatus::ShuttingDown,
        }
    }

    fn request_id(&self) -> u64 {
        match self {
            Frame::Infer { request_id, .. }
            | Frame::Learn { request_id, .. }
            | Frame::Ping { request_id }
            | Frame::Answer { request_id, .. }
            | Frame::Accepted { request_id }
            | Frame::Refusal { request_id, .. } => *request_id,
            Frame::Goodbye => 0,
        }
    }

    /// The deadline/elapsed header slot (zero where unused).
    fn time_slot(&self) -> u64 {
        match self {
            Frame::Infer { deadline_us, .. } => *deadline_us,
            Frame::Answer { elapsed_us, .. } => *elapsed_us,
            _ => 0,
        }
    }

    /// Serializes to the canonical wire image, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let tenant: &str = match self {
            Frame::Infer {
                tenant: Some(t), ..
            } => t.as_str(),
            _ => "",
        };
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(&FRAME_MAGIC);
        body.push(PROTOCOL_VERSION);
        body.push(self.opcode());
        body.push(self.status().as_u8());
        body.push(0); // reserved
        body.extend_from_slice(&self.request_id().to_le_bytes());
        body.extend_from_slice(&self.time_slot().to_le_bytes());
        body.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
        body.extend_from_slice(tenant.as_bytes());
        match self {
            Frame::Infer { features, .. } => {
                body.extend_from_slice(&(features.len() as u32).to_le_bytes());
                for v in features {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Learn {
                label, features, ..
            } => {
                body.extend_from_slice(&label.to_le_bytes());
                body.extend_from_slice(&(features.len() as u32).to_le_bytes());
                for v in features {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Answer {
                label,
                dims_used,
                tier,
                shard,
                degraded,
                ..
            } => {
                body.extend_from_slice(&label.to_le_bytes());
                body.extend_from_slice(&dims_used.to_le_bytes());
                body.extend_from_slice(&tier.to_le_bytes());
                body.extend_from_slice(&shard.to_le_bytes());
                body.push(u8::from(*degraded));
            }
            Frame::Refusal { detail, .. } => {
                let detail = &detail.as_bytes()[..detail.len().min(u16::MAX as usize)];
                body.extend_from_slice(&(detail.len() as u16).to_le_bytes());
                body.extend_from_slice(detail);
            }
            Frame::Ping { .. } | Frame::Accepted { .. } | Frame::Goodbye => {}
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses one complete frame (length prefix included). The bytes
    /// must contain exactly one frame; extra bytes are
    /// [`FrameError::TrailingBytes`].
    ///
    /// # Errors
    ///
    /// Every malformation is a typed [`FrameError`]; decoding never
    /// panics and never reads past `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < 4 {
            return Err(FrameError::Truncated {
                needed: 4,
                got: bytes.len(),
            });
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if len as usize > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        if (len as usize) < MIN_BODY {
            return Err(FrameError::Undersized { len });
        }
        let total = 4 + len as usize;
        if bytes.len() < total {
            return Err(FrameError::Truncated {
                needed: total,
                got: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(FrameError::TrailingBytes {
                extra: bytes.len() - total,
            });
        }
        Frame::decode_body(&bytes[4..total])
    }

    /// Parses a frame body (everything after the length prefix);
    /// `body.len() >= MIN_BODY` is guaranteed by the caller.
    fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let magic = [body[0], body[1], body[2], body[3]];
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        if body[4] != PROTOCOL_VERSION {
            return Err(FrameError::UnsupportedVersion { got: body[4] });
        }
        let crc_at = body.len() - 4;
        let stored = u32::from_le_bytes([
            body[crc_at],
            body[crc_at + 1],
            body[crc_at + 2],
            body[crc_at + 3],
        ]);
        let computed = crc32(&body[..crc_at]);
        if stored != computed {
            return Err(FrameError::ChecksumMismatch { stored, computed });
        }
        let opcode = body[5];
        let status =
            NetStatus::from_u8(body[6]).ok_or(FrameError::UnknownStatus { got: body[6] })?;
        if body[7] != 0 {
            return Err(FrameError::BadPayload {
                detail: "reserved header byte must be zero",
            });
        }
        let mut raw8 = [0u8; 8];
        raw8.copy_from_slice(&body[8..16]);
        let request_id = u64::from_le_bytes(raw8);
        raw8.copy_from_slice(&body[16..24]);
        let time_slot = u64::from_le_bytes(raw8);
        let tenant_len = u16::from_le_bytes([body[24], body[25]]) as usize;
        if BODY_FIXED + tenant_len > crc_at {
            return Err(FrameError::BadPayload {
                detail: "tenant length overruns the frame",
            });
        }
        let tenant_bytes = &body[BODY_FIXED..BODY_FIXED + tenant_len];
        let tenant = std::str::from_utf8(tenant_bytes).map_err(|_| FrameError::BadTenant)?;
        if tenant_len > 0 && opcode != OP_INFER {
            return Err(FrameError::BadPayload {
                detail: "only Infer frames may carry a tenant",
            });
        }
        if time_slot != 0 && !matches!(opcode, OP_INFER | OP_ANSWER) {
            return Err(FrameError::BadPayload {
                detail: "deadline/elapsed slot must be zero for this opcode",
            });
        }
        let expect_status = |want: NetStatus| -> Result<(), FrameError> {
            if status == want {
                Ok(())
            } else {
                Err(FrameError::BadPayload {
                    detail: "status code inconsistent with opcode",
                })
            }
        };
        let mut cursor = Cursor {
            bytes: &body[BODY_FIXED + tenant_len..crc_at],
        };
        let frame = match opcode {
            OP_INFER => {
                expect_status(NetStatus::Ok)?;
                let features = cursor.features()?;
                Frame::Infer {
                    request_id,
                    deadline_us: time_slot,
                    tenant: (!tenant.is_empty()).then(|| tenant.to_owned()),
                    features,
                }
            }
            OP_LEARN => {
                expect_status(NetStatus::Ok)?;
                let label = cursor.u64()?;
                let features = cursor.features()?;
                Frame::Learn {
                    request_id,
                    label,
                    features,
                }
            }
            OP_PING => {
                expect_status(NetStatus::Ok)?;
                Frame::Ping { request_id }
            }
            OP_ANSWER => {
                expect_status(NetStatus::Ok)?;
                let label = cursor.u64()?;
                let dims_used = cursor.u32()?;
                let tier = cursor.u32()?;
                let shard = cursor.u32()?;
                let degraded = match cursor.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(FrameError::BadPayload {
                            detail: "degraded flag must be 0 or 1",
                        })
                    }
                };
                Frame::Answer {
                    request_id,
                    elapsed_us: time_slot,
                    label,
                    dims_used,
                    tier,
                    shard,
                    degraded,
                }
            }
            OP_ACCEPTED => {
                expect_status(NetStatus::Accepted)?;
                Frame::Accepted { request_id }
            }
            OP_REFUSAL => {
                if matches!(status, NetStatus::Ok | NetStatus::Accepted) {
                    return Err(FrameError::BadPayload {
                        detail: "a refusal cannot carry a success status",
                    });
                }
                let detail_len = cursor.u16()? as usize;
                let raw = cursor.take(detail_len)?;
                let detail = std::str::from_utf8(raw)
                    .map_err(|_| FrameError::BadPayload {
                        detail: "refusal detail is not UTF-8",
                    })?
                    .to_owned();
                Frame::Refusal {
                    request_id,
                    status,
                    detail,
                }
            }
            OP_GOODBYE => {
                expect_status(NetStatus::ShuttingDown)?;
                if request_id != 0 {
                    return Err(FrameError::BadPayload {
                        detail: "goodbye frames carry no request id",
                    });
                }
                Frame::Goodbye
            }
            other => return Err(FrameError::UnknownOpcode { got: other }),
        };
        cursor.finish()?;
        Ok(frame)
    }
}

/// Writes one frame to `w` (no buffering; callers wanting batching
/// should wrap `w` in a [`io::BufWriter`]).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())
}

/// Reads exactly one frame from a blocking stream. Returns `Ok(None)`
/// on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors pass through; malformed frames surface as
/// [`io::ErrorKind::InvalidData`] wrapping the [`FrameError`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len as usize > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized { len },
        ));
    }
    if (len as usize) < MIN_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Undersized { len },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Frame::decode_body(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Incremental frame assembler for non-blocking/polled reads: feed raw
/// bytes with [`extend`](FrameReader::extend), pop complete frames with
/// [`next_frame`](FrameReader::next_frame). Partial frames are buffered
/// across reads; the assembler never reads past one frame's declared
/// length, so pipelined frames in one TCP segment all surface.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty assembler.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] as soon as the buffered prefix is provably
    /// invalid (oversized/undersized declared length, or any body
    /// malformation); the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len as usize > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        if (len as usize) < MIN_BODY {
            return Err(FrameError::Undersized { len });
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode_body(&self.buf[4..total])?;
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Latency histogram (admission → socket write)
// ---------------------------------------------------------------------------

const HIST_BUCKETS: usize = 40;

/// Lock-free log₂ latency histogram: bucket *i* covers `[2^i, 2^(i+1))`
/// µs, so quantiles are upper bounds within 2× of exact.
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let index = (63 - (us | 1).leading_zeros()) as usize;
        self.buckets[index.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn summary(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let max_us = self.max_us.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of bucket i, clamped to the true max.
                    let upper = if i + 1 >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    };
                    return upper.min(max_us);
                }
            }
            max_us
        };
        LatencySummary {
            count,
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            p999_us: quantile(0.999),
            max_us,
        }
    }
}

/// End-to-end (admission → socket write) latency quantiles of every
/// answered network request. Quantiles come from a log₂ histogram and
/// are upper bounds within 2× of exact; `max_us` is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Latencies recorded.
    pub count: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// Worst observed, µs (exact).
    pub max_us: u64,
}

// ---------------------------------------------------------------------------
// NetFrontend
// ---------------------------------------------------------------------------

/// Tunables of the TCP front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// How often the acceptor polls for shutdown between accepts.
    pub accept_poll: Duration,
    /// Per-connection read timeout (the reader's shutdown-check tick).
    pub read_poll: Duration,
    /// Outstanding responses a connection may pipeline before the
    /// reader stops admitting more (per-connection backpressure).
    pub max_pipeline: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            accept_poll: Duration::from_millis(2),
            read_poll: Duration::from_millis(5),
            max_pipeline: 128,
        }
    }
}

#[derive(Debug, Default)]
struct NetCounters {
    connections: AtomicU64,
    frames_received: AtomicU64,
    responses_sent: AtomicU64,
    answered: AtomicU64,
    refused: AtomicU64,
    malformed: AtomicU64,
}

/// A point-in-time copy of the front-end's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the front-end's lifetime.
    pub connections: u64,
    /// Well-formed request frames decoded.
    pub frames_received: u64,
    /// Response frames written (answers + refusals + accepts).
    pub responses_sent: u64,
    /// [`Frame::Answer`] responses written.
    pub answered: u64,
    /// [`Frame::Refusal`] responses written.
    pub refused: u64,
    /// Malformed frames (each one dropped its connection).
    pub malformed: u64,
    /// Admission→socket-write latency of answered requests.
    pub latency: LatencySummary,
}

struct NetShared {
    handle: ServerHandle,
    config: NetConfig,
    shutdown: AtomicBool,
    counters: NetCounters,
    hist: Histogram,
}

impl NetShared {
    fn stats(&self) -> NetStats {
        NetStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            frames_received: self.counters.frames_received.load(Ordering::Relaxed),
            responses_sent: self.counters.responses_sent.load(Ordering::Relaxed),
            answered: self.counters.answered.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            malformed: self.counters.malformed.load(Ordering::Relaxed),
            latency: self.hist.summary(),
        }
    }
}

/// The TCP serving front-end: accepts framed connections and routes
/// them into a [`ServerHandle`]. Bind with [`bind`](NetFrontend::bind),
/// stop with [`shutdown`](NetFrontend::shutdown) (which ends every
/// connection with a final [`Frame::Goodbye`]).
pub struct NetFrontend {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

/// What the per-connection writer thread processes, in request order.
enum Outgoing {
    /// A response decided at admission (refusal or accept).
    Ready(Frame),
    /// An admitted request: redeem the ticket, then answer.
    Pending {
        request_id: u64,
        admitted: Instant,
        ticket: Ticket,
    },
}

impl NetFrontend {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back
    /// with [`local_addr`](NetFrontend::local_addr)) and starts
    /// accepting connections against `handle`.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        handle: ServerHandle,
        config: NetConfig,
    ) -> io::Result<NetFrontend> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            handle,
            config,
            shutdown: AtomicBool::new(false),
            counters: NetCounters::default(),
            hist: Histogram::new(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("generic-net-acceptor".into())
                .spawn(move || acceptor(&listener, &shared))?
        };
        Ok(NetFrontend {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live front-end counters.
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, finish every in-flight
    /// response, send each connection a final [`Frame::Goodbye`], close
    /// all sockets, and return the final counters.
    pub fn shutdown(mut self) -> NetStats {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            if let Ok(connections) = acceptor.join() {
                for connection in connections {
                    let _ = connection.join();
                }
            }
        }
        self.shared.stats()
    }
}

impl Drop for NetFrontend {
    fn drop(&mut self) {
        // Un-shut-down drops still stop the acceptor and readers; the
        // threads exit on their next poll tick without being joined.
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

fn acceptor(listener: &TcpListener, shared: &Arc<NetShared>) -> Vec<JoinHandle<()>> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                connections.retain(|c| !c.is_finished());
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("generic-net-conn".into())
                    .spawn(move || connection(&stream, &shared));
                if let Ok(handle) = spawned {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.accept_poll);
            }
            Err(_) => std::thread::sleep(shared.config.accept_poll),
        }
    }
    connections
}

/// Per-connection reader: assembles frames, admits requests, and hands
/// responses (in request order) to the writer thread. Runs until EOF,
/// a malformed frame, or shutdown.
fn connection(stream: &TcpStream, shared: &Arc<NetShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_poll));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<Outgoing>(shared.config.max_pipeline.max(1));
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("generic-net-writer".into())
            .spawn(move || connection_writer(write_half, &rx, &shared))
    };
    let Ok(writer) = writer else {
        return;
    };

    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 4096];
    let mut stream = stream;
    'conn: loop {
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    if !handle_frame(frame, shared, &tx) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // A malformed frame poisons only its connection:
                    // best-effort refusal, then drop the socket.
                    shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.try_send(Outgoing::Ready(Frame::Refusal {
                        request_id: 0,
                        status: NetStatus::Malformed,
                        detail: e.to_string(),
                    }));
                    break 'conn;
                }
            }
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => reader.extend(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Routes one decoded frame; returns `false` to drop the connection.
fn handle_frame(frame: Frame, shared: &NetShared, tx: &mpsc::SyncSender<Outgoing>) -> bool {
    shared
        .counters
        .frames_received
        .fetch_add(1, Ordering::Relaxed);
    match frame {
        Frame::Infer {
            request_id,
            deadline_us,
            tenant,
            features,
        } => {
            let budget = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
            let admitted = Instant::now();
            let result = match &tenant {
                None => shared.handle.submit(features, budget),
                Some(t) => shared.handle.submit_tenant(t, features, budget),
            };
            let outgoing = match result {
                Ok(ticket) => Outgoing::Pending {
                    request_id,
                    admitted,
                    ticket,
                },
                Err(e) => Outgoing::Ready(Frame::Refusal {
                    request_id,
                    status: NetStatus::from_submit_error(&e),
                    detail: e.to_string(),
                }),
            };
            tx.send(outgoing).is_ok()
        }
        Frame::Learn {
            request_id,
            label,
            features,
        } => {
            let outgoing = match usize::try_from(label) {
                Ok(label) => match shared.handle.submit_learn(features, label) {
                    Ok(()) => Outgoing::Ready(Frame::Accepted { request_id }),
                    Err(e) => Outgoing::Ready(Frame::Refusal {
                        request_id,
                        status: NetStatus::from_submit_error(&e),
                        detail: e.to_string(),
                    }),
                },
                Err(_) => Outgoing::Ready(Frame::Refusal {
                    request_id,
                    status: NetStatus::Malformed,
                    detail: "label exceeds the platform's usize".to_owned(),
                }),
            };
            tx.send(outgoing).is_ok()
        }
        Frame::Ping { request_id } => tx
            .send(Outgoing::Ready(Frame::Accepted { request_id }))
            .is_ok(),
        // Response-direction frames from a client are protocol abuse;
        // treat exactly like a malformed frame.
        Frame::Answer { .. } | Frame::Accepted { .. } | Frame::Refusal { .. } | Frame::Goodbye => {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.try_send(Outgoing::Ready(Frame::Refusal {
                request_id: 0,
                status: NetStatus::Malformed,
                detail: "response-direction opcode received from client".to_owned(),
            }));
            false
        }
    }
}

/// Per-connection writer: redeems tickets in request order and writes
/// responses; records admission→write latency for answered requests.
fn connection_writer(mut stream: TcpStream, rx: &mpsc::Receiver<Outgoing>, shared: &NetShared) {
    let mut writable = true;
    for outgoing in rx.iter() {
        let (frame, admitted) = match outgoing {
            Outgoing::Ready(frame) => (frame, None),
            Outgoing::Pending {
                request_id,
                admitted,
                ticket,
            } => {
                // Redeem even when the socket already failed: the shard
                // has (or will have) scored it; dropping the ticket
                // early would not un-admit it.
                let frame = match ticket.wait() {
                    Ok(answer) => Frame::Answer {
                        request_id,
                        elapsed_us: u64::try_from(answer.elapsed.as_micros()).unwrap_or(u64::MAX),
                        label: answer.label as u64,
                        dims_used: answer.dims_used as u32,
                        tier: answer.tier as u32,
                        shard: answer.shard as u32,
                        degraded: answer.degraded,
                    },
                    Err(e) => Frame::Refusal {
                        request_id,
                        status: NetStatus::from_serve_error(&e),
                        detail: e.to_string(),
                    },
                };
                (frame, Some(admitted))
            }
        };
        if !writable {
            continue;
        }
        if stream.write_all(&frame.encode()).is_err() {
            writable = false;
            continue;
        }
        shared
            .counters
            .responses_sent
            .fetch_add(1, Ordering::Relaxed);
        match &frame {
            Frame::Answer { .. } => {
                shared.counters.answered.fetch_add(1, Ordering::Relaxed);
                if let Some(admitted) = admitted {
                    shared.hist.record(admitted.elapsed());
                }
            }
            Frame::Refusal { .. } => {
                shared.counters.refused.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
    // Drain ends the channel; a graceful shutdown says goodbye so the
    // client can distinguish it from a connection fault.
    if writable && shared.shutdown.load(Ordering::Relaxed) {
        let _ = stream.write_all(&Frame::Goodbye.encode());
    }
    let _ = stream.flush();
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Infer {
                request_id: 7,
                deadline_us: 1500,
                tenant: None,
                features: vec![0.5, -1.25, 3.0],
            },
            Frame::Infer {
                request_id: 8,
                deadline_us: 0,
                tenant: Some("acme".to_owned()),
                features: vec![1.0],
            },
            Frame::Learn {
                request_id: 9,
                label: 2,
                features: vec![0.0, f64::MAX],
            },
            Frame::Ping { request_id: 10 },
            Frame::Answer {
                request_id: 7,
                elapsed_us: 421,
                label: 1,
                dims_used: 2048,
                tier: 4,
                shard: 1,
                degraded: false,
            },
            Frame::Accepted { request_id: 9 },
            Frame::Refusal {
                request_id: 11,
                status: NetStatus::Shed,
                detail: "budget 1µs unmeetable".to_owned(),
            },
            Frame::Goodbye,
        ]
    }

    #[test]
    fn frames_round_trip_byte_exactly() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let decoded = Frame::decode(&bytes).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(decoded.encode(), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let bytes = sample_frames()[0].encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_never_decode_to_a_different_frame() {
        let frame = &sample_frames()[2];
        let bytes = frame.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut tampered = bytes.clone();
                tampered[byte] ^= 1 << bit;
                if let Ok(decoded) = Frame::decode(&tampered) {
                    assert_eq!(&decoded, frame, "byte {byte} bit {bit}");
                }
            }
        }
    }

    #[test]
    fn wrong_version_and_magic_are_typed() {
        let mut bytes = sample_frames()[3].encode();
        bytes[8] = 9; // version byte (after 4-byte prefix + 4-byte magic)
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::UnsupportedVersion { got: 9 })
        ));
        let mut bytes = sample_frames()[3].encode();
        bytes[4] = b'X';
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_declared_length_is_refused_before_allocation() {
        let mut bytes = vec![0u8; 8];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn frame_reader_assembles_across_arbitrary_splits() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        for chunk_size in [1, 3, 7, 64, stream.len()] {
            let mut reader = FrameReader::new();
            let mut decoded = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.extend(chunk);
                while let Some(frame) = reader.next_frame().unwrap() {
                    decoded.push(frame);
                }
            }
            assert_eq!(decoded, frames, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn histogram_quantiles_bound_the_true_values() {
        let hist = Histogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                hist.record(Duration::from_micros(us));
            }
        }
        let summary = hist.summary();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.max_us, 10_000);
        assert!(
            summary.p50_us >= 100 && summary.p50_us <= 255,
            "{summary:?}"
        );
        assert!(summary.p999_us >= 10_000, "{summary:?}");
        assert!(summary.p999_us <= summary.max_us.max(16_383));
    }

    #[test]
    fn submit_error_statuses_are_distinct_and_stable() {
        use std::collections::HashSet;
        let statuses: Vec<NetStatus> = [
            SubmitError::QueueFull,
            SubmitError::DeadlineHopeless {
                budget: Duration::from_micros(1),
            },
            SubmitError::Rejected(crate::runtime::RejectReason::WrongWidth {
                expected: 2,
                actual: 3,
            }),
            SubmitError::Unavailable,
            SubmitError::ShuttingDown,
            SubmitError::TenantUnavailable {
                tenant: "t".to_owned(),
                reason: "unknown".to_owned(),
            },
        ]
        .iter()
        .map(NetStatus::from_submit_error)
        .collect();
        let unique: HashSet<u8> = statuses.iter().map(|s| s.as_u8()).collect();
        assert_eq!(unique.len(), statuses.len());
    }
}
