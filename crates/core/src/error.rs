use std::error::Error;
use std::fmt;

/// Errors returned by fallible `generic-hdc` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// Two hypervectors (or a hypervector and a model) disagree on
    /// dimensionality.
    DimensionMismatch {
        /// Dimensionality the operation expected.
        expected: usize,
        /// Dimensionality that was provided.
        actual: usize,
    },
    /// A sample had a different number of features than the encoder was
    /// built for.
    FeatureCountMismatch {
        /// Feature count the encoder expects.
        expected: usize,
        /// Feature count of the offending sample.
        actual: usize,
    },
    /// A configuration parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A label was outside `0..n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model was built with.
        n_classes: usize,
    },
    /// Training or clustering was invoked with no input samples.
    EmptyInput,
}

impl HdcError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        HdcError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            HdcError::FeatureCountMismatch { expected, actual } => {
                write!(
                    f,
                    "feature count mismatch: encoder expects {expected} features, sample has {actual}"
                )
            }
            HdcError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            HdcError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            HdcError::EmptyInput => write!(f, "operation requires at least one input sample"),
        }
    }
}

impl Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let messages = [
            HdcError::DimensionMismatch {
                expected: 4,
                actual: 8,
            }
            .to_string(),
            HdcError::EmptyInput.to_string(),
            HdcError::invalid("dim", "must be positive").to_string(),
        ];
        for m in messages {
            assert!(
                !m.ends_with('.'),
                "message should not end with a period: {m}"
            );
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}
