//! Per-tenant generation ledger: crash-recoverable publishes for the
//! multi-tenant model registry.
//!
//! PR 7's registry renamed each publish over the previous image, so a
//! bad push left nothing to roll back to and a crash mid-publish leaked
//! temp files forever. This module makes every publish a transaction:
//!
//! - Tenant images are **generation-numbered** (`<tenant>.g<N>.ghdc`)
//!   and immutable once renamed into place; the last K generations are
//!   retained and garbage-collected beyond that.
//! - Which generation is *live* per tenant is recorded in a single
//!   `MANIFEST` file, committed via the same write-temp → fsync →
//!   atomic-rename → fsync-dir discipline checkpoints use, and sealed
//!   with a CRC32 footer. The manifest rename **is** the commit point:
//!   a crash at any earlier boundary leaves the previous manifest (and
//!   therefore the previous live generation) intact.
//! - [`Ledger::open`] runs a recovery scan: a torn or missing manifest
//!   is rebuilt from the on-disk generations (never selecting a
//!   CRC-invalid image as live while a valid one exists), orphaned
//!   `*.tmp` files from crashed publishes are swept, and images that
//!   were renamed into place but never committed are adopted as
//!   non-live generations.
//! - Cross-process coherence: an advisory `flock` on `MANIFEST.lock`
//!   makes one process the writer (the lock dies with the process, so
//!   `kill -9` never wedges the directory), and a cheap stat-based
//!   generation watch lets reader processes pick up another process's
//!   publishes and rollbacks.
//! - Every mutating filesystem boundary routes through an injectable
//!   [`LedgerFs`], so crash-fault campaigns can fail or kill the
//!   process at exact create/write/sync/rename points — the same
//!   spirit as `CheckpointStore::inject_write_failures`.
//!
//! The [`ModelRegistry`](crate::ModelRegistry) drives this ledger for
//! serving; the `generic registry history|rollback|gc|fsck` CLI drives
//! it directly for administration.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use crate::io::PackedLayout;
use crate::mapped::{try_lock_exclusive, Mapping};
use crate::runtime::RetryPolicy;

/// File extension of tenant model images.
pub const IMAGE_EXT: &str = "ghdc";
/// Name of the per-directory commit manifest.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Name of the advisory writer-lock file.
pub const LOCK_NAME: &str = "MANIFEST.lock";

const TMP_SUFFIX: &str = ".tmp";
const MANIFEST_MAGIC: &str = "GHDCLEDGER 1";

/// The legacy (pre-ledger) flat image `<tenant>.ghdc` is represented as
/// generation 0: recovery adopts it in place, no rename required.
pub const LEGACY_GENERATION: u64 = 0;

// ---------------------------------------------------------------------------
// Injectable filesystem boundary
// ---------------------------------------------------------------------------

/// A mutating filesystem operation the publish path performs, in the
/// order a publish performs them. Fault injection is keyed by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// `File::create` of a `*.tmp` staging file.
    Create,
    /// `write_all` of the staged bytes.
    Write,
    /// `sync_all` of the staged file.
    Sync,
    /// The atomic `rename` into place.
    Rename,
    /// `fsync` of the containing directory entry.
    SyncDir,
}

impl FsOp {
    const ALL: [FsOp; 5] = [
        FsOp::Create,
        FsOp::Write,
        FsOp::Sync,
        FsOp::Rename,
        FsOp::SyncDir,
    ];

    fn index(self) -> usize {
        match self {
            FsOp::Create => 0,
            FsOp::Write => 1,
            FsOp::Sync => 2,
            FsOp::Rename => 3,
            FsOp::SyncDir => 4,
        }
    }
}

impl std::fmt::Display for FsOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FsOp::Create => "create",
            FsOp::Write => "write",
            FsOp::Sync => "sync",
            FsOp::Rename => "rename",
            FsOp::SyncDir => "sync_dir",
        };
        f.write_str(name)
    }
}

#[derive(Debug, Default)]
struct FsInner {
    /// Remaining injected *transient* failures per op (retryable).
    fail: [AtomicU32; 5],
    /// Countdown to an injected *crash* per op: 0 = disarmed, 1 = the
    /// next occurrence of this op crashes, n = the n-th does.
    crash: [AtomicU32; 5],
    /// Once a crash fires, the simulated process is dead: every further
    /// op fails instantly until a fresh `LedgerFs` is constructed.
    crashed: AtomicBool,
}

/// The injectable filesystem layer every mutating ledger op routes
/// through. Cloning shares the injection state, so a soak harness can
/// keep a handle and arm faults while a registry owns its clone.
///
/// Two fault flavors, mirroring real failure modes:
///
/// - [`fail_next`](LedgerFs::fail_next): the next `n` attempts of an op
///   return a transient I/O error *before touching the filesystem* —
///   absorbed by the publish [`RetryPolicy`] like a flaky SD card.
/// - [`crash_at`](LedgerFs::crash_at): the n-th upcoming attempt of an
///   op performs a *partial* effect (a half-written file, a skipped
///   sync, an un-renamed temp) and then kills the simulated process —
///   every subsequent op fails until the "process" (this `LedgerFs`) is
///   replaced, exactly like `kill -9` at that boundary.
#[derive(Debug, Clone, Default)]
pub struct LedgerFs {
    inner: Arc<FsInner>,
}

impl LedgerFs {
    /// A fault-free filesystem layer (the production default).
    pub fn new() -> Self {
        LedgerFs::default()
    }

    /// Arms `n` transient failures for `op` (cumulative).
    pub fn fail_next(&self, op: FsOp, n: u32) {
        self.inner.fail[op.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Arms a simulated `kill -9` at the `nth` upcoming occurrence of
    /// `op` (1 = the next one). Replaces any previously armed crash for
    /// that op.
    pub fn crash_at(&self, op: FsOp, nth: u32) {
        self.inner.crash[op.index()].store(nth.max(1), Ordering::Relaxed);
    }

    /// Whether an injected crash has fired (the simulated process is
    /// dead; a recovering open must construct a fresh `LedgerFs`).
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::Relaxed)
    }

    /// Disarms every pending fault (crashed state is *not* cleared — a
    /// dead process stays dead).
    pub fn disarm(&self) {
        for op in FsOp::ALL {
            self.inner.fail[op.index()].store(0, Ordering::Relaxed);
            self.inner.crash[op.index()].store(0, Ordering::Relaxed);
        }
    }

    /// Gate run before (and during) each op. `Ok(false)` = proceed
    /// normally, `Ok(true)` = crash mid-op (perform the partial effect,
    /// then return [`crash_error`]), `Err` = injected transient fault.
    fn gate(&self, op: FsOp) -> io::Result<bool> {
        if self.crashed() {
            return Err(crash_error(op));
        }
        let fail = &self.inner.fail[op.index()];
        let mut left = fail.load(Ordering::Relaxed);
        while left > 0 {
            match fail.compare_exchange_weak(left, left - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    return Err(io::Error::other(format!(
                        "injected transient ledger fault at {op}"
                    )))
                }
                Err(now) => left = now,
            }
        }
        let crash = &self.inner.crash[op.index()];
        let mut count = crash.load(Ordering::Relaxed);
        while count > 0 {
            match crash.compare_exchange_weak(
                count,
                count - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if count == 1 {
                        self.inner.crashed.store(true, Ordering::Relaxed);
                        return Ok(true);
                    }
                    return Ok(false);
                }
                Err(now) => count = now,
            }
        }
        Ok(false)
    }

    fn create(&self, path: &Path) -> io::Result<File> {
        if self.gate(FsOp::Create)? {
            // Crash mid-create: the empty staging file exists, the
            // handle is lost.
            let _ = File::create(path);
            return Err(crash_error(FsOp::Create));
        }
        File::create(path)
    }

    fn write_all(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if self.gate(FsOp::Write)? {
            // Crash mid-write: half the payload reaches the file.
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
            return Err(crash_error(FsOp::Write));
        }
        file.write_all(bytes)
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        if self.gate(FsOp::Sync)? {
            return Err(crash_error(FsOp::Sync));
        }
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.gate(FsOp::Rename)? {
            // Crash before the rename: the temp file stays orphaned.
            return Err(crash_error(FsOp::Rename));
        }
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.gate(FsOp::SyncDir)? {
            // Crash after the rename but before the directory flush:
            // the rename itself may or may not be durable — recovery
            // must tolerate both.
            return Err(crash_error(FsOp::SyncDir));
        }
        crate::runtime::sync_dir(dir)
    }
}

fn crash_error(op: FsOp) -> io::Error {
    io::Error::other(format!("simulated process death at {op}"))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Why a manifest failed to parse. Every variant is recoverable: the
/// ledger rebuilds a bad manifest from the on-disk generations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The byte stream ends before the header or the CRC footer line.
    Truncated,
    /// The first line is not the supported `GHDCLEDGER 1` header.
    UnsupportedHeader(String),
    /// The CRC32 footer does not match the preceding bytes.
    ChecksumMismatch {
        /// CRC stored in the footer line.
        stored: u32,
        /// CRC computed over the body.
        computed: u32,
    },
    /// A line is not valid UTF-8 or does not match the grammar.
    Garbage {
        /// 1-based line number.
        line: usize,
        /// The offending text (lossy, truncated).
        text: String,
    },
    /// The same tenant appears twice.
    DuplicateTenant(String),
    /// The same generation is listed twice for one tenant.
    DuplicateGeneration {
        /// The tenant with the duplicate.
        tenant: String,
        /// The duplicated generation number.
        generation: u64,
    },
    /// A tenant's live generation is not in its retained set.
    LiveNotRetained {
        /// The inconsistent tenant.
        tenant: String,
        /// The live generation the manifest claims.
        live: u64,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Truncated => write!(f, "manifest truncated before its CRC footer"),
            ManifestError::UnsupportedHeader(h) => write!(f, "unsupported manifest header `{h}`"),
            ManifestError::ChecksumMismatch { stored, computed } => write!(
                f,
                "manifest CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ManifestError::Garbage { line, text } => {
                write!(f, "manifest line {line} is garbage: `{text}`")
            }
            ManifestError::DuplicateTenant(t) => write!(f, "tenant `{t}` listed twice"),
            ManifestError::DuplicateGeneration { tenant, generation } => {
                write!(f, "tenant `{tenant}` lists generation {generation} twice")
            }
            ManifestError::LiveNotRetained { tenant, live } => write!(
                f,
                "tenant `{tenant}` claims live generation {live} outside its retained set"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One tenant's ledger entry: which generation serves, which are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLedger {
    /// The generation currently serving.
    pub live: u64,
    /// Every retained generation (always contains `live`).
    pub retained: BTreeSet<u64>,
}

/// The parsed per-directory commit record: one live generation per
/// tenant plus the retained set, sealed by a CRC32 footer. The manifest
/// file's atomic rename is the publish/rollback commit point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic commit counter — bumps on every successful commit, so
    /// readers can detect change without diffing tenants.
    pub epoch: u64,
    tenants: BTreeMap<String, TenantLedger>,
}

impl Manifest {
    /// Parses and CRC-validates manifest bytes.
    ///
    /// # Errors
    ///
    /// A typed [`ManifestError`]; parsing never panics on any input.
    pub fn parse(bytes: &[u8]) -> Result<Manifest, ManifestError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ManifestError::Garbage {
            line: 0,
            text: "non-utf8 bytes".to_owned(),
        })?;
        // A committed manifest always ends in a newline; a byte stream
        // that doesn't is torn mid-footer even when the CRC body
        // happens to be intact.
        if !text.ends_with('\n') {
            return Err(ManifestError::Truncated);
        }
        // Locate the CRC footer line: the last non-empty line.
        let body_end = text.trim_end_matches(['\n', '\r']).rfind('\n');
        let Some(body_end) = body_end else {
            return Err(ManifestError::Truncated);
        };
        let footer = text[body_end + 1..].trim();
        let Some(stored_hex) = footer.strip_prefix("crc ") else {
            return Err(ManifestError::Truncated);
        };
        let stored =
            u32::from_str_radix(stored_hex.trim(), 16).map_err(|_| ManifestError::Garbage {
                line: text.lines().count(),
                text: footer.to_owned(),
            })?;
        let body = &bytes[..body_end + 1];
        let computed = crate::io::crc32(body);
        if stored != computed {
            return Err(ManifestError::ChecksumMismatch { stored, computed });
        }

        let mut lines = text[..body_end].lines().enumerate();
        match lines.next() {
            Some((_, line)) if line.trim() == MANIFEST_MAGIC => {}
            Some((_, line)) => return Err(ManifestError::UnsupportedHeader(line.to_owned())),
            None => return Err(ManifestError::Truncated),
        }
        let epoch = match lines.next() {
            Some((i, line)) => line
                .trim()
                .strip_prefix("epoch ")
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| garbage(i, line))?,
            None => return Err(ManifestError::Truncated),
        };
        let mut tenants = BTreeMap::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (tenant, live, retained) =
                parse_tenant_line(line).ok_or_else(|| garbage(i, line))?;
            let mut set = BTreeSet::new();
            for gen in retained {
                if !set.insert(gen) {
                    return Err(ManifestError::DuplicateGeneration {
                        tenant,
                        generation: gen,
                    });
                }
            }
            if !set.contains(&live) {
                return Err(ManifestError::LiveNotRetained { tenant, live });
            }
            if tenants
                .insert(
                    tenant.clone(),
                    TenantLedger {
                        live,
                        retained: set,
                    },
                )
                .is_some()
            {
                return Err(ManifestError::DuplicateTenant(tenant));
            }
        }
        Ok(Manifest { epoch, tenants })
    }

    /// Serializes to the canonical byte form `parse` accepts
    /// (deterministic: tenants sorted, retained ascending, CRC sealed).
    pub fn serialize(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(MANIFEST_MAGIC);
        body.push('\n');
        let _ = writeln!(body, "epoch {}", self.epoch);
        for (tenant, entry) in &self.tenants {
            let gens: Vec<String> = entry.retained.iter().map(ToString::to_string).collect();
            let _ = writeln!(
                body,
                "tenant {tenant} live {} retained {}",
                entry.live,
                gens.join(",")
            );
        }
        let crc = crate::io::crc32(body.as_bytes());
        let mut bytes = body.into_bytes();
        let _ = writeln!(bytes, "crc {crc:08x}");
        bytes
    }

    /// The tenants recorded in this manifest, sorted.
    pub fn tenants(&self) -> impl Iterator<Item = (&str, &TenantLedger)> {
        self.tenants.iter().map(|(t, e)| (t.as_str(), e))
    }

    /// One tenant's entry.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantLedger> {
        self.tenants.get(tenant)
    }

    /// Records (or replaces) a tenant entry; `retained` always gains
    /// `live` so the parse invariant holds by construction. For tests
    /// and tooling building manifests directly — the serving path
    /// mutates through [`Ledger`] commits.
    pub fn set_tenant(
        &mut self,
        tenant: impl Into<String>,
        live: u64,
        retained: impl IntoIterator<Item = u64>,
    ) {
        let mut set: BTreeSet<u64> = retained.into_iter().collect();
        set.insert(live);
        self.tenants.insert(
            tenant.into(),
            TenantLedger {
                live,
                retained: set,
            },
        );
    }

    fn tenant_mut(&mut self, tenant: &str) -> &mut TenantLedger {
        self.tenants
            .entry(tenant.to_owned())
            .or_insert_with(|| TenantLedger {
                live: 0,
                retained: BTreeSet::new(),
            })
    }
}

// `writeln!` into a Vec<u8> cannot fail; the `let _ =` above make that
// explicit without unwrap.
use std::fmt::Write as _;

fn garbage(index: usize, line: &str) -> ManifestError {
    let mut text = line.to_owned();
    text.truncate(80);
    ManifestError::Garbage {
        // +2: lines() was offset past the header inside parse's
        // enumerate, and humans count from 1.
        line: index + 2,
        text,
    }
}

/// Parses `tenant <name> live <N> retained <a,b,c>`.
fn parse_tenant_line(line: &str) -> Option<(String, u64, Vec<u64>)> {
    let rest = line.strip_prefix("tenant ")?;
    let (name, rest) = rest.split_once(" live ")?;
    let (live, gens) = rest.split_once(" retained ")?;
    if !valid_tenant_name(name) {
        return None;
    }
    let live = live.trim().parse().ok()?;
    let mut retained = Vec::new();
    for part in gens.trim().split(',') {
        retained.push(part.trim().parse().ok()?);
    }
    Some((name.to_owned(), live, retained))
}

/// Tenant-name discipline shared with the registry: `[A-Za-z0-9_-]`,
/// 1–64 bytes. Names never contain `.`, which keeps generation-file
/// parsing unambiguous.
pub fn valid_tenant_name(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

/// What [`Ledger::open`]'s recovery scan found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// Orphaned `*.tmp` staging files swept (crashed publishes leak
    /// these; recovery reclaims them).
    pub swept_tmp: usize,
    /// Whether the manifest was missing or corrupt and was rebuilt from
    /// the on-disk generations.
    pub repaired: bool,
    /// Images on disk that no manifest referenced and were adopted as
    /// non-live generations (a crash between image rename and manifest
    /// commit leaves exactly these).
    pub adopted: usize,
    /// Why the manifest needed repair, when it did.
    pub repair_reason: Option<String>,
    /// Wall-clock recovery time.
    pub elapsed: Duration,
}

/// One row of [`Ledger::history`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationRecord {
    /// The generation number (0 = adopted legacy flat image).
    pub generation: u64,
    /// Whether this generation is the live one.
    pub live: bool,
    /// On-disk size, or `None` when the image file is missing.
    pub bytes: Option<u64>,
}

/// One finding of [`Ledger::fsck`].
#[derive(Debug, Clone)]
pub struct FsckFinding {
    /// The tenant the finding concerns.
    pub tenant: String,
    /// The generation the finding concerns.
    pub generation: u64,
    /// `Ok` = image CRC-valid; `Err(reason)` = missing or corrupt.
    pub status: Result<(), String>,
    /// Whether this generation is the tenant's live one.
    pub live: bool,
}

/// The full [`Ledger::fsck`] report.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every retained generation's validation status.
    pub findings: Vec<FsckFinding>,
    /// Files in the directory no manifest entry references (candidates
    /// for [`Ledger::gc`]).
    pub orphans: Vec<PathBuf>,
}

impl FsckReport {
    /// Whether every retained live generation validated.
    pub fn healthy(&self) -> bool {
        self.findings.iter().all(|f| !f.live || f.status.is_ok())
    }
}

/// Stamp of the manifest file used by the cheap generation watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileStamp {
    len: u64,
    modified: Option<SystemTime>,
}

fn stamp(path: &Path) -> Option<FileStamp> {
    let meta = std::fs::metadata(path).ok()?;
    Some(FileStamp {
        len: meta.len(),
        modified: meta.modified().ok(),
    })
}

/// The per-directory generation ledger. Not internally synchronized —
/// the registry wraps it in a mutex; the CLI drives it single-threaded.
#[derive(Debug)]
pub struct Ledger {
    dir: PathBuf,
    keep: usize,
    retry: RetryPolicy,
    fs: LedgerFs,
    /// Held advisory writer lock (`None` = reader role). The flock dies
    /// with the file description, so a killed writer never wedges the
    /// directory.
    lock: Option<File>,
    manifest: Manifest,
    watch: Option<FileStamp>,
}

impl Ledger {
    /// Opens `dir` with defaults (keep 4 generations, default retry,
    /// fault-free fs) and runs the recovery scan.
    ///
    /// # Errors
    ///
    /// Only directory-level I/O failures; a corrupt manifest is
    /// *repaired*, never fatal.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Ledger, RecoveryOutcome)> {
        Ledger::open_with(dir, 4, RetryPolicy::default(), LedgerFs::new())
    }

    /// Opens `dir` keeping `keep` generations per tenant, retrying
    /// transient publish I/O per `retry`, with every mutating fs
    /// boundary routed through `fs`.
    ///
    /// # Errors
    ///
    /// Only directory-level I/O failures.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        keep: usize,
        retry: RetryPolicy,
        fs: LedgerFs,
    ) -> io::Result<(Ledger, RecoveryOutcome)> {
        let start = Instant::now();
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut ledger = Ledger {
            dir,
            keep: keep.max(1),
            retry,
            fs,
            lock: None,
            manifest: Manifest::default(),
            watch: None,
        };
        let _ = ledger.try_acquire_writer();
        let mut outcome = RecoveryOutcome::default();

        let scan = ledger.scan_dir()?;
        // Sweep orphaned staging files — but only as the writer: a
        // reader must not delete another process's in-flight publish.
        if ledger.is_writer() {
            for tmp in &scan.tmps {
                if std::fs::remove_file(tmp).is_ok() {
                    outcome.swept_tmp += 1;
                }
            }
        }

        let manifest_path = ledger.manifest_path();
        let parsed = match std::fs::read(&manifest_path) {
            Ok(bytes) => Manifest::parse(&bytes).map_err(|e| e.to_string()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err("manifest missing".to_owned()),
            Err(e) => return Err(e),
        };
        let mut dirty = false;
        match parsed {
            Ok(manifest) => {
                ledger.manifest = manifest;
                // Adopt images that exist on disk but are unreferenced:
                // a crash between image rename and manifest commit
                // leaves exactly this state. Adopted images are *not*
                // made live — the manifest commit is the commit point.
                for (tenant, gens) in &scan.images {
                    for &gen in gens {
                        let entry = ledger.manifest.tenant_mut(tenant);
                        if entry.retained.insert(gen) {
                            if entry.retained.len() == 1 {
                                // Brand-new tenant with no committed
                                // manifest entry: the newest valid image
                                // becomes live (nothing older exists).
                                entry.live = gen;
                            }
                            outcome.adopted += 1;
                            dirty = true;
                        }
                    }
                }
                // Repair tenants whose live image vanished or entries
                // pointing at nothing.
                ledger.drop_missing_entries(&scan, &mut dirty);
            }
            Err(reason) => {
                let had_images = !scan.images.is_empty();
                ledger.manifest = ledger.rebuild_manifest(&scan);
                if had_images || reason != "manifest missing" {
                    outcome.repaired = true;
                    outcome.repair_reason = Some(reason);
                    dirty = true;
                }
            }
        }
        if dirty && ledger.is_writer() {
            // Persist the repaired view; failures are non-fatal (the
            // in-memory manifest still serves, and the next writer
            // retries the repair).
            let _ = ledger.write_manifest();
        }
        ledger.watch = stamp(&manifest_path);
        outcome.elapsed = start.elapsed();
        Ok((ledger, outcome))
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether this ledger holds the advisory writer lock.
    pub fn is_writer(&self) -> bool {
        self.lock.is_some()
    }

    /// The current in-memory manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The current commit epoch.
    pub fn epoch(&self) -> u64 {
        self.manifest.epoch
    }

    /// The injectable filesystem layer (shared-state clone).
    pub fn fs(&self) -> LedgerFs {
        self.fs.clone()
    }

    /// Tries to become the writer (idempotent).
    ///
    /// # Errors
    ///
    /// Lock-file creation failures. `Ok(false)` means another process
    /// (or another ledger over the same dir) holds the lock.
    pub fn try_acquire_writer(&mut self) -> io::Result<bool> {
        if self.lock.is_some() {
            return Ok(true);
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.dir.join(LOCK_NAME))?;
        if try_lock_exclusive(&file)? {
            self.lock = Some(file);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    /// Path of generation `gen` of `tenant` (generation 0 is the legacy
    /// flat image `<tenant>.ghdc`).
    pub fn gen_path(&self, tenant: &str, gen: u64) -> PathBuf {
        if gen == LEGACY_GENERATION {
            self.dir.join(format!("{tenant}.{IMAGE_EXT}"))
        } else {
            self.dir.join(format!("{tenant}.g{gen}.{IMAGE_EXT}"))
        }
    }

    /// The live generation and its path, when the tenant is known.
    pub fn live_path(&self, tenant: &str) -> Option<(u64, PathBuf)> {
        let entry = self.manifest.tenant(tenant)?;
        Some((entry.live, self.gen_path(tenant, entry.live)))
    }

    /// Retained generations strictly below `below`, ascending.
    pub fn retained_below(&self, tenant: &str, below: u64) -> Vec<u64> {
        self.manifest
            .tenant(tenant)
            .map(|e| e.retained.iter().copied().filter(|&g| g < below).collect())
            .unwrap_or_default()
    }

    /// Tenants known to the manifest, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.manifest.tenants.keys().cloned().collect()
    }

    /// Adopts a legacy flat image dropped into the directory out of
    /// band, making it generation 0 (live) for its tenant. Returns
    /// whether anything was adopted.
    ///
    /// # Errors
    ///
    /// Manifest persistence failures (writer only).
    pub fn adopt_flat(&mut self, tenant: &str) -> io::Result<bool> {
        if self.manifest.tenant(tenant).is_some() {
            return Ok(false);
        }
        let flat = self.gen_path(tenant, LEGACY_GENERATION);
        if !flat.exists() {
            return Ok(false);
        }
        let entry = self.manifest.tenant_mut(tenant);
        entry.live = LEGACY_GENERATION;
        entry.retained.insert(LEGACY_GENERATION);
        if self.is_writer() {
            let _ = self.write_manifest();
        }
        Ok(true)
    }

    /// The generation number the next publish of `tenant` will use.
    pub fn next_generation(&self, tenant: &str) -> u64 {
        self.manifest
            .tenant(tenant)
            .and_then(|e| e.retained.iter().next_back().copied())
            .unwrap_or(0)
            + 1
    }

    /// Stages and atomically renames a new generation image for
    /// `tenant`, retrying transient faults per the ledger's
    /// [`RetryPolicy`]. Does **not** commit the manifest — the caller
    /// validates the image first, then calls
    /// [`commit_live`](Ledger::commit_live).
    ///
    /// # Errors
    ///
    /// The last I/O error once the retry budget is exhausted (the
    /// staging file is cleaned up best-effort).
    pub fn publish_image(&mut self, tenant: &str, bytes: &[u8]) -> io::Result<(u64, PathBuf, u32)> {
        let gen = self.next_generation(tenant);
        let path = self.gen_path(tenant, gen);
        let tmp = self
            .dir
            .join(format!("{tenant}.g{gen}.{IMAGE_EXT}{TMP_SUFFIX}"));
        let fs = self.fs.clone();
        let dir = self.dir.clone();
        let (result, retries) = self.retry.run_counted(|| {
            let mut file = fs.create(&tmp)?;
            fs.write_all(&mut file, bytes)?;
            fs.sync(&file)?;
            drop(file);
            fs.rename(&tmp, &path)?;
            fs.sync_dir(&dir)
        });
        // A dead process can't clean up — its staging file stays for
        // the next open's recovery sweep, exactly like a real kill -9.
        if result.is_err() && !self.fs.crashed() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map(|()| (gen, path, retries))
    }

    /// Commits `gen` as `tenant`'s live generation: bumps the epoch,
    /// trims the retained set to the keep limit (never dropping the new
    /// live), atomically replaces the manifest, and garbage-collects
    /// the trimmed image files. As a reader (no writer lock) the change
    /// is in-memory only — the caller's process keeps serving the
    /// rolled-to generation, but nothing on disk moves.
    ///
    /// # Errors
    ///
    /// Manifest write failures; the in-memory manifest is left on the
    /// *previous* committed state when the write fails, so serving
    /// state and disk state cannot silently diverge.
    pub fn commit_live(&mut self, tenant: &str, gen: u64) -> io::Result<u32> {
        let previous = self.manifest.clone();
        let keep = self.keep;
        let entry = self.manifest.tenant_mut(tenant);
        entry.retained.insert(gen);
        entry.live = gen;
        // Trim: keep the newest `keep` generations, always retaining
        // the live one.
        let mut dropped: Vec<u64> = Vec::new();
        while entry.retained.len() > keep {
            let Some(&oldest) = entry.retained.iter().find(|&&g| g != gen) else {
                break;
            };
            entry.retained.remove(&oldest);
            dropped.push(oldest);
        }
        self.manifest.epoch += 1;
        if !self.is_writer() {
            return Ok(0);
        }
        match self.write_manifest() {
            Ok(retries) => {
                for g in dropped {
                    let _ = std::fs::remove_file(self.gen_path(tenant, g));
                }
                Ok(retries)
            }
            Err(e) => {
                self.manifest = previous;
                Err(e)
            }
        }
    }

    /// Resolves the rollback target: `to` when given (must be a
    /// retained non-live generation), else the newest retained
    /// generation below live.
    pub fn rollback_target(&self, tenant: &str, to: Option<u64>) -> Option<u64> {
        let entry = self.manifest.tenant(tenant)?;
        match to {
            Some(gen) => (entry.retained.contains(&gen) && gen != entry.live).then_some(gen),
            None => entry.retained.iter().copied().rfind(|&g| g < entry.live),
        }
    }

    /// Re-stats the manifest file and, when it changed on disk,
    /// re-reads it. Returns the tenants whose live generation changed
    /// (including appeared/disappeared) — the caller invalidates their
    /// resident state. A manifest that fails to parse mid-watch is
    /// ignored (the previous in-memory view keeps serving; the next
    /// open repairs).
    ///
    /// # Errors
    ///
    /// None currently — stat and read failures are treated as "no
    /// change"; the signature leaves room for stricter modes.
    pub fn refresh_if_changed(&mut self) -> io::Result<Vec<String>> {
        let path = self.manifest_path();
        let now = stamp(&path);
        if now == self.watch {
            return Ok(Vec::new());
        }
        self.watch = now;
        let Ok(bytes) = std::fs::read(&path) else {
            return Ok(Vec::new());
        };
        let Ok(fresh) = Manifest::parse(&bytes) else {
            return Ok(Vec::new());
        };
        let mut changed = Vec::new();
        for (tenant, entry) in &fresh.tenants {
            if self.manifest.tenant(tenant).map(|e| e.live) != Some(entry.live) {
                changed.push(tenant.clone());
            }
        }
        for tenant in self.manifest.tenants.keys() {
            if !fresh.tenants.contains_key(tenant) {
                changed.push(tenant.clone());
            }
        }
        self.manifest = fresh;
        Ok(changed)
    }

    /// Full CRC/layout validation of one image file (no dimensionality
    /// check — that is the registry's concern).
    ///
    /// # Errors
    ///
    /// A human-readable reason (missing, torn, CRC mismatch, …).
    pub fn validate_image(path: &Path) -> Result<(), String> {
        let bytes = Mapping::map_file(path).map_err(|e| e.to_string())?;
        PackedLayout::validate(&bytes)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    /// Per-generation history of one tenant, ascending.
    pub fn history(&self, tenant: &str) -> Vec<GenerationRecord> {
        let Some(entry) = self.manifest.tenant(tenant) else {
            return Vec::new();
        };
        entry
            .retained
            .iter()
            .map(|&gen| GenerationRecord {
                generation: gen,
                live: gen == entry.live,
                bytes: std::fs::metadata(self.gen_path(tenant, gen))
                    .ok()
                    .map(|m| m.len()),
            })
            .collect()
    }

    /// Validates every retained generation of every tenant and lists
    /// unreferenced files. Read-only.
    ///
    /// # Errors
    ///
    /// Directory-read failures only.
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let mut report = FsckReport::default();
        for (tenant, entry) in &self.manifest.tenants {
            for &gen in &entry.retained {
                let path = self.gen_path(tenant, gen);
                report.findings.push(FsckFinding {
                    tenant: tenant.clone(),
                    generation: gen,
                    status: Self::validate_image(&path),
                    live: gen == entry.live,
                });
            }
        }
        let scan = self.scan_dir()?;
        report.orphans.extend(scan.tmps);
        for (tenant, gens) in &scan.images {
            for &gen in gens {
                let referenced = self
                    .manifest
                    .tenant(tenant)
                    .is_some_and(|e| e.retained.contains(&gen));
                if !referenced {
                    report.orphans.push(self.gen_path(tenant, gen));
                }
            }
        }
        Ok(report)
    }

    /// Removes staging files and unreferenced images. Requires the
    /// writer lock. Returns how many files were removed.
    ///
    /// # Errors
    ///
    /// `PermissionDenied` without the writer lock; directory-read
    /// failures.
    pub fn gc(&mut self) -> io::Result<usize> {
        if !self.try_acquire_writer()? {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "another process holds the registry writer lock",
            ));
        }
        let report = self.fsck()?;
        let mut removed = 0usize;
        for orphan in &report.orphans {
            if std::fs::remove_file(orphan).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    // -- internals ----------------------------------------------------------

    /// Atomically replaces the manifest through the injectable fs,
    /// retrying transient faults. Returns retries consumed.
    fn write_manifest(&mut self) -> io::Result<u32> {
        let bytes = self.manifest.serialize();
        let path = self.manifest_path();
        let tmp = self.dir.join(format!("{MANIFEST_NAME}{TMP_SUFFIX}"));
        let fs = self.fs.clone();
        let dir = self.dir.clone();
        let (result, retries) = self.retry.run_counted(|| {
            let mut file = fs.create(&tmp)?;
            fs.write_all(&mut file, &bytes)?;
            fs.sync(&file)?;
            drop(file);
            fs.rename(&tmp, &path)?;
            fs.sync_dir(&dir)
        });
        if result.is_err() && !self.fs.crashed() {
            let _ = std::fs::remove_file(&tmp);
        }
        self.watch = stamp(&path);
        result.map(|()| retries)
    }

    /// Rebuilds a manifest from the on-disk images: per tenant, live =
    /// the newest image passing full CRC validation (a corrupt newest
    /// generation is *never* selected while an older valid one exists);
    /// when no image validates, the newest is recorded as live so a
    /// `get` reports quarantine rather than not-found.
    fn rebuild_manifest(&self, scan: &DirScan) -> Manifest {
        let mut manifest = Manifest::default();
        for (tenant, gens) in &scan.images {
            let mut retained: BTreeSet<u64> = gens.iter().copied().collect();
            let live = retained
                .iter()
                .rev()
                .copied()
                .find(|&g| Self::validate_image(&self.gen_path(tenant, g)).is_ok())
                .or_else(|| retained.iter().next_back().copied());
            let Some(live) = live else { continue };
            retained.insert(live);
            manifest
                .tenants
                .insert(tenant.clone(), TenantLedger { live, retained });
        }
        manifest
    }

    /// Drops manifest entries whose image files are gone entirely.
    fn drop_missing_entries(&mut self, scan: &DirScan, dirty: &mut bool) {
        let empty = BTreeSet::new();
        let mut fixes: Vec<(String, TenantLedger)> = Vec::new();
        let mut gone: Vec<String> = Vec::new();
        for (tenant, entry) in &self.manifest.tenants {
            let on_disk = scan.images.get(tenant).unwrap_or(&empty);
            let present: BTreeSet<u64> = entry
                .retained
                .iter()
                .copied()
                .filter(|g| on_disk.contains(g))
                .collect();
            if present == entry.retained {
                continue;
            }
            if present.is_empty() {
                gone.push(tenant.clone());
                continue;
            }
            let live = if present.contains(&entry.live) {
                entry.live
            } else {
                // The live image vanished: fall back to the newest
                // surviving valid one (or the newest, if none valid).
                present
                    .iter()
                    .rev()
                    .copied()
                    .find(|&g| Self::validate_image(&self.gen_path(tenant, g)).is_ok())
                    .or(present.iter().next_back().copied())
                    .unwrap_or(entry.live)
            };
            fixes.push((
                tenant.clone(),
                TenantLedger {
                    live,
                    retained: present,
                },
            ));
        }
        for tenant in gone {
            self.manifest.tenants.remove(&tenant);
            *dirty = true;
        }
        for (tenant, entry) in fixes {
            self.manifest.tenants.insert(tenant, entry);
            *dirty = true;
        }
    }

    fn scan_dir(&self) -> io::Result<DirScan> {
        let mut scan = DirScan::default();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == MANIFEST_NAME || name == LOCK_NAME {
                continue;
            }
            if name.ends_with(TMP_SUFFIX) {
                scan.tmps.push(entry.path());
                continue;
            }
            let Some(stem) = name.strip_suffix(&format!(".{IMAGE_EXT}")) else {
                continue;
            };
            // `<tenant>.g<N>` or legacy `<tenant>`; tenant names never
            // contain '.', so rsplit is unambiguous.
            let (tenant, gen) = match stem.rsplit_once(".g") {
                Some((t, g)) => match g.parse::<u64>() {
                    Ok(n) if n > 0 => (t, n),
                    _ => continue,
                },
                None => (stem, LEGACY_GENERATION),
            };
            if !valid_tenant_name(tenant) {
                continue;
            }
            scan.images
                .entry(tenant.to_owned())
                .or_default()
                .insert(gen);
        }
        Ok(scan)
    }
}

#[derive(Debug, Default)]
struct DirScan {
    tmps: Vec<PathBuf>,
    images: BTreeMap<String, BTreeSet<u64>>,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ghdc-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_image(seed: u64) -> Vec<u8> {
        use crate::{BinaryHv, HdcModel, IntHv, QuantizedModel};
        let encoded: Vec<IntHv> = (0..3)
            .map(|c| IntHv::from(BinaryHv::random_seeded(256, seed * 31 + c).unwrap()))
            .collect();
        let model = HdcModel::fit(&encoded, &[0, 1, 2], 3).unwrap();
        let quantized = QuantizedModel::from_model(&model, 4).unwrap();
        let mut buf = Vec::new();
        crate::io::write_packed(&quantized, &mut buf).unwrap();
        buf
    }

    #[test]
    fn manifest_round_trips_canonically() {
        let mut m = Manifest {
            epoch: 9,
            ..Manifest::default()
        };
        m.tenants.insert(
            "acme".into(),
            TenantLedger {
                live: 3,
                retained: [2u64, 3].into_iter().collect(),
            },
        );
        let bytes = m.serialize();
        assert_eq!(Manifest::parse(&bytes).unwrap(), m);
        // Deterministic byte-for-byte.
        assert_eq!(m.serialize(), bytes);
    }

    #[test]
    fn manifest_rejects_torn_and_garbage_inputs() {
        let mut m = Manifest {
            epoch: 1,
            ..Manifest::default()
        };
        m.tenants.insert(
            "t".into(),
            TenantLedger {
                live: 1,
                retained: [1u64].into_iter().collect(),
            },
        );
        let bytes = m.serialize();
        // Truncations.
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Manifest::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // One flipped byte anywhere fails the CRC (or the grammar).
        let mut torn = bytes.clone();
        torn[bytes.len() / 2] ^= 0x01;
        assert!(Manifest::parse(&torn).is_err());
        // Duplicate tenant.
        let body =
            "GHDCLEDGER 1\nepoch 1\ntenant a live 1 retained 1\ntenant a live 2 retained 2\n";
        let mut forged = body.as_bytes().to_vec();
        let crc = crate::io::crc32(&forged);
        forged.extend_from_slice(format!("crc {crc:08x}\n").as_bytes());
        assert!(matches!(
            Manifest::parse(&forged),
            Err(ManifestError::DuplicateTenant(_))
        ));
    }

    #[test]
    fn publish_commit_recover_cycle_survives_missing_manifest() {
        let dir = scratch("cycle");
        let (mut ledger, _) = Ledger::open(&dir).unwrap();
        let image = sample_image(7);
        let (gen, path, _) = ledger.publish_image("acme", &image).unwrap();
        assert_eq!(gen, 1);
        assert!(path.exists());
        ledger.commit_live("acme", gen).unwrap();
        assert_eq!(ledger.epoch(), 1);

        // Delete the manifest: recovery rebuilds it from the image.
        drop(ledger);
        std::fs::remove_file(dir.join(MANIFEST_NAME)).unwrap();
        let (ledger, outcome) = Ledger::open(&dir).unwrap();
        assert!(outcome.repaired);
        assert_eq!(ledger.live_path("acme").unwrap().0, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_never_selects_a_corrupt_generation_as_live() {
        let dir = scratch("corrupt-live");
        let (mut ledger, _) = Ledger::open(&dir).unwrap();
        for seed in 0..3u64 {
            let image = sample_image(seed);
            let (gen, _, _) = ledger.publish_image("t", &image).unwrap();
            ledger.commit_live("t", gen).unwrap();
        }
        // Corrupt the newest image and tear the manifest.
        let newest = ledger.gen_path("t", 3);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        drop(ledger);
        std::fs::write(dir.join(MANIFEST_NAME), b"total garbage").unwrap();

        let (ledger, outcome) = Ledger::open(&dir).unwrap();
        assert!(outcome.repaired);
        assert_eq!(ledger.live_path("t").unwrap().0, 2, "newest valid wins");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_publish_leaves_previous_commit_live_and_sweeps_tmp() {
        let dir = scratch("crash");
        let fs = LedgerFs::new();
        let (mut ledger, _) =
            Ledger::open_with(&dir, 4, RetryPolicy::default(), fs.clone()).unwrap();
        let (gen, _, _) = ledger.publish_image("acme", &sample_image(1)).unwrap();
        ledger.commit_live("acme", gen).unwrap();

        // Crash mid-write of the next image: half the payload lands in
        // the tmp file, then the process dies.
        fs.crash_at(FsOp::Write, 1);
        let err = ledger.publish_image("acme", &sample_image(2)).unwrap_err();
        assert!(err.to_string().contains("simulated process death"), "{err}");
        assert!(fs.crashed());
        drop(ledger);

        let (ledger, outcome) = Ledger::open(&dir).unwrap();
        assert_eq!(ledger.live_path("acme").unwrap().0, 1, "commit survives");
        // publish_image cleans its tmp on failure, so either path
        // (swept at open or cleaned at failure) must leave none behind.
        assert!(
            !dir.join("acme.g2.ghdc.tmp").exists(),
            "no staging file may survive recovery (swept {})",
            outcome.swept_tmp
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retry() {
        let dir = scratch("transient");
        let fs = LedgerFs::new();
        let retry = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter: false,
        };
        let (mut ledger, _) = Ledger::open_with(&dir, 4, retry, fs.clone()).unwrap();
        fs.fail_next(FsOp::Sync, 2);
        let (gen, _, retries) = ledger.publish_image("acme", &sample_image(3)).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(retries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_limit_trims_and_gcs_old_generations() {
        let dir = scratch("keep");
        let (mut ledger, _) =
            Ledger::open_with(&dir, 2, RetryPolicy::default(), LedgerFs::new()).unwrap();
        for seed in 0..4u64 {
            let (gen, _, _) = ledger.publish_image("t", &sample_image(seed)).unwrap();
            ledger.commit_live("t", gen).unwrap();
        }
        let entry = ledger.manifest().tenant("t").unwrap().clone();
        assert_eq!(entry.live, 4);
        assert_eq!(entry.retained.len(), 2);
        assert!(!ledger.gen_path("t", 1).exists());
        assert!(!ledger.gen_path("t", 2).exists());
        assert!(ledger.gen_path("t", 3).exists());
        assert!(ledger.gen_path("t", 4).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_ledger_is_reader_and_watches_commits() {
        let dir = scratch("watch");
        let (mut writer, _) = Ledger::open(&dir).unwrap();
        assert!(writer.is_writer());
        let (gen, _, _) = writer.publish_image("acme", &sample_image(5)).unwrap();
        writer.commit_live("acme", gen).unwrap();

        let (mut reader, _) = Ledger::open(&dir).unwrap();
        assert!(!reader.is_writer(), "flock must exclude a second opener");
        assert_eq!(reader.live_path("acme").unwrap().0, 1);

        let (gen, _, _) = writer.publish_image("acme", &sample_image(6)).unwrap();
        writer.commit_live("acme", gen).unwrap();
        let changed = reader.refresh_if_changed().unwrap();
        assert_eq!(changed, vec!["acme".to_owned()]);
        assert_eq!(reader.live_path("acme").unwrap().0, 2);

        // Writer lock transfers once the writer drops.
        drop(writer);
        assert!(reader.try_acquire_writer().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_corruption_and_orphans() {
        let dir = scratch("fsck");
        let (mut ledger, _) = Ledger::open(&dir).unwrap();
        let (gen, path, _) = ledger.publish_image("acme", &sample_image(9)).unwrap();
        ledger.commit_live("acme", gen).unwrap();
        // An orphan image (never committed) and a torn live image.
        std::fs::write(dir.join("acme.g9.ghdc"), b"stray").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let report = ledger.fsck().unwrap();
        assert!(!report.healthy());
        assert!(report.orphans.iter().any(|p| p.ends_with("acme.g9.ghdc")));
        let removed = ledger.gc().unwrap();
        assert!(removed >= 1);
        assert!(!dir.join("acme.g9.ghdc").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
