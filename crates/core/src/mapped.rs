//! Read-only memory mappings for zero-copy model serving.
//!
//! The multi-tenant registry serves GHDC v3 files straight out of the
//! OS page cache: a [`Mapping`] is the owned byte region a
//! [`PackedModelView`](crate::PackedModelView) borrows from. On Linux
//! (x86-64 and AArch64) the region is a real `mmap(PROT_READ,
//! MAP_PRIVATE)` obtained via raw syscalls — the workspace vendors no
//! libc — so mapping a model costs page-table setup, not a copy of the
//! payload. Elsewhere (and whenever the syscall fails) the file is read
//! into a 64-byte-aligned heap buffer instead, preserving the alignment
//! contract of [`PACKED_ALIGN`](crate::io::PACKED_ALIGN) so the view
//! layer never needs to know which backing it got.
//!
//! Safety discipline: all `unsafe` in this crate lives here and in
//! `kernels`. The mapped bytes are plain `u8`/`u64` data (every bit
//! pattern valid); slices are only reinterpreted after an explicit
//! alignment + length check. A file-backed mapping can fault if the
//! file is truncated underneath it by another process — the registry
//! forecloses that by only ever *replacing* model files via atomic
//! rename (the old inode, and thus the old mapping, stays intact until
//! the last reader drops).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Raw `mmap`/`munmap` syscalls: PROT_READ, MAP_PRIVATE, offset 0.

    use std::arch::asm;

    pub const PROT_READ: usize = 1;
    pub const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn mmap(len: usize, fd: i32) -> isize {
        let ret: usize;
        // SAFETY: Linux x86-64 syscall ABI — nr in rax (mmap = 9), args
        // in rdi/rsi/rdx/r10/r8/r9, result in rax; rcx/r11 clobbered.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 9usize => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as usize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret as isize
    }

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn munmap(addr: *const u8, len: usize) -> isize {
        let ret: usize;
        // SAFETY: munmap = syscall 11 under the same ABI.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 11usize => ret,
                in("rdi") addr as usize,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret as isize
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn mmap(len: usize, fd: i32) -> isize {
        let ret: usize;
        // SAFETY: Linux AArch64 syscall ABI — nr in x8 (mmap = 222),
        // args in x0..x5, result in x0.
        unsafe {
            asm!(
                "svc 0",
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd as usize,
                in("x5") 0usize,
                in("x8") 222usize,
                options(nostack),
            );
        }
        ret as isize
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn munmap(addr: *const u8, len: usize) -> isize {
        let ret: usize;
        // SAFETY: munmap = syscall 215 under the same ABI.
        unsafe {
            asm!(
                "svc 0",
                inlateout("x0") addr as usize => ret,
                in("x1") len,
                in("x8") 215usize,
                options(nostack),
            );
        }
        ret as isize
    }

    pub const LOCK_EX: usize = 2;
    pub const LOCK_NB: usize = 4;
    pub const EWOULDBLOCK: isize = -11;

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn flock(fd: i32, operation: usize) -> isize {
        let ret: usize;
        // SAFETY: flock = syscall 73 under the x86-64 ABI; two args.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 73usize => ret,
                in("rdi") fd as usize,
                in("rsi") operation,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret as isize
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn flock(fd: i32, operation: usize) -> isize {
        let ret: usize;
        // SAFETY: flock = syscall 32 under the AArch64 ABI; two args.
        unsafe {
            asm!(
                "svc 0",
                inlateout("x0") fd as usize => ret,
                in("x1") operation,
                in("x8") 32usize,
                options(nostack),
            );
        }
        ret as isize
    }
}

/// Tries to take an exclusive, non-blocking advisory `flock` on `file`.
/// `Ok(false)` means another open file description (another process, or
/// another `File` in this one) already holds it. The lock lives exactly
/// as long as the file description: process death — including `kill
/// -9` — releases it, which is what makes it safe as the registry's
/// single-writer guard. On platforms without the raw syscall the lock
/// degrades to a no-op grant (single-process semantics, same as PR 7).
pub(crate) fn try_lock_exclusive(file: &File) -> io::Result<bool> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use std::os::fd::AsRawFd;
        // SAFETY: flock takes an owned fd and an operation bitmask; the
        // fd is valid for the lifetime of `file`, and no memory is
        // passed to the kernel.
        let ret = unsafe { sys::flock(file.as_raw_fd(), sys::LOCK_EX | sys::LOCK_NB) };
        if ret == 0 {
            Ok(true)
        } else if ret == sys::EWOULDBLOCK {
            Ok(false)
        } else {
            Err(io::Error::from_raw_os_error(-ret as i32))
        }
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = file;
        Ok(true)
    }
}

/// A heap buffer aligned to [`crate::io::PACKED_ALIGN`] — the fallback
/// backing when `mmap` is unavailable, and the aligned staging area for
/// in-memory streams.
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
    cap: usize,
}

impl AlignedBuf {
    const ALIGN: usize = crate::io::PACKED_ALIGN;

    fn from_slice(bytes: &[u8]) -> io::Result<Self> {
        if bytes.is_empty() {
            return Ok(AlignedBuf {
                ptr: std::ptr::null_mut(),
                len: 0,
                cap: 0,
            });
        }
        let cap = bytes.len();
        let layout = std::alloc::Layout::from_size_align(cap, Self::ALIGN)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // SAFETY: layout has non-zero size (empty handled above) and a
        // valid power-of-two alignment.
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                "aligned model buffer allocation failed",
            ));
        }
        // SAFETY: `ptr` spans `cap` freshly allocated bytes; `bytes`
        // cannot overlap a fresh allocation.
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, cap) };
        Ok(AlignedBuf { ptr, len: cap, cap })
    }

    fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is valid for `len` initialized bytes for the
        // lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.cap != 0 {
            if let Ok(layout) = std::alloc::Layout::from_size_align(self.cap, Self::ALIGN) {
                // SAFETY: allocated in `from_slice` with this exact
                // layout.
                unsafe { std::alloc::dealloc(self.ptr, layout) };
            }
        }
    }
}

// SAFETY: the buffer is uniquely owned, never aliased mutably after
// construction, and `u8` is Send + Sync.
unsafe impl Send for AlignedBuf {}
// SAFETY: see above — shared access is read-only.
unsafe impl Sync for AlignedBuf {}

enum Backing {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Heap(AlignedBuf),
}

/// An owned, immutable, 64-byte-aligned byte region holding one model
/// file: an OS memory mapping where supported, an aligned heap copy
/// otherwise. Dereferences to `&[u8]`.
pub struct Mapping {
    backing: Backing,
}

// SAFETY: the region is immutable for the life of the Mapping (mapped
// PROT_READ/MAP_PRIVATE, or a uniquely owned heap buffer).
unsafe impl Send for Mapping {}
// SAFETY: see above — all access is read-only.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only. Uses `mmap` on Linux x86-64/AArch64 (the
    /// model bytes are served from the page cache, never copied);
    /// elsewhere, or if the syscall fails, falls back to reading the
    /// file into an aligned buffer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (`NotFound`, permissions, …).
    pub fn map_file(path: &Path) -> io::Result<Mapping> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds usize"))?;
        Self::map_open_file(&file, len)
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn map_open_file(file: &File, len: usize) -> io::Result<Mapping> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            return Ok(Mapping {
                backing: Backing::Heap(AlignedBuf::from_slice(&[])?),
            });
        }
        // SAFETY: fd is open for the duration of the call; the kernel
        // validates every argument and returns -errno on failure.
        let ret = unsafe { sys::mmap(len, file.as_raw_fd()) };
        if (-4095..0).contains(&ret) {
            // mmap refused (exotic filesystem, resource limits): fall
            // back to a plain read so serving still works.
            return Self::read_fallback(file);
        }
        Ok(Mapping {
            backing: Backing::Mmap {
                ptr: ret as *const u8,
                len,
            },
        })
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    fn map_open_file(file: &File, _len: usize) -> io::Result<Mapping> {
        Self::read_fallback(file)
    }

    fn read_fallback(mut file: &File) -> io::Result<Mapping> {
        use std::io::Read;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Copies `bytes` into an aligned heap backing — for streams that
    /// never touched a file (tests, replication buffers).
    ///
    /// # Errors
    ///
    /// Returns an error only if the allocation fails.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Mapping> {
        Ok(Mapping {
            backing: Backing::Heap(AlignedBuf::from_slice(bytes)?),
        })
    }

    /// Whether this region is a real OS memory mapping (as opposed to
    /// the aligned heap fallback).
    pub fn is_mmap(&self) -> bool {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mmap { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mmap { ptr, len } => {
                // SAFETY: the kernel mapped `len` readable bytes at
                // `ptr`; the mapping lives until Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap(buf) => buf.as_slice(),
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backing::Mmap { ptr, len } = self.backing {
            // SAFETY: exactly the region mmap returned; errors at unmap
            // are unrecoverable and ignored like libc's munmap users do.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len())
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

/// Reinterprets `bytes` as a `u64` slice when its base pointer is
/// 8-byte aligned and its length is a whole number of words. The only
/// byte→word cast in the crate; every caller routes through this check.
pub(crate) fn as_u64_slice(bytes: &[u8]) -> Option<&[u64]> {
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>())
        || !bytes.len().is_multiple_of(8)
    {
        return None;
    }
    // SAFETY: alignment and length verified above; every bit pattern is
    // a valid u64; the lifetime is inherited from `bytes`.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mapping_round_trips_file_contents() {
        let dir = std::env::temp_dir().join(format!("ghdc-mapped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let payload: Vec<u8> = (0..65_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapping = Mapping::map_file(&path).unwrap();
        assert_eq!(&*mapping, payload.as_slice());
        assert_eq!(mapping.as_ptr() as usize % crate::io::PACKED_ALIGN, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn linux_mappings_are_real_mmaps() {
        let dir = std::env::temp_dir().join(format!("ghdc-mapped-mm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let mapping = Mapping::map_file(&path).unwrap();
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(mapping.is_mmap());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let dir = std::env::temp_dir().join(format!("ghdc-mapped-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let mapping = Mapping::map_file(&path).unwrap();
        assert!(mapping.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_bytes_is_aligned_and_identical() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 13) as u8).collect();
        let mapping = Mapping::from_bytes(&payload).unwrap();
        assert_eq!(&*mapping, payload.as_slice());
        assert_eq!(mapping.as_ptr() as usize % crate::io::PACKED_ALIGN, 0);
        assert!(!mapping.is_mmap());
    }

    #[test]
    fn u64_reinterpretation_requires_alignment() {
        let mapping = Mapping::from_bytes(&[0u8; 64]).unwrap();
        assert_eq!(as_u64_slice(&mapping).unwrap().len(), 8);
        assert!(as_u64_slice(&mapping[1..9]).is_none(), "misaligned base");
        assert!(as_u64_slice(&mapping[..60]).is_none(), "ragged length");
    }
}
