//! Uniform registry of fast-kernel / scalar-oracle pairs.
//!
//! Successive optimisation passes left the crate with several "fast path
//! plus retained scalar reference" pairs: bit-sliced bundling vs scalar
//! rotate-and-add encoding, blocked similarity vs per-class scalar
//! scoring, parallel vs sequential retraining, bit-plane packed scoring
//! vs unpacked scoring. Each pair carries an equivalence contract that
//! silently erodes unless it is machine-checked. This module is the one
//! place those contracts are written down:
//!
//! - [`ORACLE_REGISTRY`] names every checked stage boundary together
//!   with its typed output [`Tolerance`] and a human-readable contract,
//! - [`DifferentialKernel`] lets a harness execute both sides of a pair
//!   without knowing which kernel it is driving, which is what the
//!   `generic-conformance` crate's scenario fuzzer builds on.
//!
//! Boundaries that live outside this crate (the cycle simulator's
//! hardware scores and activity counters) are registered here too, so a
//! conformance run can report coverage against a single list.

use crate::encoding::GenericEncoder;
use crate::kernels::{self, Isa};
use crate::{
    BinaryHv, BitSliceAccumulator, HdcError, HdcModel, IntHv, PackedInts, PackedQuantizedModel,
    PredictOptions, QuantizedModel, ScoreBatch,
};

/// How far a fast implementation may stray from its scalar oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Outputs must be bit-identical: integer arithmetic is exact and
    /// floating-point reductions fold in the same order on both sides.
    BitIdentical,
    /// Outputs may differ elementwise by at most this absolute amount
    /// (different but documented floating-point association).
    AbsEpsilon(f64),
    /// Only the induced ranking must agree (same winner under the
    /// documented tie-break); score magnitudes are approximate.
    RankEquivalent,
}

/// The pipeline stage a checked boundary belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Feature bins → hypervector (bit-sliced vs scalar bundling).
    Encode,
    /// Epoch-level model updates (blocked/parallel vs scalar retraining).
    Retrain,
    /// Full- and reduced-dimension similarity scoring.
    Score,
    /// Quantized scoring, packed bit-plane vs unpacked.
    QuantScore,
    /// Resilient pipeline at baseline vs direct quantized inference.
    Resilient,
    /// Pipeline serialization / checkpoint-store round-trips.
    CheckpointRestore,
    /// Simulator hardware scores vs independent scalar recomputation.
    SimScore,
    /// Simulator activity counters vs the closed-form cost model.
    SimActivity,
    /// Sharded concurrent serving vs the scalar oracle replayed on the
    /// answer's pinned snapshot.
    ConcurrentServe,
    /// Multi-tenant mapped-model registry (cold-load, hot-swap, evict)
    /// vs heap-deserialized scalar scoring.
    Registry,
    /// Framed-TCP front-end vs the in-process serving oracle: answers
    /// transported over a real socket replay bit-identically.
    Network,
    /// Post-training compression: saliency, pruning, and pruned-support
    /// scoring vs their scalar references.
    Compress,
}

impl StageKind {
    /// Every stage, in canonical reporting order.
    pub const ALL: [StageKind; 12] = [
        StageKind::Encode,
        StageKind::Retrain,
        StageKind::Score,
        StageKind::QuantScore,
        StageKind::Resilient,
        StageKind::CheckpointRestore,
        StageKind::SimScore,
        StageKind::SimActivity,
        StageKind::ConcurrentServe,
        StageKind::Registry,
        StageKind::Network,
        StageKind::Compress,
    ];

    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Encode => "encode",
            StageKind::Retrain => "retrain",
            StageKind::Score => "score",
            StageKind::QuantScore => "quant_score",
            StageKind::Resilient => "resilient",
            StageKind::CheckpointRestore => "checkpoint_restore",
            StageKind::SimScore => "sim_score",
            StageKind::SimActivity => "sim_activity",
            StageKind::ConcurrentServe => "concurrent_serve",
            StageKind::Registry => "registry",
            StageKind::Network => "network",
            StageKind::Compress => "compress",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One registered fast-path / oracle boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleEntry {
    /// Stable identifier (matches the fast-path method name where one
    /// exists).
    pub name: &'static str,
    /// The pipeline stage the boundary belongs to.
    pub stage: StageKind,
    /// The permitted divergence between the two sides.
    pub tolerance: Tolerance,
    /// Why the tolerance holds — the equivalence contract being tested.
    pub contract: &'static str,
}

/// Every checked stage boundary, in pipeline order.
pub const ORACLE_REGISTRY: &[OracleEntry] = &[
    OracleEntry {
        name: "encode_bins",
        stage: StageKind::Encode,
        tolerance: Tolerance::BitIdentical,
        contract: "bit-sliced window bundling accumulates the same \
                   integers as the scalar rotate-and-add reference; all \
                   arithmetic is exact",
    },
    OracleEntry {
        name: "score_all",
        stage: StageKind::Score,
        tolerance: Tolerance::BitIdentical,
        contract: "blocked dot products are exact i64 sums; class norms \
                   fold the precomputed sub-norm chunks in the same \
                   left-to-right order as the scalar reference",
    },
    OracleEntry {
        name: "retrain_epoch",
        stage: StageKind::Retrain,
        tolerance: Tolerance::BitIdentical,
        contract: "the blocked epoch applies the same sequential \
                   mispredict corrections as the scalar reference, in \
                   sample order",
    },
    OracleEntry {
        name: "retrain_epoch_parallel",
        stage: StageKind::Retrain,
        tolerance: Tolerance::BitIdentical,
        contract: "worker partitions replay their corrections in \
                   deterministic sample order, so the merged model is \
                   bit-identical to the sequential epoch",
    },
    OracleEntry {
        name: "packed_scores",
        stage: StageKind::QuantScore,
        tolerance: Tolerance::BitIdentical,
        contract: "bit-plane popcount dot products are exact integers and \
                   the class norms are the same left-to-right f64 fold as \
                   the unpacked model",
    },
    OracleEntry {
        name: "hamming_simd",
        stage: StageKind::Score,
        tolerance: Tolerance::BitIdentical,
        contract: "XOR+popcount Hamming distance is a sum of per-word \
                   popcounts; integer addition is associative, so every \
                   SIMD lane arrangement totals the same count as the \
                   portable word loop",
    },
    OracleEntry {
        name: "dot_packed_simd",
        stage: StageKind::QuantScore,
        tolerance: Tolerance::BitIdentical,
        contract: "the masked bit-plane popcount reduction is an exact \
                   integer sum per plane; SIMD lanes only reassociate the \
                   addition, so the packed dot product matches the \
                   portable loop bit for bit",
    },
    OracleEntry {
        name: "bundle_ripple_simd",
        stage: StageKind::Encode,
        tolerance: Tolerance::BitIdentical,
        contract: "the ripple-carry plane update is pure word-wise XOR/AND \
                   with no cross-word dependency, so vectorizing the word \
                   loop leaves every bit plane — and the decoded integer \
                   accumulator — identical to scalar bundling",
    },
    OracleEntry {
        name: "dot_i32_simd",
        stage: StageKind::Score,
        tolerance: Tolerance::BitIdentical,
        contract: "the i32×i32 dot product widens every product to i64 \
                   before summing; the sum cannot overflow and integer \
                   addition is associative, so SIMD lane order is \
                   irrelevant",
    },
    OracleEntry {
        name: "score_batch",
        stage: StageKind::Score,
        tolerance: Tolerance::BitIdentical,
        contract: "batched tiles accumulate the same exact i64 chunk dots \
                   as per-query scoring and normalize through the same \
                   prefix-norm tables, so the B×C score matrix equals the \
                   per-query scalar reference row for row",
    },
    OracleEntry {
        name: "resilient_baseline",
        stage: StageKind::Resilient,
        tolerance: Tolerance::BitIdentical,
        contract: "with the baseline config and no faults, the resilient \
                   pipeline is one full-dimension cosine pass; its answer \
                   is the first-maximum argmax of the quantized cosine \
                   scores",
    },
    OracleEntry {
        name: "pipeline_checkpoint",
        stage: StageKind::CheckpointRestore,
        tolerance: Tolerance::BitIdentical,
        contract: "the GHDC wire format is canonical: write∘read∘write \
                   emits identical bytes and the restored pipeline \
                   predicts identically",
    },
    OracleEntry {
        name: "sim_hw_scores",
        stage: StageKind::SimScore,
        tolerance: Tolerance::BitIdentical,
        contract: "hardware scores are recomputable from the stored class \
                   rows and chunked norm2 memory via the same Mitchell \
                   division; the prediction is the first-maximum argmax",
    },
    OracleEntry {
        name: "sim_activity",
        stage: StageKind::SimActivity,
        tolerance: Tolerance::BitIdentical,
        contract: "engine activity counter deltas equal the closed-form \
                   mitigation cost formulas for the same operation",
    },
    OracleEntry {
        name: "serve_answer",
        stage: StageKind::ConcurrentServe,
        tolerance: Tolerance::BitIdentical,
        contract: "every answer from the sharded server carries the \
                   immutable snapshot it was scored against and the \
                   dimensions used; replaying the request through the \
                   scalar predictor on that snapshot at those dimensions \
                   reproduces the label exactly, regardless of shard \
                   count, batching, or concurrent writer updates",
    },
    OracleEntry {
        name: "registry_view",
        stage: StageKind::Registry,
        tolerance: Tolerance::BitIdentical,
        contract: "a zero-copy view over a mapped GHDC v3 tenant file \
                   computes the exact i64 bit-plane dots the heap path \
                   computes after deserializing the same bytes, on every \
                   dispatched ISA — across cold loads, atomic hot-swaps, \
                   and evict/reload cycles",
    },
    OracleEntry {
        name: "net_answer",
        stage: StageKind::Network,
        tolerance: Tolerance::BitIdentical,
        contract: "an answer decoded from the framed TCP front-end \
                   carries the label, dimensions, and status the \
                   in-process ServerHandle oracle produces for the same \
                   request; replaying the features through the scalar \
                   predictor on a pinned snapshot at the answered \
                   dimensions reproduces the label exactly, for shared \
                   and tenant-routed requests alike — the socket, frame \
                   codec, and CRC trailer add transport, never drift",
    },
    OracleEntry {
        name: "saliency",
        stage: StageKind::Compress,
        tolerance: Tolerance::BitIdentical,
        contract: "per-dimension class-margin saliency accumulates exact \
                   i64 products; the rival class on each side comes from \
                   scores proven bit-identical by the score-stage \
                   contracts, so every dispatched ISA totals the same \
                   saliency as the per-query scalar reference",
    },
    OracleEntry {
        name: "prune",
        stage: StageKind::Compress,
        tolerance: Tolerance::BitIdentical,
        contract: "support selection is a deterministic total order \
                   (descending saliency, ties toward the lower index) and \
                   class compaction is an exact integer gather, so the \
                   pruned model matches an independent scalar selection \
                   exactly",
    },
    OracleEntry {
        name: "pruned_score",
        stage: StageKind::Compress,
        tolerance: Tolerance::BitIdentical,
        contract: "the mapped pruned view gathers parent-space query bits \
                   through the support mask and then runs the exact \
                   bit-plane popcount dots; compacting the query first and \
                   scoring through the heap quantized model visits the \
                   same bits in the same order, so scores match bit for \
                   bit on every dispatched ISA",
    },
];

/// Looks up a registry entry by its stable name.
pub fn lookup(name: &str) -> Option<&'static OracleEntry> {
    ORACLE_REGISTRY.iter().find(|e| e.name == name)
}

/// A fast implementation paired with its retained scalar reference,
/// executable by a harness that knows nothing about the kernel.
///
/// Both sides receive the same input; a conformance harness compares the
/// outputs under [`OracleEntry::tolerance`] (every in-crate kernel is
/// [`Tolerance::BitIdentical`], so plain equality is the check).
pub trait DifferentialKernel {
    /// The per-invocation input.
    type Input: ?Sized;
    /// The comparable output of both sides.
    type Output: PartialEq + std::fmt::Debug;

    /// The registry entry describing this boundary.
    fn entry(&self) -> &'static OracleEntry;

    /// Runs the optimised path.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (dimension mismatches, bad labels).
    fn fast(&self, input: &Self::Input) -> Result<Self::Output, HdcError>;

    /// Runs the retained scalar reference.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (dimension mismatches, bad labels).
    fn reference(&self, input: &Self::Input) -> Result<Self::Output, HdcError>;
}

/// [`GenericEncoder::encode_bins`] vs
/// [`GenericEncoder::encode_bins_scalar`]: quantized level bins in,
/// bundled hypervector out.
#[derive(Debug, Clone, Copy)]
pub struct EncodeKernel<'a> {
    /// The encoder under test.
    pub encoder: &'a GenericEncoder,
}

impl DifferentialKernel for EncodeKernel<'_> {
    type Input = [usize];
    type Output = IntHv;

    fn entry(&self) -> &'static OracleEntry {
        lookup("encode_bins").expect("registered")
    }

    fn fast(&self, bins: &[usize]) -> Result<IntHv, HdcError> {
        self.encoder.encode_bins(bins)
    }

    fn reference(&self, bins: &[usize]) -> Result<IntHv, HdcError> {
        self.encoder.encode_bins_scalar(bins)
    }
}

/// [`HdcModel::score_all`] vs [`HdcModel::scores_scalar`] under one set
/// of prediction options (full or reduced dimensions, either norm mode).
#[derive(Debug, Clone, Copy)]
pub struct ScoreKernel<'a> {
    /// The trained model under test.
    pub model: &'a HdcModel,
    /// Scoring options applied identically to both sides.
    pub opts: PredictOptions,
}

impl DifferentialKernel for ScoreKernel<'_> {
    type Input = IntHv;
    type Output = Vec<f64>;

    fn entry(&self) -> &'static OracleEntry {
        lookup("score_all").expect("registered")
    }

    fn fast(&self, query: &IntHv) -> Result<Vec<f64>, HdcError> {
        let mut out = Vec::new();
        self.model.score_all(query, self.opts, &mut out);
        Ok(out)
    }

    fn reference(&self, query: &IntHv) -> Result<Vec<f64>, HdcError> {
        Ok(self.model.scores_scalar(query, self.opts))
    }
}

/// One retraining epoch, blocked (and optionally parallel) vs scalar.
/// The input is the epoch's `(encoded, labels)` batch; the output is the
/// updated class matrix plus the epoch's mispredict count.
#[derive(Debug, Clone, Copy)]
pub struct RetrainKernel<'a> {
    /// The starting model; both sides run on their own clone.
    pub model: &'a HdcModel,
    /// Worker threads for the fast side (`> 1` exercises
    /// [`HdcModel::retrain_epoch_parallel`], otherwise
    /// [`HdcModel::retrain_epoch`]).
    pub threads: usize,
}

impl DifferentialKernel for RetrainKernel<'_> {
    type Input = (Vec<IntHv>, Vec<usize>);
    type Output = (Vec<Vec<i32>>, usize);

    fn entry(&self) -> &'static OracleEntry {
        if self.threads > 1 {
            lookup("retrain_epoch_parallel").expect("registered")
        } else {
            lookup("retrain_epoch").expect("registered")
        }
    }

    fn fast(&self, batch: &(Vec<IntHv>, Vec<usize>)) -> Result<Self::Output, HdcError> {
        let (encoded, labels) = batch;
        let mut model = self.model.clone();
        let errors = if self.threads > 1 {
            model.retrain_epoch_parallel(encoded, labels, self.threads)?
        } else {
            model.retrain_epoch(encoded, labels)?
        };
        Ok((class_rows(&model), errors))
    }

    fn reference(&self, batch: &(Vec<IntHv>, Vec<usize>)) -> Result<Self::Output, HdcError> {
        let (encoded, labels) = batch;
        let mut model = self.model.clone();
        let errors = model.retrain_epoch_scalar(encoded, labels)?;
        Ok((class_rows(&model), errors))
    }
}

/// [`PackedQuantizedModel::scores`] vs [`QuantizedModel::scores`] on a
/// binarized query.
#[derive(Debug, Clone, Copy)]
pub struct PackedScoreKernel<'a> {
    /// The unpacked quantized model (the reference side).
    pub quantized: &'a QuantizedModel,
    /// Its bit-plane packed counterpart (the fast side).
    pub packed: &'a PackedQuantizedModel,
}

impl DifferentialKernel for PackedScoreKernel<'_> {
    type Input = BinaryHv;
    type Output = Vec<f64>;

    fn entry(&self) -> &'static OracleEntry {
        lookup("packed_scores").expect("registered")
    }

    fn fast(&self, query: &BinaryHv) -> Result<Vec<f64>, HdcError> {
        self.packed.scores(query)
    }

    fn reference(&self, query: &BinaryHv) -> Result<Vec<f64>, HdcError> {
        Ok(self.quantized.scores(&IntHv::from(query.clone())))
    }
}

/// Resolves the kernel set for `isa`, erroring when the host CPU does not
/// support it (conformance harnesses should sweep
/// [`kernels::available`], which never yields an unsupported ISA).
fn kernel_set(isa: Isa) -> Result<&'static kernels::KernelSet, HdcError> {
    kernels::for_isa(isa)
        .ok_or_else(|| HdcError::invalid("isa", format!("{isa} not supported on this host")))
}

/// SIMD vs portable XOR+popcount Hamming distance on one pair of binary
/// hypervectors.
#[derive(Debug, Clone, Copy)]
pub struct HammingKernel {
    /// The ISA variant under test (the fast side).
    pub isa: Isa,
}

impl DifferentialKernel for HammingKernel {
    type Input = (BinaryHv, BinaryHv);
    type Output = usize;

    fn entry(&self) -> &'static OracleEntry {
        lookup("hamming_simd").expect("registered")
    }

    fn fast(&self, input: &(BinaryHv, BinaryHv)) -> Result<usize, HdcError> {
        input.0.hamming_with(&input.1, kernel_set(self.isa)?)
    }

    fn reference(&self, input: &(BinaryHv, BinaryHv)) -> Result<usize, HdcError> {
        input.0.hamming_with(&input.1, kernel_set(Isa::Portable)?)
    }
}

/// SIMD vs portable masked bit-plane dot product
/// ([`BinaryHv::dot_packed`]) of a binarized query against one packed
/// quantized class row.
#[derive(Debug, Clone, Copy)]
pub struct PackedDotKernel {
    /// The ISA variant under test (the fast side).
    pub isa: Isa,
}

impl DifferentialKernel for PackedDotKernel {
    type Input = (BinaryHv, PackedInts);
    type Output = i64;

    fn entry(&self) -> &'static OracleEntry {
        lookup("dot_packed_simd").expect("registered")
    }

    fn fast(&self, input: &(BinaryHv, PackedInts)) -> Result<i64, HdcError> {
        input.0.dot_packed_with(&input.1, kernel_set(self.isa)?)
    }

    fn reference(&self, input: &(BinaryHv, PackedInts)) -> Result<i64, HdcError> {
        input
            .0
            .dot_packed_with(&input.1, kernel_set(Isa::Portable)?)
    }
}

/// SIMD-rippled bit-sliced bundling vs the scalar rotate-free
/// [`IntHv::bundle_binary`] accumulation of the same hypervector batch.
#[derive(Debug, Clone, Copy)]
pub struct BundleKernel {
    /// The ISA variant under test (the fast side).
    pub isa: Isa,
}

impl DifferentialKernel for BundleKernel {
    type Input = [BinaryHv];
    type Output = IntHv;

    fn entry(&self) -> &'static OracleEntry {
        lookup("bundle_ripple_simd").expect("registered")
    }

    fn fast(&self, hvs: &[BinaryHv]) -> Result<IntHv, HdcError> {
        let dim = hvs.first().map_or(1, BinaryHv::dim);
        let mut acc = BitSliceAccumulator::with_kernels(dim, kernel_set(self.isa)?)?;
        for hv in hvs {
            acc.add(hv)?;
        }
        Ok(acc.to_int_hv())
    }

    fn reference(&self, hvs: &[BinaryHv]) -> Result<IntHv, HdcError> {
        let dim = hvs.first().map_or(1, BinaryHv::dim);
        let mut acc = IntHv::zeros(dim)?;
        for hv in hvs {
            acc.bundle_binary(hv)?;
        }
        Ok(acc)
    }
}

/// SIMD vs scalar exact widening `i32×i32 → i64` dot product — the inner
/// reduction of every similarity score.
#[derive(Debug, Clone, Copy)]
pub struct DotI32Kernel {
    /// The ISA variant under test (the fast side).
    pub isa: Isa,
}

impl DifferentialKernel for DotI32Kernel {
    type Input = (IntHv, IntHv);
    type Output = i64;

    fn entry(&self) -> &'static OracleEntry {
        lookup("dot_i32_simd").expect("registered")
    }

    fn fast(&self, input: &(IntHv, IntHv)) -> Result<i64, HdcError> {
        if input.0.dim() != input.1.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: input.0.dim(),
                actual: input.1.dim(),
            });
        }
        Ok(kernel_set(self.isa)?.dot_i32(input.0.values(), input.1.values()))
    }

    fn reference(&self, input: &(IntHv, IntHv)) -> Result<i64, HdcError> {
        input.0.dot(&input.1)
    }
}

/// [`ScoreBatch`] batched scoring (pinned to one ISA) vs per-query
/// [`HdcModel::scores_scalar`]: the input is the query batch, the output
/// is the flattened row-major B×C score matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScoreBatchKernel<'a> {
    /// The trained model under test.
    pub model: &'a HdcModel,
    /// Scoring options applied identically to both sides.
    pub opts: PredictOptions,
    /// The ISA variant the batched side dispatches through.
    pub isa: Isa,
}

impl DifferentialKernel for ScoreBatchKernel<'_> {
    type Input = [IntHv];
    type Output = Vec<f64>;

    fn entry(&self) -> &'static OracleEntry {
        lookup("score_batch").expect("registered")
    }

    fn fast(&self, queries: &[IntHv]) -> Result<Vec<f64>, HdcError> {
        let mut engine = ScoreBatch::with_kernels(kernel_set(self.isa)?);
        let mut out = Vec::new();
        engine.scores_into(self.model, queries, self.opts, &mut out);
        Ok(out)
    }

    fn reference(&self, queries: &[IntHv]) -> Result<Vec<f64>, HdcError> {
        Ok(queries
            .iter()
            .flat_map(|q| self.model.scores_scalar(q, self.opts))
            .collect())
    }
}

/// Saliency scoring dispatched through one ISA vs the per-query scalar
/// reference ([`crate::saliency_scalar`]). The input is the labeled
/// sample batch; the output is the full per-dimension saliency map.
#[derive(Debug, Clone, Copy)]
pub struct SaliencyKernel<'a> {
    /// The trained model under test.
    pub model: &'a HdcModel,
    /// The ISA variant the fast side dispatches through.
    pub isa: Isa,
}

impl DifferentialKernel for SaliencyKernel<'_> {
    type Input = (Vec<IntHv>, Vec<usize>);
    type Output = crate::SaliencyMap;

    fn entry(&self) -> &'static OracleEntry {
        lookup("saliency").expect("registered")
    }

    fn fast(&self, input: &(Vec<IntHv>, Vec<usize>)) -> Result<Self::Output, HdcError> {
        crate::compress::saliency_with(self.model, &input.0, &input.1, kernel_set(self.isa)?)
    }

    fn reference(&self, input: &(Vec<IntHv>, Vec<usize>)) -> Result<Self::Output, HdcError> {
        crate::saliency_scalar(self.model, &input.0, &input.1)
    }
}

/// [`crate::prune`] vs an independent scalar support selection: the
/// reference picks the support by repeated max-scan (no sort) and
/// gathers class rows one element at a time. The input is a saliency
/// map; the output is the ascending support plus the compacted class
/// matrix.
#[derive(Debug, Clone, Copy)]
pub struct PruneKernel<'a> {
    /// The trained model under test.
    pub model: &'a HdcModel,
    /// Dimensions to keep.
    pub keep: usize,
}

impl DifferentialKernel for PruneKernel<'_> {
    type Input = crate::SaliencyMap;
    type Output = (Vec<usize>, Vec<Vec<i32>>);

    fn entry(&self) -> &'static OracleEntry {
        lookup("prune").expect("registered")
    }

    fn fast(&self, sal: &crate::SaliencyMap) -> Result<Self::Output, HdcError> {
        let pruned = crate::prune(self.model, sal, self.keep)?;
        Ok((pruned.support().to_vec(), class_rows(pruned.model())))
    }

    fn reference(&self, sal: &crate::SaliencyMap) -> Result<Self::Output, HdcError> {
        if sal.dim() != self.model.dim() || self.keep == 0 || self.keep > self.model.dim() {
            return Err(HdcError::invalid("keep", "degenerate prune input"));
        }
        // Selection by repeated max-scan: highest score wins, ties go to
        // the lower index — the same total order as the fast side, found
        // without sorting.
        let scores = sal.scores();
        let mut taken = vec![false; scores.len()];
        for _ in 0..self.keep {
            let mut best: Option<usize> = None;
            for (d, &s) in scores.iter().enumerate() {
                if !taken[d] && best.is_none_or(|b| s > scores[b]) {
                    best = Some(d);
                }
            }
            taken[best.expect("keep <= dim")] = true;
        }
        let support: Vec<usize> = (0..scores.len()).filter(|&d| taken[d]).collect();
        let classes = self
            .model
            .iter()
            .map(|class| support.iter().map(|&d| class.values()[d]).collect())
            .collect();
        Ok((support, classes))
    }
}

/// Pruned-support scoring through the mapped [`crate::PackedModelView`]
/// on one ISA vs the scalar pruned oracle (query compacted first, then
/// scored through the heap [`QuantizedModel`]). The input is a
/// parent-width binarized query; the output is the per-class score
/// vector.
#[derive(Debug, Clone)]
pub struct PrunedScoreKernel {
    /// The serialized GHDC v3 image of the compressed model (the fast
    /// side maps and scores it zero-copy).
    pub image: Vec<u8>,
    /// The compressed model (support + heap quantized reference side).
    pub compressed: crate::CompressedModel,
    /// The ISA variant the fast side dispatches through.
    pub isa: Isa,
}

impl DifferentialKernel for PrunedScoreKernel {
    type Input = BinaryHv;
    type Output = Vec<f64>;

    fn entry(&self) -> &'static OracleEntry {
        lookup("pruned_score").expect("registered")
    }

    fn fast(&self, query: &BinaryHv) -> Result<Vec<f64>, HdcError> {
        // Views demand the mapping's 64-byte base alignment; copy the
        // image into an anonymous mapping exactly as the registry does.
        let mapping = crate::Mapping::from_bytes(&self.image)
            .map_err(|e| HdcError::invalid("image", e.to_string()))?;
        let view = crate::PackedModelView::new(&mapping)
            .map_err(|e| HdcError::invalid("image", e.to_string()))?;
        let mut out = Vec::new();
        view.scores_into_with(query, kernel_set(self.isa)?, &mut out)?;
        Ok(out)
    }

    fn reference(&self, query: &BinaryHv) -> Result<Vec<f64>, HdcError> {
        let bits: Vec<bool> = self
            .compressed
            .support()
            .iter()
            .map(|&d| query.bit(d))
            .collect();
        let compact = BinaryHv::from_bits(&bits)?;
        Ok(self.compressed.quantized().scores(&IntHv::from(compact)))
    }
}

fn class_rows(model: &HdcModel) -> Vec<Vec<i32>> {
    model.iter().map(|hv| hv.values().to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Encoder, GenericEncoderSpec};

    fn fixture() -> (GenericEncoder, HdcModel, Vec<IntHv>, Vec<usize>) {
        let features: Vec<Vec<f64>> = (0..12)
            .map(|i| (0..6).map(|j| ((i * 7 + j * 3) % 10) as f64).collect())
            .collect();
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let spec = GenericEncoderSpec::new(256, 6).with_seed(9);
        let encoder = GenericEncoder::from_data(spec, &features).unwrap();
        let encoded: Vec<IntHv> = features
            .iter()
            .map(|s| encoder.encode(s).unwrap())
            .collect();
        let model = HdcModel::fit(&encoded, &labels, 3).unwrap();
        (encoder, model, encoded, labels)
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for entry in ORACLE_REGISTRY {
            assert_eq!(lookup(entry.name).unwrap().name, entry.name);
        }
        let mut names: Vec<_> = ORACLE_REGISTRY.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            ORACLE_REGISTRY.len(),
            "duplicate registry name"
        );
        // Every stage is represented.
        for stage in StageKind::ALL {
            assert!(
                ORACLE_REGISTRY.iter().any(|e| e.stage == stage),
                "stage {stage} has no registered boundary"
            );
        }
    }

    #[test]
    fn kernels_agree_on_a_trained_fixture() {
        let (encoder, model, encoded, labels) = fixture();

        let encode = EncodeKernel { encoder: &encoder };
        let bins = encoder.quantizer().bins(&[1.0; 6]).unwrap();
        assert_eq!(
            encode.fast(&bins).unwrap(),
            encode.reference(&bins).unwrap()
        );

        let score = ScoreKernel {
            model: &model,
            opts: PredictOptions::full(model.dim()),
        };
        assert_eq!(
            score.fast(&encoded[0]).unwrap(),
            score.reference(&encoded[0]).unwrap()
        );

        for threads in [1, 3] {
            let retrain = RetrainKernel {
                model: &model,
                threads,
            };
            let batch = (encoded.clone(), labels.clone());
            assert_eq!(
                retrain.fast(&batch).unwrap(),
                retrain.reference(&batch).unwrap(),
                "threads={threads}"
            );
        }

        let quantized = QuantizedModel::from_model(&model, 4).unwrap();
        let packed = quantized.pack().unwrap();
        let kernel = PackedScoreKernel {
            quantized: &quantized,
            packed: &packed,
        };
        let binary = encoded[0].to_binary();
        assert_eq!(
            kernel.fast(&binary).unwrap(),
            kernel.reference(&binary).unwrap()
        );
    }

    #[test]
    fn simd_kernels_agree_with_their_scalar_oracles_on_every_isa() {
        let (_, model, encoded, _) = fixture();
        let a = encoded[0].to_binary();
        let b = encoded[1].to_binary();
        let packed = PackedInts::from_values(encoded[2].values()).unwrap();
        let hvs: Vec<BinaryHv> = encoded.iter().map(IntHv::to_binary).collect();
        let pair = (encoded[0].clone(), encoded[1].clone());
        let opts = PredictOptions::full(model.dim());

        for isa in kernels::available() {
            let hamming = HammingKernel { isa };
            let input = (a.clone(), b.clone());
            assert_eq!(
                hamming.fast(&input).unwrap(),
                hamming.reference(&input).unwrap(),
                "hamming isa={isa}"
            );

            let dot_packed = PackedDotKernel { isa };
            let input = (a.clone(), packed.clone());
            assert_eq!(
                dot_packed.fast(&input).unwrap(),
                dot_packed.reference(&input).unwrap(),
                "dot_packed isa={isa}"
            );

            let bundle = BundleKernel { isa };
            assert_eq!(
                bundle.fast(&hvs).unwrap(),
                bundle.reference(&hvs).unwrap(),
                "bundle isa={isa}"
            );

            let dot = DotI32Kernel { isa };
            assert_eq!(
                dot.fast(&pair).unwrap(),
                dot.reference(&pair).unwrap(),
                "dot_i32 isa={isa}"
            );

            let batch = ScoreBatchKernel {
                model: &model,
                opts,
                isa,
            };
            assert_eq!(
                batch.fast(&encoded).unwrap(),
                batch.reference(&encoded).unwrap(),
                "score_batch isa={isa}"
            );
        }
    }

    #[test]
    fn compress_kernels_agree_with_their_scalar_oracles_on_every_isa() {
        let (_, model, encoded, labels) = fixture();
        let batch = (encoded.clone(), labels.clone());

        for isa in kernels::available() {
            let kernel = SaliencyKernel { model: &model, isa };
            assert_eq!(
                kernel.fast(&batch).unwrap(),
                kernel.reference(&batch).unwrap(),
                "saliency isa={isa}"
            );
        }

        let sal = crate::saliency(&model, &encoded, &labels).unwrap();
        for keep in [1, 50, 128, model.dim()] {
            let kernel = PruneKernel {
                model: &model,
                keep,
            };
            assert_eq!(
                kernel.fast(&sal).unwrap(),
                kernel.reference(&sal).unwrap(),
                "prune keep={keep}"
            );
        }

        let pruned = crate::prune(&model, &sal, 100).unwrap();
        let compressed = crate::CompressedModel::from_pruned(&pruned, 4).unwrap();
        let image = compressed.image_bytes().unwrap();
        for isa in kernels::available() {
            let kernel = PrunedScoreKernel {
                image: image.clone(),
                compressed: compressed.clone(),
                isa,
            };
            for q in encoded.iter().take(4) {
                let query = q.to_binary();
                assert_eq!(
                    kernel.fast(&query).unwrap(),
                    kernel.reference(&query).unwrap(),
                    "pruned_score isa={isa}"
                );
            }
        }
    }

    #[test]
    fn isa_kernels_reject_unsupported_hosts_gracefully() {
        // An ISA for the other architecture can never be detected here,
        // so the kernel must error instead of executing the wrong code.
        #[cfg(target_arch = "x86_64")]
        let foreign = Isa::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Isa::Avx2;
        if kernels::for_isa(foreign).is_some() {
            return; // host genuinely supports it; nothing to reject
        }
        let hamming = HammingKernel { isa: foreign };
        let a = BinaryHv::random_seeded(128, 1).unwrap();
        let b = BinaryHv::random_seeded(128, 2).unwrap();
        assert!(hamming.fast(&(a, b)).is_err());
    }
}
