//! Packed binary hypervectors and integer accumulator hypervectors.
//!
//! Binary hypervectors use the *bipolar* interpretation throughout the
//! crate: a stored bit `0` denotes the component value `+1` and a stored
//! bit `1` denotes `-1`. Under this mapping, element-wise multiplication of
//! bipolar vectors is exactly XOR of the stored bits, which is what the
//! GENERIC datapath computes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kernels::{self, KernelSet};
use crate::HdcError;

const WORD_BITS: usize = 64;

/// A dense, bit-packed binary hypervector of fixed dimensionality.
///
/// Bits beyond `dim` in the last word are always zero; every operation
/// maintains this invariant so that population counts and word-level XORs
/// never see garbage padding.
///
/// ```
/// use generic_hdc::BinaryHv;
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = BinaryHv::random_seeded(1024, 1)?;
/// let b = BinaryHv::random_seeded(1024, 2)?;
/// // Random hypervectors are quasi-orthogonal...
/// assert!(a.dot_binary(&b)?.abs() < 150);
/// // ...and XOR binding is an isometry.
/// let key = BinaryHv::random_seeded(1024, 3)?;
/// assert_eq!(a.hamming(&b)?, a.xor(&key)?.hamming(&b.xor(&key)?)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinaryHv {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryHv {
    /// Creates the all-`+1` hypervector (all stored bits zero).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `dim == 0`.
    pub fn zeros(dim: usize) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::invalid("dim", "must be positive"));
        }
        Ok(BinaryHv {
            dim,
            words: vec![0; dim.div_ceil(WORD_BITS)],
        })
    }

    /// Draws a uniformly random hypervector from a seeded generator.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `dim == 0`.
    pub fn random(dim: usize, rng: &mut StdRng) -> Result<Self, HdcError> {
        let mut hv = Self::zeros(dim)?;
        for w in &mut hv.words {
            *w = rng.random();
        }
        hv.mask_padding();
        Ok(hv)
    }

    /// Convenience constructor seeding a fresh generator from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `dim == 0`.
    pub fn random_seeded(dim: usize, seed: u64) -> Result<Self, HdcError> {
        Self::random(dim, &mut StdRng::seed_from_u64(seed))
    }

    /// Builds a hypervector from explicit bits (`true` = stored bit 1 =
    /// bipolar `-1`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `bits` is empty.
    pub fn from_bits(bits: &[bool]) -> Result<Self, HdcError> {
        let mut hv = Self::zeros(bits.len())?;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                hv.set_bit(i);
            }
        }
        Ok(hv)
    }

    /// The dimensionality of the hypervector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of the packed 64-bit words (little-endian bit order: bit `i`
    /// lives at word `i / 64`, position `i % 64`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the stored bit at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets the stored bit at dimension `i` (component becomes `-1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn set_bit(&mut self, i: usize) {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        self.words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
    }

    /// Flips the stored bit at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        self.words[i / WORD_BITS] ^= 1 << (i % WORD_BITS);
    }

    /// Number of stored `1` bits (bipolar `-1` components).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another hypervector of the same dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn hamming(&self, other: &BinaryHv) -> Result<usize, HdcError> {
        self.hamming_with(other, kernels::active())
    }

    /// [`BinaryHv::hamming`] through an explicit kernel set — the hook the
    /// differential oracles use to pin every SIMD variant against the
    /// portable reference.
    pub(crate) fn hamming_with(
        &self,
        other: &BinaryHv,
        kernels: &KernelSet,
    ) -> Result<usize, HdcError> {
        self.check_dim(other)?;
        Ok(kernels.hamming(&self.words, &other.words) as usize)
    }

    /// Bipolar dot product with another binary hypervector:
    /// `dim - 2 * hamming`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn dot_binary(&self, other: &BinaryHv) -> Result<i64, HdcError> {
        let h = self.hamming(other)? as i64;
        Ok(self.dim as i64 - 2 * h)
    }

    /// XORs `other` into `self` in place (bipolar element-wise multiply,
    /// the HDC *binding* operation).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn xor_assign(&mut self, other: &BinaryHv) -> Result<(), HdcError> {
        self.check_dim(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        Ok(())
    }

    /// Returns `self XOR other` (bipolar element-wise multiply).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn xor(&self, other: &BinaryHv) -> Result<BinaryHv, HdcError> {
        let mut out = self.clone();
        out.xor_assign(other)?;
        Ok(out)
    }

    /// Circularly rotates the hypervector *upward* by `k` positions: output
    /// bit `(i + k) mod dim` equals input bit `i`.
    ///
    /// This is the permutation ρ of the paper — it preserves the population
    /// count and (quasi-)orthogonality, and is how the accelerator derives
    /// id hypervectors from a single stored seed (§4.3.1).
    pub fn rotated(&self, k: usize) -> BinaryHv {
        let k = k % self.dim;
        if k == 0 {
            return self.clone();
        }
        if self.dim.is_multiple_of(WORD_BITS) {
            self.rotated_word_aligned(k)
        } else {
            self.rotated_bitwise(k)
        }
    }

    fn rotated_word_aligned(&self, k: usize) -> BinaryHv {
        let nw = self.words.len();
        let word_shift = k / WORD_BITS;
        let bit_shift = k % WORD_BITS;
        let mut out = BinaryHv {
            dim: self.dim,
            words: vec![0; nw],
        };
        for j in 0..nw {
            let src = (j + nw - word_shift) % nw;
            let prev = (src + nw - 1) % nw;
            out.words[j] = if bit_shift == 0 {
                self.words[src]
            } else {
                (self.words[src] << bit_shift) | (self.words[prev] >> (WORD_BITS - bit_shift))
            };
        }
        out
    }

    fn rotated_bitwise(&self, k: usize) -> BinaryHv {
        let mut out = BinaryHv {
            dim: self.dim,
            words: vec![0; self.words.len()],
        };
        for i in 0..self.dim {
            if self.bit(i) {
                out.set_bit((i + k) % self.dim);
            }
        }
        out
    }

    /// Rotates by one position in place (the per-window id update of the
    /// hardware's `tmp`-register scheme).
    pub fn rotate_one_in_place(&mut self) {
        *self = self.rotated(1);
    }

    /// Adds the bipolar interpretation of this hypervector into an integer
    /// accumulator slice (`+1` for stored bit 0, `-1` for stored bit 1).
    ///
    /// This is the retained *scalar reference kernel* for bundling: it walks
    /// one dimension at a time. Hot paths bundle through
    /// [`BitSliceAccumulator`], which produces bit-identical results 64
    /// dimensions per word operation; the property tests pin the two
    /// together.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `acc.len() != self.dim()`.
    pub fn accumulate_into(&self, acc: &mut [i32]) -> Result<(), HdcError> {
        if acc.len() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: acc.len(),
            });
        }
        for (wi, &w) in self.words.iter().enumerate() {
            let base = wi * WORD_BITS;
            let n = WORD_BITS.min(self.dim - base);
            let chunk = &mut acc[base..base + n];
            for (b, slot) in chunk.iter_mut().enumerate() {
                *slot += 1 - 2 * ((w >> b) & 1) as i32;
            }
        }
        Ok(())
    }

    /// Bipolar dot product with an integer vector: `Σ ±values[i]`.
    ///
    /// This is the retained *scalar reference kernel* for binary × integer
    /// scoring. Hot paths use [`BinaryHv::dot_packed`] against a
    /// [`PackedInts`] sign/magnitude decomposition, which computes the same
    /// sum with word-wide XOR + popcount; the property tests pin the two
    /// together bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `values.len() != self.dim()`.
    pub fn dot_int(&self, values: &[i32]) -> Result<i64, HdcError> {
        if values.len() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: values.len(),
            });
        }
        let mut sum: i64 = 0;
        for (wi, &w) in self.words.iter().enumerate() {
            let base = wi * WORD_BITS;
            let n = WORD_BITS.min(self.dim - base);
            for b in 0..n {
                let v = i64::from(values[base + b]);
                sum += if (w >> b) & 1 == 1 { -v } else { v };
            }
        }
        Ok(sum)
    }

    /// Word-parallel bipolar dot product with a sign/magnitude-decomposed
    /// integer vector: `Σ ±packed[i]`, bit-identical to
    /// [`BinaryHv::dot_int`] on the values the decomposition was built
    /// from.
    ///
    /// With query sign bits `q`, value sign bits `σ`, and magnitude bit
    /// planes `P_k`, the product sign of dimension `i` is `1 - 2·(q⊕σ)_i`,
    /// so each plane contributes
    /// `2^k · (popcount(P_k) − 2·popcount(P_k ∧ (q⊕σ)))` — one XOR and one
    /// popcount per 64 dimensions per magnitude bit instead of a
    /// multiply-accumulate per dimension (the paper's word-parallel
    /// datapath, §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities
    /// differ.
    pub fn dot_packed(&self, packed: &PackedInts) -> Result<i64, HdcError> {
        self.dot_packed_with(packed, kernels::active())
    }

    /// [`BinaryHv::dot_packed`] through an explicit kernel set — the hook
    /// the differential oracles use to pin every SIMD variant against the
    /// portable reference.
    pub(crate) fn dot_packed_with(
        &self,
        packed: &PackedInts,
        kernels: &KernelSet,
    ) -> Result<i64, HdcError> {
        if packed.dim != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: packed.dim,
            });
        }
        let mut dot: i64 = 0;
        for (k, plane) in packed.planes.iter().enumerate() {
            let disagree = kernels.masked_popcount(&self.words, &packed.signs, plane);
            dot += (packed.plane_pop[k] - 2 * disagree) << k;
        }
        Ok(dot)
    }

    /// Bipolar components as `+1/-1` integers (mostly for tests and small
    /// examples; prefer the packed operations in hot paths).
    pub fn to_bipolar(&self) -> Vec<i32> {
        (0..self.dim)
            .map(|i| if self.bit(i) { -1 } else { 1 })
            .collect()
    }

    fn mask_padding(&mut self) {
        let rem = self.dim % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn check_dim(&self, other: &BinaryHv) -> Result<(), HdcError> {
        if self.dim != other.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        Ok(())
    }
}

/// Word-parallel bundling accumulator: per-dimension counters held as
/// bit planes (a carry-save "column counter" array), so adding a binary
/// hypervector costs an amortized two word operations per 64 dimensions
/// instead of 64 scalar adds.
///
/// Plane `k` holds bit `k` of every dimension's count of stored-`1` bits.
/// Adding a hypervector ripples a carry through the planes exactly like a
/// binary counter increment, which is amortized O(1) planes per word.
/// [`BitSliceAccumulator::accumulate_into`] converts the counts back to
/// bipolar sums (`count_of(+1) − count_of(−1) = n − 2·ones`), making the
/// result bit-identical to repeated [`BinaryHv::accumulate_into`].
///
/// ```
/// use generic_hdc::{BinaryHv, BitSliceAccumulator, IntHv};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = BinaryHv::random_seeded(256, 1)?;
/// let b = BinaryHv::random_seeded(256, 2)?;
/// let mut fast = BitSliceAccumulator::new(256)?;
/// fast.add(&a)?;
/// fast.add(&b)?;
/// let mut scalar = IntHv::zeros(256)?;
/// scalar.bundle_binary(&a)?;
/// scalar.bundle_binary(&b)?;
/// assert_eq!(fast.to_int_hv(), scalar);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitSliceAccumulator {
    dim: usize,
    /// `planes[k][w]`: bit `k` of the ones-count of dimensions `64w..64w+63`.
    planes: Vec<Vec<u64>>,
    /// Number of hypervectors added so far.
    count: usize,
    /// Carry scratch: holds the incoming addend while it ripples through
    /// the planes (kept allocated across adds; not part of the value).
    carry: Vec<u64>,
    /// Kernel set the ripple dispatches through (not part of the value —
    /// every set produces bit-identical planes).
    kernels: &'static KernelSet,
}

impl PartialEq for BitSliceAccumulator {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.count == other.count && self.planes == other.planes
    }
}

impl Eq for BitSliceAccumulator {}

impl BitSliceAccumulator {
    /// Creates an empty accumulator of dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, HdcError> {
        Self::with_kernels(dim, kernels::active())
    }

    /// [`BitSliceAccumulator::new`] with an explicit kernel set — the hook
    /// the differential oracles use to pin every SIMD ripple variant
    /// against the portable reference.
    pub(crate) fn with_kernels(dim: usize, kernels: &'static KernelSet) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::invalid("dim", "must be positive"));
        }
        Ok(BitSliceAccumulator {
            dim,
            planes: Vec::new(),
            count: 0,
            carry: Vec::new(),
            kernels,
        })
    }

    /// The dimensionality of the accumulator.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of hypervectors bundled so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Resets the accumulator to empty without releasing plane storage.
    pub fn clear(&mut self) {
        for plane in &mut self.planes {
            plane.iter_mut().for_each(|w| *w = 0);
        }
        self.count = 0;
    }

    /// Bundles one binary hypervector (counts its stored-`1` bits per
    /// dimension, word-parallel).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities
    /// differ.
    pub fn add(&mut self, hv: &BinaryHv) -> Result<(), HdcError> {
        if hv.dim != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: hv.dim,
            });
        }
        self.carry.clear();
        self.carry.extend_from_slice(&hv.words);
        self.ripple();
        self.count += 1;
        Ok(())
    }

    /// Bundles the XOR of `srcs` (the HDC *bind-then-bundle* step) without
    /// materializing the bound hypervector: the XOR is computed straight
    /// into the carry scratch and rippled from there. This is the
    /// per-window hot path of the GENERIC encoder — one fused read pass
    /// over the operands instead of a clone plus one read-modify-write
    /// pass per operand.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if `srcs` is empty, or
    /// [`HdcError::DimensionMismatch`] if any operand has the wrong
    /// dimensionality.
    pub fn add_xor(&mut self, srcs: &[&BinaryHv]) -> Result<(), HdcError> {
        let (first, rest) = srcs.split_first().ok_or(HdcError::EmptyInput)?;
        if let Some(bad) = srcs.iter().find(|hv| hv.dim != self.dim) {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: bad.dim,
            });
        }
        self.carry.clear();
        self.carry.extend_from_slice(&first.words);
        for hv in rest {
            for (c, &w) in self.carry.iter_mut().zip(&hv.words) {
                *c ^= w;
            }
        }
        self.ripple();
        self.count += 1;
        Ok(())
    }

    /// Ripples the addend in `self.carry` through the planes like a binary
    /// counter increment, plane-major so each pass is a straight-line
    /// word loop (no per-word branching). The carry scratch is consumed.
    fn ripple(&mut self) {
        let kernels = self.kernels;
        for plane in &mut self.planes {
            if kernels.ripple_step(plane, &mut self.carry) == 0 {
                return;
            }
        }
        self.planes.push(self.carry.clone());
    }

    /// Adds the accumulated bipolar sums into an integer slice: each
    /// dimension receives `count − 2·ones`, exactly what bundling the same
    /// hypervectors one by one with [`BinaryHv::accumulate_into`] yields.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `acc.len() != self.dim()`.
    pub fn accumulate_into(&self, acc: &mut [i32]) -> Result<(), HdcError> {
        if acc.len() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: acc.len(),
            });
        }
        let n = self.count as i32;
        let n_words = self.dim.div_ceil(WORD_BITS);
        let mut ones = [0i32; WORD_BITS];
        for wi in 0..n_words {
            let base = wi * WORD_BITS;
            let lanes = WORD_BITS.min(self.dim - base);
            ones[..lanes].iter_mut().for_each(|o| *o = 0);
            for (k, plane) in self.planes.iter().enumerate() {
                let w = plane[wi];
                if w == 0 {
                    continue;
                }
                for (b, o) in ones[..lanes].iter_mut().enumerate() {
                    *o += (((w >> b) & 1) as i32) << k;
                }
            }
            for (slot, &o) in acc[base..base + lanes].iter_mut().zip(&ones[..lanes]) {
                *slot += n - 2 * o;
            }
        }
        Ok(())
    }

    /// Consumes nothing: materializes the accumulated bundle as an
    /// [`IntHv`].
    pub fn to_int_hv(&self) -> IntHv {
        let mut out = IntHv::zeros(self.dim).expect("dim validated non-zero");
        self.accumulate_into(out.values_mut())
            .expect("dimensions match by construction");
        out
    }
}

/// A sign/magnitude bit-plane decomposition of an integer vector, the
/// word-parallel operand of [`BinaryHv::dot_packed`].
///
/// `signs` packs the value signs (bit set ⇔ negative); plane `k` packs bit
/// `k` of every `|value|`. Scoring a packed binary query against a
/// quantized class row then needs one XOR + `planes` popcounts per 64
/// dimensions — the software shape of the accelerator's bit-serial
/// similarity datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedInts {
    dim: usize,
    signs: Vec<u64>,
    planes: Vec<Vec<u64>>,
    /// Popcount of each magnitude plane, hoisted out of the dot kernel.
    plane_pop: Vec<i64>,
}

impl PackedInts {
    /// Decomposes an integer vector into sign + magnitude bit planes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `values` is empty or
    /// contains `i32::MIN` (whose magnitude is not representable).
    pub fn from_values(values: &[i32]) -> Result<Self, HdcError> {
        if values.is_empty() {
            return Err(HdcError::invalid("values", "must be non-empty"));
        }
        if values.contains(&i32::MIN) {
            return Err(HdcError::invalid("values", "i32::MIN is not packable"));
        }
        let dim = values.len();
        let n_words = dim.div_ceil(WORD_BITS);
        let max_mag = values.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0);
        let n_planes = (32 - max_mag.leading_zeros()) as usize;
        let mut signs = vec![0u64; n_words];
        let mut planes = vec![vec![0u64; n_words]; n_planes];
        for (i, &v) in values.iter().enumerate() {
            let (wi, b) = (i / WORD_BITS, i % WORD_BITS);
            if v < 0 {
                signs[wi] |= 1 << b;
            }
            let mag = v.unsigned_abs();
            for (k, plane) in planes.iter_mut().enumerate() {
                if (mag >> k) & 1 == 1 {
                    plane[wi] |= 1 << b;
                }
            }
        }
        let plane_pop = planes
            .iter()
            .map(|p| p.iter().map(|w| i64::from(w.count_ones())).sum())
            .collect();
        Ok(PackedInts {
            dim,
            signs,
            planes,
            plane_pop,
        })
    }

    /// Decomposes a quantized (`i16`) class row.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `values` is empty.
    pub fn from_i16(values: &[i16]) -> Result<Self, HdcError> {
        let widened: Vec<i32> = values.iter().map(|&v| i32::from(v)).collect();
        Self::from_values(&widened)
    }

    /// The dimensionality of the packed vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of magnitude bit planes (0 for an all-zero vector).
    pub fn n_planes(&self) -> usize {
        self.planes.len()
    }
}

/// An integer-valued hypervector: the result of bundling (element-wise
/// adding) bipolar hypervectors, e.g. an encoded input or a class
/// accumulator.
///
/// ```
/// use generic_hdc::{BinaryHv, IntHv};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = BinaryHv::random_seeded(256, 1)?;
/// let mut bundle = IntHv::zeros(256)?;
/// bundle.bundle_binary(&a)?;
/// bundle.bundle_binary(&a)?;
/// bundle.bundle_binary(&BinaryHv::random_seeded(256, 2)?)?;
/// // The majority of the bundle is still `a`.
/// assert_eq!(bundle.to_binary(), a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IntHv {
    values: Vec<i32>,
}

impl IntHv {
    /// Creates a zero accumulator of dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `dim == 0`.
    pub fn zeros(dim: usize) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::invalid("dim", "must be positive"));
        }
        Ok(IntHv {
            values: vec![0; dim],
        })
    }

    /// Wraps an explicit component vector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `values` is empty.
    pub fn from_values(values: Vec<i32>) -> Result<Self, HdcError> {
        if values.is_empty() {
            return Err(HdcError::invalid("values", "must be non-empty"));
        }
        Ok(IntHv { values })
    }

    /// The dimensionality of the hypervector.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Borrow of the raw components.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Mutable borrow of the raw components.
    pub fn values_mut(&mut self) -> &mut [i32] {
        &mut self.values
    }

    /// Consumes the hypervector and returns its components.
    pub fn into_values(self) -> Vec<i32> {
        self.values
    }

    /// Bundles a bipolar binary hypervector into this accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn bundle_binary(&mut self, hv: &BinaryHv) -> Result<(), HdcError> {
        hv.accumulate_into(&mut self.values)
    }

    /// Element-wise adds another integer hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn add_assign(&mut self, other: &IntHv) -> Result<(), HdcError> {
        self.check_dim(other)?;
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
        Ok(())
    }

    /// Element-wise subtracts another integer hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn sub_assign(&mut self, other: &IntHv) -> Result<(), HdcError> {
        self.check_dim(other)?;
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a -= b;
        }
        Ok(())
    }

    /// Dot product with another integer hypervector over the first
    /// `dims` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ
    /// or `dims` exceeds them.
    pub fn dot_prefix(&self, other: &IntHv, dims: usize) -> Result<i64, HdcError> {
        self.check_dim(other)?;
        if dims > self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: dims,
            });
        }
        Ok(self.values[..dims]
            .iter()
            .zip(&other.values[..dims])
            .map(|(&a, &b)| i64::from(a) * i64::from(b))
            .sum())
    }

    /// Full-width dot product with another integer hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn dot(&self, other: &IntHv) -> Result<i64, HdcError> {
        self.dot_prefix(other, self.dim())
    }

    /// Squared L2 norm (as `f64`, exact for the magnitudes HDC produces).
    pub fn norm2(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum()
    }

    /// Binarizes by sign: components `>= 0` become bipolar `+1` (stored
    /// bit 0), negative components become `-1` (stored bit 1).
    pub fn to_binary(&self) -> BinaryHv {
        let mut hv = BinaryHv::zeros(self.dim()).expect("IntHv dim is validated non-zero");
        for (i, &v) in self.values.iter().enumerate() {
            if v < 0 {
                hv.set_bit(i);
            }
        }
        hv
    }

    /// Cosine similarity with another integer hypervector. Returns `0.0`
    /// when either vector is all-zero.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn cosine(&self, other: &IntHv) -> Result<f64, HdcError> {
        let dot = self.dot(other)? as f64;
        let denom = (self.norm2() * other.norm2()).sqrt();
        Ok(if denom == 0.0 { 0.0 } else { dot / denom })
    }

    fn check_dim(&self, other: &IntHv) -> Result<(), HdcError> {
        if self.dim() != other.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(())
    }
}

impl From<BinaryHv> for IntHv {
    fn from(hv: BinaryHv) -> Self {
        let mut acc = IntHv::zeros(hv.dim()).expect("BinaryHv dim is validated non-zero");
        acc.bundle_binary(&hv)
            .expect("dimensions match by construction");
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zeros_has_no_ones() {
        let hv = BinaryHv::zeros(100).unwrap();
        assert_eq!(hv.count_ones(), 0);
        assert_eq!(hv.dim(), 100);
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(BinaryHv::zeros(0).is_err());
        assert!(IntHv::zeros(0).is_err());
    }

    #[test]
    fn random_is_roughly_balanced() {
        let hv = BinaryHv::random(4096, &mut rng(1)).unwrap();
        let ones = hv.count_ones();
        assert!((1800..=2300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn random_respects_padding() {
        // dim not a multiple of 64: padding bits must stay clear so that
        // count_ones is meaningful.
        let hv = BinaryHv::random(70, &mut rng(2)).unwrap();
        assert!(hv.count_ones() <= 70);
    }

    #[test]
    fn xor_is_involution() {
        let a = BinaryHv::random(256, &mut rng(3)).unwrap();
        let b = BinaryHv::random(256, &mut rng(4)).unwrap();
        let c = a.xor(&b).unwrap().xor(&b).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn xor_dimension_mismatch() {
        let a = BinaryHv::zeros(64).unwrap();
        let b = BinaryHv::zeros(128).unwrap();
        assert!(matches!(
            a.xor(&b),
            Err(HdcError::DimensionMismatch {
                expected: 64,
                actual: 128
            })
        ));
    }

    #[test]
    fn hamming_of_self_is_zero() {
        let a = BinaryHv::random(512, &mut rng(5)).unwrap();
        assert_eq!(a.hamming(&a).unwrap(), 0);
        assert_eq!(a.dot_binary(&a).unwrap(), 512);
    }

    #[test]
    fn random_pair_is_quasi_orthogonal() {
        let a = BinaryHv::random(4096, &mut rng(6)).unwrap();
        let b = BinaryHv::random(4096, &mut rng(7)).unwrap();
        let dot = a.dot_binary(&b).unwrap();
        assert!(dot.abs() < 300, "dot = {dot}");
    }

    #[test]
    fn rotation_round_trips() {
        for dim in [64, 128, 4096, 70, 130] {
            let a = BinaryHv::random(dim, &mut rng(8)).unwrap();
            assert_eq!(a.rotated(dim), a, "dim={dim}");
            let r = a.rotated(13);
            assert_eq!(r.rotated(dim - 13), a, "dim={dim}");
        }
    }

    #[test]
    fn rotation_matches_bitwise_reference() {
        let a = BinaryHv::random(256, &mut rng(9)).unwrap();
        for k in [0, 1, 5, 63, 64, 65, 200, 255] {
            let fast = a.rotated(k);
            let slow = a.rotated_bitwise(k % 256);
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn rotation_preserves_population() {
        let a = BinaryHv::random(4096, &mut rng(10)).unwrap();
        assert_eq!(a.rotated(1000).count_ones(), a.count_ones());
    }

    #[test]
    fn rotation_by_one_moves_each_bit() {
        let mut a = BinaryHv::zeros(128).unwrap();
        a.set_bit(127);
        let r = a.rotated(1);
        assert!(r.bit(0));
        assert_eq!(r.count_ones(), 1);
    }

    #[test]
    fn accumulate_matches_bipolar() {
        let a = BinaryHv::random(200, &mut rng(11)).unwrap();
        let mut acc = vec![0i32; 200];
        a.accumulate_into(&mut acc).unwrap();
        assert_eq!(acc, a.to_bipolar());
    }

    #[test]
    fn dot_int_matches_reference() {
        let a = BinaryHv::random(300, &mut rng(12)).unwrap();
        let vals: Vec<i32> = (0..300).map(|i| (i % 17) - 8).collect();
        let expected: i64 = a
            .to_bipolar()
            .iter()
            .zip(&vals)
            .map(|(&s, &v)| i64::from(s) * i64::from(v))
            .sum();
        assert_eq!(a.dot_int(&vals).unwrap(), expected);
    }

    #[test]
    fn bundle_and_binarize() {
        let a = BinaryHv::random(128, &mut rng(13)).unwrap();
        let mut acc = IntHv::zeros(128).unwrap();
        acc.bundle_binary(&a).unwrap();
        acc.bundle_binary(&a).unwrap();
        acc.bundle_binary(&a).unwrap();
        // Majority of three copies of `a` is `a` itself.
        assert_eq!(acc.to_binary(), a);
    }

    #[test]
    fn cosine_of_self_is_one() {
        let a: IntHv = BinaryHv::random(512, &mut rng(14)).unwrap().into();
        let c = a.cosine(&a).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_is_zero() {
        let z = IntHv::zeros(64).unwrap();
        let a: IntHv = BinaryHv::random(64, &mut rng(15)).unwrap().into();
        assert_eq!(z.cosine(&a).unwrap(), 0.0);
    }

    #[test]
    fn add_sub_round_trip() {
        let a: IntHv = BinaryHv::random(128, &mut rng(16)).unwrap().into();
        let b: IntHv = BinaryHv::random(128, &mut rng(17)).unwrap().into();
        let mut c = a.clone();
        c.add_assign(&b).unwrap();
        c.sub_assign(&b).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn dot_prefix_bounds_checked() {
        let a = IntHv::zeros(64).unwrap();
        let b = IntHv::zeros(64).unwrap();
        assert!(a.dot_prefix(&b, 65).is_err());
        assert_eq!(a.dot_prefix(&b, 64).unwrap(), 0);
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let a = BinaryHv::random_seeded(256, 42).unwrap();
        let b = BinaryHv::random_seeded(256, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bit_slice_accumulator_matches_scalar_bundling() {
        for dim in [64usize, 70, 128, 130, 192, 1000] {
            let mut fast = BitSliceAccumulator::new(dim).unwrap();
            let mut scalar = vec![0i32; dim];
            let mut r = rng(dim as u64);
            for _ in 0..37 {
                let hv = BinaryHv::random(dim, &mut r).unwrap();
                fast.add(&hv).unwrap();
                hv.accumulate_into(&mut scalar).unwrap();
            }
            let mut folded = vec![0i32; dim];
            fast.accumulate_into(&mut folded).unwrap();
            assert_eq!(folded, scalar, "dim={dim}");
            assert_eq!(fast.count(), 37);
        }
    }

    #[test]
    fn bit_slice_accumulator_clear_reuses_planes() {
        let mut acc = BitSliceAccumulator::new(128).unwrap();
        for s in 0..9 {
            acc.add(&BinaryHv::random_seeded(128, s).unwrap()).unwrap();
        }
        acc.clear();
        assert_eq!(acc.count(), 0);
        let hv = BinaryHv::random_seeded(128, 99).unwrap();
        acc.add(&hv).unwrap();
        assert_eq!(acc.to_int_hv(), IntHv::from(hv));
    }

    #[test]
    fn bit_slice_accumulator_validates() {
        assert!(BitSliceAccumulator::new(0).is_err());
        let mut acc = BitSliceAccumulator::new(64).unwrap();
        let wrong = BinaryHv::zeros(128).unwrap();
        assert!(acc.add(&wrong).is_err());
        let mut short = vec![0i32; 32];
        assert!(acc.accumulate_into(&mut short).is_err());
    }

    #[test]
    fn dot_packed_matches_dot_int() {
        let a = BinaryHv::random(300, &mut rng(21)).unwrap();
        let vals: Vec<i32> = (0..300).map(|i| (i % 31) - 15).collect();
        let packed = PackedInts::from_values(&vals).unwrap();
        assert_eq!(a.dot_packed(&packed).unwrap(), a.dot_int(&vals).unwrap());
    }

    #[test]
    fn dot_packed_handles_all_zero_and_extremes() {
        let a = BinaryHv::random(128, &mut rng(22)).unwrap();
        let zeros = vec![0i32; 128];
        let packed = PackedInts::from_values(&zeros).unwrap();
        assert_eq!(packed.n_planes(), 0);
        assert_eq!(a.dot_packed(&packed).unwrap(), 0);

        let extremes: Vec<i32> = (0..128)
            .map(|i| if i % 2 == 0 { i32::MAX } else { -i32::MAX })
            .collect();
        let packed = PackedInts::from_values(&extremes).unwrap();
        assert_eq!(
            a.dot_packed(&packed).unwrap(),
            a.dot_int(&extremes).unwrap()
        );
    }

    #[test]
    fn packed_ints_validates() {
        assert!(PackedInts::from_values(&[]).is_err());
        assert!(PackedInts::from_values(&[1, i32::MIN]).is_err());
        let packed = PackedInts::from_i16(&[1, -2, 3]).unwrap();
        assert_eq!(packed.dim(), 3);
        let wrong = BinaryHv::zeros(64).unwrap();
        assert!(wrong.dot_packed(&packed).is_err());
    }
}
