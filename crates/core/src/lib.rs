//! # generic-hdc
//!
//! A hyperdimensional computing (HDC) library reproducing the algorithms of
//! *GENERIC: Highly Efficient Learning Engine on Edge using Hyperdimensional
//! Computing* (Khaleghi et al., DAC 2022).
//!
//! HDC encodes raw inputs into high-dimensional (~2–8 K) binary/bipolar
//! *hypervectors* and learns with element-wise, massively bit-parallel
//! operations. This crate provides:
//!
//! - bit-packed binary hypervectors and integer accumulator hypervectors
//!   ([`BinaryHv`], [`IntHv`]),
//! - distance-preserving *level* item memories and *id* memories, including
//!   the hardware-faithful seed-permutation id generator the GENERIC
//!   accelerator uses for its 1024× id-memory compression ([`LevelMemory`],
//!   [`IdMemory`]),
//! - the five encodings evaluated in the paper: random projection, level-id,
//!   ngram, permutation, and the proposed **GENERIC** encoding of Eq. (1)
//!   (module [`encoding`]),
//! - HDC classification — single-pass training, mispredict-driven
//!   retraining, and cosine-similarity inference with on-demand dimension
//!   reduction ([`HdcModel`]),
//! - model quantization to 1/2/4/8/16-bit class elements with bit-accurate
//!   fault injection hooks used by the voltage over-scaling study
//!   ([`QuantizedModel`]),
//! - a seeded fault-injection engine distinguishing transient (per-read),
//!   persistent (stuck-cell), and accumulating (retention) faults across
//!   class memories, item/id memories, and encoded queries ([`FaultModel`]),
//! - resilient inference: confidence-gated escalation from reduced to full
//!   dimensions, majority voting over redundant reads, and periodic class
//!   memory scrubbing ([`ResilientPipeline`]),
//! - a crash-safe streaming online-learning runtime: atomic
//!   generation-numbered checkpoints, deadline-aware graceful degradation
//!   over the sub-norm reduction tiers, and quarantine-not-panic input
//!   handling (module [`runtime`]),
//! - a supervised sharded serving runtime: panic-isolated worker shards
//!   scoring RCU snapshots behind bounded queues with backpressure,
//!   deadline-aware admission control, restart backoff with a circuit
//!   breaker, and graceful drain (module [`serve`]),
//! - a dependency-free framed TCP front-end over the serving runtime:
//!   length-prefixed, CRC32-trailed binary frames with per-request status
//!   codes for shed/deadline/quarantine outcomes (module [`net`]),
//! - post-training compression: saliency-guided dimension pruning with
//!   retrain-after-prune recovery, composed with quantization, and an
//!   automatic accuracy/size Pareto search emitting the smallest model
//!   meeting a target accuracy (module [`compress`]),
//! - HDC clustering with copy-centroid epochs ([`HdcClustering`]),
//! - evaluation metrics: accuracy and normalized mutual information
//!   (module [`metrics`]).
//!
//! ## Quick example
//!
//! ```
//! use generic_hdc::{encoding::{Encoder, GenericEncoder, GenericEncoderSpec}, HdcModel};
//!
//! # fn main() -> Result<(), generic_hdc::HdcError> {
//! // Two trivially separable 8-feature classes.
//! let train: Vec<Vec<f64>> = (0..40)
//!     .map(|i| vec![if i % 2 == 0 { 0.1 } else { 0.9 }; 8])
//!     .collect();
//! let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
//!
//! let spec = GenericEncoderSpec::new(2_048, 8).with_seed(7);
//! let encoder = GenericEncoder::from_data(spec, &train)?;
//!
//! let encoded = encoder.encode_batch(&train)?;
//! let mut model = HdcModel::fit(&encoded, &labels, 2)?;
//! model.retrain(&encoded, &labels, 5)?;
//!
//! let query = encoder.encode(&[0.1; 8])?;
//! assert_eq!(model.predict(&query), 0);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod binary_model;
mod cluster;
mod error;
mod fault;
mod hv;
mod id;
mod level;
mod model;
mod pipeline;
mod quant;
mod resilient;

pub mod compress;
pub mod encoding;
pub mod io;
// The SIMD dispatch layer is one of the two modules allowed to contain
// `unsafe` (detection-guarded `#[target_feature]` calls and unaligned
// vector loads); everything else in the crate stays `unsafe`-free.
#[allow(unsafe_code)]
pub mod kernels;
// The other `unsafe` module: raw-syscall `mmap` ownership and the one
// checked byte→word reinterpretation backing zero-copy model views.
pub mod ledger;
#[allow(unsafe_code)]
pub mod mapped;
pub mod metrics;
pub mod net;
pub mod oracle;
pub mod registry;
pub mod runtime;
pub mod serve;

pub use binary_model::BinaryModel;
pub use cluster::{ClusteringOutcome, HdcClustering, HdcClusteringSpec};
pub use compress::{
    pareto_search, prune, saliency, saliency_scalar, CompressOptions, CompressedModel,
    CompressionOutcome, ParetoPoint, PrunedModel, SaliencyMap,
};
pub use error::HdcError;
pub use fault::{DefectMap, FaultKind, FaultModel};
pub use hv::{BinaryHv, BitSliceAccumulator, IntHv, PackedInts};
pub use id::IdMemory;
pub use ledger::{FsOp, Ledger, LedgerFs, Manifest, ManifestError, RecoveryOutcome};
pub use level::{LevelMemory, Quantizer};
pub use mapped::Mapping;
pub use model::{HdcModel, NormMode, PredictOptions, ScoreBatch};
pub use net::{
    Frame, FrameError, FrameReader, LatencySummary, NetConfig, NetFrontend, NetStats, NetStatus,
};
pub use pipeline::HdcPipeline;
pub use quant::{pack_bits, unpack_bits, PackedModelView, PackedQuantizedModel, QuantizedModel};
pub use registry::{ModelRegistry, RegistryConfig, RegistryError, RegistryStats, TenantHandle};
pub use resilient::{ResilienceConfig, ResilienceStats, ResilientPipeline};
pub use runtime::{
    CheckpointStore, DegradationLadder, MicroBatcher, ModelSnapshot, OnlineRuntime, RetryPolicy,
    RuntimeConfig, RuntimeError, RuntimeStats, SnapshotCell,
};
pub use serve::{
    DrainReport, ServeAnswer, ServeConfig, ServeError, ServeStats, Server, ServerHandle,
    SubmitError, Ticket,
};

/// Number of encoding dimensions the GENERIC accelerator produces per pass
/// over the stored input (the architectural constant *m* of §4.1).
pub const LANES: usize = 16;

/// Granularity (in dimensions) at which sub-hypervector L2 norms are stored
/// for on-demand dimension reduction (§4.3.3).
pub const SUB_NORM_CHUNK: usize = 128;
