//! Compact binary serialization of trained models.
//!
//! Edge deployments train offline and ship the model over the
//! accelerator's `config` port (§4.1), so models need a stable,
//! allocation-light wire format. The format is versioned little-endian:
//!
//! ```text
//! magic "GHDC" | u8 version | u8 kind | u8 bit_width | pad
//! u32 dim | u32 n_classes | payload (class elements, LE)
//! u32 crc32 (version 2 only)
//! ```
//!
//! `kind` 0 = full-precision [`HdcModel`] (i32 elements),
//! `kind` 1 = [`QuantizedModel`] (i16 elements).
//!
//! Version 2 (current) seals the stream with a CRC32 (IEEE) footer over
//! everything before it, so a model damaged in transit or storage fails
//! with [`ReadModelError::ChecksumMismatch`] instead of silently loading
//! flipped class elements. Version 1 streams (no footer) remain readable.
//!
//! This module is part of the panic-free serving surface: no code path
//! reachable from a public API may `unwrap`/`expect` — every failure
//! surfaces as a typed [`ReadModelError`] (or an `io::Error` on writes).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, Read, Write};

use crate::{HdcError, HdcModel, IntHv, QuantizedModel};

const MAGIC: [u8; 4] = *b"GHDC";
const VERSION: u8 = 2;
const LEGACY_VERSION: u8 = 1;
const KIND_FULL: u8 = 0;
const KIND_QUANTIZED: u8 = 1;

/// Errors produced while reading a serialized model.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a GHDC model (bad magic).
    BadMagic,
    /// The stream uses an unsupported format version.
    UnsupportedVersion(u8),
    /// The stream encodes a different model kind than requested.
    WrongKind {
        /// Kind byte found in the stream.
        found: u8,
        /// Kind byte the caller expected.
        expected: u8,
    },
    /// The CRC32 footer disagrees with the stream contents: the model
    /// was corrupted (or truncated) after it was written.
    ChecksumMismatch {
        /// CRC32 stored in the stream footer.
        stored: u32,
        /// CRC32 computed over the received bytes.
        computed: u32,
    },
    /// The decoded header or payload is inconsistent.
    Corrupt(HdcError),
}

impl std::fmt::Display for ReadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadModelError::Io(e) => write!(f, "i/o failure: {e}"),
            ReadModelError::BadMagic => write!(f, "not a GHDC model stream"),
            ReadModelError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            ReadModelError::WrongKind { found, expected } => {
                write!(f, "model kind {found} found where kind {expected} expected")
            }
            ReadModelError::ChecksumMismatch { stored, computed } => write!(
                f,
                "model checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            ReadModelError::Corrupt(e) => write!(f, "corrupt model payload: {e}"),
        }
    }
}

impl std::error::Error for ReadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadModelError::Io(e) => Some(e),
            ReadModelError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadModelError {
    fn from(e: io::Error) -> Self {
        ReadModelError::Io(e)
    }
}

impl From<HdcError> for ReadModelError {
    fn from(e: HdcError) -> Self {
        ReadModelError::Corrupt(e)
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — hand-rolled so
/// the wire format needs no external dependency.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends the CRC32 footer sealing everything currently in `buf`.
pub(crate) fn seal(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

fn unexpected_eof(what: &str) -> ReadModelError {
    ReadModelError::Io(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        what.to_owned(),
    ))
}

/// Reads a whole GHDC stream and validates its envelope: magic, a known
/// version byte, and (version 2) the CRC32 footer, which is stripped.
/// Returns the header + payload bytes ready for parsing.
pub(crate) fn read_envelope<R: Read>(mut reader: R) -> Result<Vec<u8>, ReadModelError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
        return Err(ReadModelError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(unexpected_eof("stream shorter than a model header"));
    }
    match bytes[4] {
        LEGACY_VERSION => Ok(bytes),
        VERSION => {
            if bytes.len() < 12 {
                return Err(unexpected_eof("stream shorter than a sealed header"));
            }
            let body_len = bytes.len() - 4;
            let mut footer = [0u8; 4];
            footer.copy_from_slice(&bytes[body_len..]);
            let stored = u32::from_le_bytes(footer);
            let computed = crc32(&bytes[..body_len]);
            if stored != computed {
                return Err(ReadModelError::ChecksumMismatch { stored, computed });
            }
            bytes.truncate(body_len);
            Ok(bytes)
        }
        v => Err(ReadModelError::UnsupportedVersion(v)),
    }
}

/// Fails when a parser left unconsumed bytes — a v2 stream carries its
/// exact length, so trailing garbage means the header lied.
pub(crate) fn expect_consumed(rest: &[u8]) -> Result<(), ReadModelError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(ReadModelError::Corrupt(HdcError::invalid(
            "stream",
            format!("{} trailing bytes after the payload", rest.len()),
        )))
    }
}

/// Writes a full-precision model. A `&mut` writer works too.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_model<W: Write>(model: &HdcModel, mut writer: W) -> io::Result<()> {
    let mut buf = Vec::new();
    write_header(&mut buf, KIND_FULL, 16, model.dim(), model.n_classes());
    for class in model.iter() {
        for &v in class.values() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    seal(&mut buf);
    writer.write_all(&buf)
}

/// Reads a full-precision model written by [`write_model`].
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure, a malformed stream, or a
/// checksum mismatch.
pub fn read_model<R: Read>(reader: R) -> Result<HdcModel, ReadModelError> {
    let bytes = read_envelope(reader)?;
    let mut slice: &[u8] = &bytes;
    let header = read_header(&mut slice, KIND_FULL)?;
    let mut classes = Vec::with_capacity(header.n_classes);
    let mut buf = [0u8; 4];
    for _ in 0..header.n_classes {
        let mut values = Vec::with_capacity(header.dim);
        for _ in 0..header.dim {
            slice.read_exact(&mut buf)?;
            values.push(i32::from_le_bytes(buf));
        }
        classes.push(IntHv::from_values(values)?);
    }
    expect_consumed(slice)?;
    Ok(HdcModel::from_class_vectors(classes)?)
}

/// Writes a quantized model.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_quantized<W: Write>(model: &QuantizedModel, mut writer: W) -> io::Result<()> {
    let mut buf = Vec::new();
    write_header(
        &mut buf,
        KIND_QUANTIZED,
        model.bit_width(),
        model.dim(),
        model.n_classes(),
    );
    for c in 0..model.n_classes() {
        for &v in model.class(c) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    seal(&mut buf);
    writer.write_all(&buf)
}

/// Reads a quantized model written by [`write_quantized`].
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure, a malformed stream, or a
/// checksum mismatch.
pub fn read_quantized<R: Read>(reader: R) -> Result<QuantizedModel, ReadModelError> {
    let bytes = read_envelope(reader)?;
    let mut slice: &[u8] = &bytes;
    let header = read_header(&mut slice, KIND_QUANTIZED)?;
    let mut classes = Vec::with_capacity(header.n_classes);
    let mut buf = [0u8; 2];
    for _ in 0..header.n_classes {
        let mut values = Vec::with_capacity(header.dim);
        for _ in 0..header.dim {
            slice.read_exact(&mut buf)?;
            values.push(i16::from_le_bytes(buf));
        }
        classes.push(values);
    }
    expect_consumed(slice)?;
    Ok(QuantizedModel::from_parts(
        header.dim,
        header.bit_width,
        classes,
    )?)
}

struct Header {
    bit_width: u8,
    dim: usize,
    n_classes: usize,
}

fn write_header(buf: &mut Vec<u8>, kind: u8, bit_width: u8, dim: usize, n_classes: usize) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&[VERSION, kind, bit_width, 0]);
    buf.extend_from_slice(&(dim as u32).to_le_bytes());
    buf.extend_from_slice(&(n_classes as u32).to_le_bytes());
}

fn read_header<R: Read>(reader: &mut R, expected_kind: u8) -> Result<Header, ReadModelError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ReadModelError::BadMagic);
    }
    let mut meta = [0u8; 4];
    reader.read_exact(&mut meta)?;
    if meta[0] != VERSION && meta[0] != LEGACY_VERSION {
        return Err(ReadModelError::UnsupportedVersion(meta[0]));
    }
    if meta[1] != expected_kind {
        return Err(ReadModelError::WrongKind {
            found: meta[1],
            expected: expected_kind,
        });
    }
    let mut word = [0u8; 4];
    reader.read_exact(&mut word)?;
    let dim = u32::from_le_bytes(word) as usize;
    reader.read_exact(&mut word)?;
    let n_classes = u32::from_le_bytes(word) as usize;
    if dim == 0 || n_classes == 0 {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "header",
            "zero dimension or class count",
        )));
    }
    // Plausibility bounds so a hostile header cannot trigger a huge
    // allocation before the payload read fails.
    if dim > 1 << 24 || n_classes > 1 << 16 {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "header",
            "implausible dimension or class count",
        )));
    }
    Ok(Header {
        bit_width: meta[2],
        dim,
        n_classes,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    fn sample_model() -> HdcModel {
        let encoded: Vec<IntHv> = (0..3u64)
            .map(|s| IntHv::from(BinaryHv::random_seeded(256, s).expect("dim > 0")))
            .collect();
        HdcModel::fit(&encoded, &[0, 1, 2], 3).expect("valid inputs")
    }

    /// The same stream [`write_model`] produced before the CRC footer
    /// existed: a version-1 header followed by the bare payload.
    fn legacy_v1_stream(model: &HdcModel) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&[LEGACY_VERSION, KIND_FULL, 16, 0]);
        buf.extend_from_slice(&(model.dim() as u32).to_le_bytes());
        buf.extend_from_slice(&(model.n_classes() as u32).to_le_bytes());
        for class in model.iter() {
            for &v in class.values() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn full_model_round_trips() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        let restored = read_model(buf.as_slice()).expect("well-formed stream");
        assert_eq!(model, restored);
    }

    #[test]
    fn quantized_model_round_trips() {
        for bw in [1u8, 2, 4, 8, 16] {
            let q = QuantizedModel::from_model(&sample_model(), bw).expect("valid width");
            let mut buf = Vec::new();
            write_quantized(&q, &mut buf).expect("vec write cannot fail");
            let restored = read_quantized(buf.as_slice()).expect("well-formed stream");
            assert_eq!(q, restored, "bw = {bw}");
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn legacy_v1_stream_still_loads() {
        let model = sample_model();
        let restored =
            read_model(legacy_v1_stream(&model).as_slice()).expect("v1 must stay readable");
        assert_eq!(model, restored);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_model(&b"NOPE...."[..]).expect_err("must fail");
        assert!(matches!(err, ReadModelError::BadMagic));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let q = QuantizedModel::from_model(&sample_model(), 4).expect("valid width");
        let mut buf = Vec::new();
        write_quantized(&q, &mut buf).expect("vec write cannot fail");
        let err = read_model(buf.as_slice()).expect_err("kind mismatch");
        assert!(matches!(err, ReadModelError::WrongKind { .. }));
    }

    #[test]
    fn truncated_stream_fails_the_checksum() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf.truncate(buf.len() / 2);
        let err = read_model(buf.as_slice()).expect_err("truncated");
        assert!(matches!(err, ReadModelError::ChecksumMismatch { .. }));
    }

    #[test]
    fn any_single_flipped_byte_is_rejected() {
        let model = sample_model();
        let mut clean = Vec::new();
        write_model(&model, &mut clean).expect("vec write cannot fail");
        for pos in 0..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 0x40;
            let err = read_model(buf.as_slice()).expect_err("flip must be caught");
            match pos {
                0..=3 => assert!(matches!(err, ReadModelError::BadMagic), "pos {pos}"),
                4 => assert!(
                    matches!(err, ReadModelError::UnsupportedVersion(_)),
                    "pos {pos}"
                ),
                _ => assert!(
                    matches!(err, ReadModelError::ChecksumMismatch { .. }),
                    "pos {pos}: {err}"
                ),
            }
        }
    }

    #[test]
    fn version_byte_flipped_to_v1_cannot_smuggle_a_sealed_stream() {
        // A v2 stream whose version byte degrades to 1 must not decode
        // through the legacy path: the CRC footer becomes trailing bytes.
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf[4] = LEGACY_VERSION;
        let err = read_model(buf.as_slice()).expect_err("footer must not be payload");
        assert!(matches!(err, ReadModelError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf[4] = 99; // version byte
        let err = read_model(buf.as_slice()).expect_err("bad version");
        assert!(matches!(err, ReadModelError::UnsupportedVersion(99)));
    }
}
