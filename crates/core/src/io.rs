//! Compact binary serialization of trained models.
//!
//! Edge deployments train offline and ship the model over the
//! accelerator's `config` port (§4.1), so models need a stable,
//! allocation-light wire format. The format is versioned little-endian:
//!
//! ```text
//! magic "GHDC" | u8 version | u8 kind | u8 bit_width | pad
//! u32 dim | u32 n_classes | payload (class elements, LE)
//! u32 crc32 (version 2 only)
//! ```
//!
//! `kind` 0 = full-precision [`HdcModel`] (i32 elements),
//! `kind` 1 = [`QuantizedModel`] (i16 elements),
//! `kind` 2 = packed sign/magnitude bit planes (version 3 only).
//!
//! Version 2 seals the stream with a CRC32 (IEEE) footer over
//! everything before it, so a model damaged in transit or storage fails
//! with [`ReadModelError::ChecksumMismatch`] instead of silently loading
//! flipped class elements. Version 1 streams (no footer) remain readable.
//!
//! Version 3 (current for packed models) is a *mappable* layout: every
//! section sits at a fixed, header-computable offset and every bit plane
//! begins on a 64-byte boundary, so a file mapped straight off disk can
//! be scored zero-copy through
//! [`PackedModelView`](crate::PackedModelView) with no deserialization.
//! See [`PackedLayout`] for the exact section arithmetic. The CRC32
//! footer is retained; v1/v2 streams stay readable through their
//! original entry points.
//!
//! This module is part of the panic-free serving surface: no code path
//! reachable from a public API may `unwrap`/`expect` — every failure
//! surfaces as a typed [`ReadModelError`] (or an `io::Error` on writes).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, Read, Write};

use crate::{HdcError, HdcModel, IntHv, QuantizedModel};

const MAGIC: [u8; 4] = *b"GHDC";
const VERSION: u8 = 2;
const LEGACY_VERSION: u8 = 1;
pub(crate) const PACKED_VERSION: u8 = 3;
const KIND_FULL: u8 = 0;
const KIND_QUANTIZED: u8 = 1;
pub(crate) const KIND_PACKED: u8 = 2;

/// Alignment (bytes) of every v3 section and bit plane. 64 bytes covers
/// a cache line and the widest vector the kernels dispatch (AVX-512).
pub const PACKED_ALIGN: usize = 64;

/// Size of the fixed v3 header (one aligned block).
pub const PACKED_HEADER_LEN: usize = 64;

/// Errors produced while reading a serialized model.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a GHDC model (bad magic).
    BadMagic,
    /// The stream uses an unsupported format version.
    UnsupportedVersion(u8),
    /// The stream encodes a different model kind than requested.
    WrongKind {
        /// Kind byte found in the stream.
        found: u8,
        /// Kind byte the caller expected.
        expected: u8,
    },
    /// The CRC32 footer disagrees with the stream contents: the model
    /// was corrupted (or truncated) after it was written.
    ChecksumMismatch {
        /// CRC32 stored in the stream footer.
        stored: u32,
        /// CRC32 computed over the received bytes.
        computed: u32,
    },
    /// The decoded header or payload is inconsistent.
    Corrupt(HdcError),
    /// A v3 stream's byte length disagrees with the exact length its
    /// header computes — the file was truncated or grew. Checked before
    /// the checksum so a short mapping is reported as what it is.
    Truncated {
        /// Byte length the header-computed layout requires.
        expected: u64,
        /// Byte length actually available.
        actual: u64,
    },
    /// A buffer offered for zero-copy reinterpretation is not aligned
    /// to [`PACKED_ALIGN`]; constructing a view over it would misalign
    /// every plane slice.
    Misaligned {
        /// Required base alignment in bytes.
        required: usize,
        /// `ptr % required` of the offered buffer.
        offset: usize,
    },
    /// A pruned v3 stream's support mask disagrees with its header: the
    /// mask must hold exactly `dim` set bits, all below `parent_dim`.
    /// Checked before any view is constructed over the stream.
    SupportMismatch {
        /// Set-bit count the header's pruned `dim` requires.
        expected: usize,
        /// Set-bit count actually stored in the mask section.
        actual: usize,
    },
}

impl std::fmt::Display for ReadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadModelError::Io(e) => write!(f, "i/o failure: {e}"),
            ReadModelError::BadMagic => write!(f, "not a GHDC model stream"),
            ReadModelError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            ReadModelError::WrongKind { found, expected } => {
                write!(f, "model kind {found} found where kind {expected} expected")
            }
            ReadModelError::ChecksumMismatch { stored, computed } => write!(
                f,
                "model checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            ReadModelError::Corrupt(e) => write!(f, "corrupt model payload: {e}"),
            ReadModelError::Truncated { expected, actual } => write!(
                f,
                "stream length {actual} disagrees with the header-computed {expected} bytes"
            ),
            ReadModelError::Misaligned { required, offset } => write!(
                f,
                "buffer base is {offset} bytes past a {required}-byte boundary"
            ),
            ReadModelError::SupportMismatch { expected, actual } => write!(
                f,
                "support mask carries {actual} set bits where the header requires {expected}"
            ),
        }
    }
}

impl std::error::Error for ReadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadModelError::Io(e) => Some(e),
            ReadModelError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadModelError {
    fn from(e: io::Error) -> Self {
        ReadModelError::Io(e)
    }
}

impl From<HdcError> for ReadModelError {
    fn from(e: HdcError) -> Self {
        ReadModelError::Corrupt(e)
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — hand-rolled so
/// the wire format needs no external dependency. Slicing-by-8: the
/// per-byte bit loop made checksum validation the dominant cost of a
/// cold model load; the const-built tables keep values identical while
/// processing eight input bytes per step.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const T: [[u32; 256]; 8] = build_crc_tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ T[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (crc & 1).wrapping_neg());
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// Appends the CRC32 footer sealing everything currently in `buf`.
pub(crate) fn seal(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

fn unexpected_eof(what: &str) -> ReadModelError {
    ReadModelError::Io(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        what.to_owned(),
    ))
}

/// Reads a whole GHDC stream and validates its envelope: magic, a known
/// version byte, and (version 2) the CRC32 footer, which is stripped.
/// Returns the header + payload bytes ready for parsing.
pub(crate) fn read_envelope<R: Read>(mut reader: R) -> Result<Vec<u8>, ReadModelError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
        return Err(ReadModelError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(unexpected_eof("stream shorter than a model header"));
    }
    match bytes[4] {
        LEGACY_VERSION => Ok(bytes),
        VERSION => {
            if bytes.len() < 12 {
                return Err(unexpected_eof("stream shorter than a sealed header"));
            }
            let body_len = bytes.len() - 4;
            let mut footer = [0u8; 4];
            footer.copy_from_slice(&bytes[body_len..]);
            let stored = u32::from_le_bytes(footer);
            let computed = crc32(&bytes[..body_len]);
            if stored != computed {
                return Err(ReadModelError::ChecksumMismatch { stored, computed });
            }
            bytes.truncate(body_len);
            Ok(bytes)
        }
        v => Err(ReadModelError::UnsupportedVersion(v)),
    }
}

/// Fails when a parser left unconsumed bytes — a v2 stream carries its
/// exact length, so trailing garbage means the header lied.
pub(crate) fn expect_consumed(rest: &[u8]) -> Result<(), ReadModelError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(ReadModelError::Corrupt(HdcError::invalid(
            "stream",
            format!("{} trailing bytes after the payload", rest.len()),
        )))
    }
}

/// Writes a full-precision model. A `&mut` writer works too.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_model<W: Write>(model: &HdcModel, mut writer: W) -> io::Result<()> {
    let mut buf = Vec::new();
    write_header(&mut buf, KIND_FULL, 16, model.dim(), model.n_classes());
    for class in model.iter() {
        for &v in class.values() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    seal(&mut buf);
    writer.write_all(&buf)
}

/// Reads a full-precision model written by [`write_model`].
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure, a malformed stream, or a
/// checksum mismatch.
pub fn read_model<R: Read>(reader: R) -> Result<HdcModel, ReadModelError> {
    let bytes = read_envelope(reader)?;
    let mut slice: &[u8] = &bytes;
    let header = read_header(&mut slice, KIND_FULL)?;
    let mut classes = Vec::with_capacity(header.n_classes);
    let mut buf = [0u8; 4];
    for _ in 0..header.n_classes {
        let mut values = Vec::with_capacity(header.dim);
        for _ in 0..header.dim {
            slice.read_exact(&mut buf)?;
            values.push(i32::from_le_bytes(buf));
        }
        classes.push(IntHv::from_values(values)?);
    }
    expect_consumed(slice)?;
    Ok(HdcModel::from_class_vectors(classes)?)
}

/// Writes a quantized model.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_quantized<W: Write>(model: &QuantizedModel, mut writer: W) -> io::Result<()> {
    let mut buf = Vec::new();
    write_header(
        &mut buf,
        KIND_QUANTIZED,
        model.bit_width(),
        model.dim(),
        model.n_classes(),
    );
    for c in 0..model.n_classes() {
        for &v in model.class(c) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    seal(&mut buf);
    writer.write_all(&buf)
}

/// Reads a quantized model written by [`write_quantized`].
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure, a malformed stream, or a
/// checksum mismatch.
pub fn read_quantized<R: Read>(reader: R) -> Result<QuantizedModel, ReadModelError> {
    let bytes = read_envelope(reader)?;
    let mut slice: &[u8] = &bytes;
    let header = read_header(&mut slice, KIND_QUANTIZED)?;
    let mut classes = Vec::with_capacity(header.n_classes);
    let mut buf = [0u8; 2];
    for _ in 0..header.n_classes {
        let mut values = Vec::with_capacity(header.dim);
        for _ in 0..header.dim {
            slice.read_exact(&mut buf)?;
            values.push(i16::from_le_bytes(buf));
        }
        classes.push(values);
    }
    expect_consumed(slice)?;
    Ok(QuantizedModel::from_parts(
        header.dim,
        header.bit_width,
        classes,
    )?)
}

// ---------------------------------------------------------------------------
// GHDC v3: the mappable packed layout
// ---------------------------------------------------------------------------

const fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

/// The header-computable geometry of a GHDC v3 stream.
///
/// A v3 stream is a [`QuantizedModel`] already decomposed into the
/// sign/magnitude bit planes of [`PackedInts`](crate::PackedInts), laid
/// out so a memory-mapped file can be scored in place:
///
/// ```text
/// offset 0                        64-byte header:
///   [0..4)   magic "GHDC"
///   [4]      version = 3
///   [5]      kind = 2 (packed)
///   [6]      bit_width
///   [7]      0
///   [8..12)  dim        (u32 LE)
///   [12..16) n_classes  (u32 LE)
///   [16..20) n_planes   (u32 LE, uniform across classes)
///   [20..24) parent_dim (u32 LE, 0 = full support)
///   [24..64) reserved, zero
/// norms_offset                    n_classes × f64 LE  (‖C‖, pack() fold)
/// plane_pop_offset                n_classes × n_planes × i64 LE
/// planes_offset                   per class: signs plane, then plane 0
///                                 … plane n_planes−1; every plane is
///                                 ceil(dim/64) u64 LE words padded to a
///                                 64-byte stride
/// support_offset                  pruned streams only: ceil(parent_dim/64)
///                                 u64 LE words padded to a 64-byte stride;
///                                 bit `i` set ⇔ parent dimension `i` is in
///                                 the pruned support (exactly `dim` bits)
/// total_len − 4                   u32 CRC32 over everything before it
/// ```
///
/// A *pruned* stream (`parent_dim > 0`) stores a model whose `dim`
/// class elements live on a subset of a larger `parent_dim`-dimensional
/// space; the trailing support mask names that subset so parent-space
/// queries can be compacted at score time. Full-support streams write
/// `parent_dim = 0` and no mask section, which keeps every pre-pruning
/// v3 image byte-identical.
///
/// Every section offset is a multiple of [`PACKED_ALIGN`], so on a
/// 64-byte-aligned base (an `mmap` is page-aligned) every plane
/// reinterprets as an aligned `&[u64]` with no copy. `n_planes` is the
/// *maximum* plane count over all classes: classes with a smaller
/// magnitude range carry explicit all-zero planes, which contribute
/// exactly zero to the masked-popcount dot product, keeping mapped
/// scores bit-identical to
/// [`PackedQuantizedModel`](crate::PackedQuantizedModel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLayout {
    dim: usize,
    n_classes: usize,
    n_planes: usize,
    bit_width: u8,
    n_words: usize,
    plane_stride: usize,
    norms_offset: usize,
    plane_pop_offset: usize,
    planes_offset: usize,
    /// Byte offset of the support-mask section (end of the planes
    /// region; the mask itself exists only when `parent_dim > 0`).
    support_offset: usize,
    /// Aligned byte length of the support-mask section (0 when
    /// full-support).
    support_len: usize,
    /// Parent-space dimensionality of a pruned stream; 0 = full
    /// support.
    parent_dim: usize,
    total_len: usize,
}

impl PackedLayout {
    /// Computes the layout from model geometry (the writer's side).
    fn from_geometry(
        dim: usize,
        n_classes: usize,
        n_planes: usize,
        bit_width: u8,
        parent_dim: usize,
    ) -> Result<Self, ReadModelError> {
        if dim == 0 || n_classes == 0 {
            return Err(ReadModelError::Corrupt(HdcError::invalid(
                "header",
                "zero dimension or class count",
            )));
        }
        if dim > 1 << 24 || n_classes > 1 << 16 {
            return Err(ReadModelError::Corrupt(HdcError::invalid(
                "header",
                "implausible dimension or class count",
            )));
        }
        if bit_width == 0 || bit_width > 16 || n_planes > usize::from(bit_width) {
            return Err(ReadModelError::Corrupt(HdcError::invalid(
                "header",
                "plane count inconsistent with bit width",
            )));
        }
        if parent_dim != 0 && (parent_dim < dim || parent_dim > 1 << 24) {
            return Err(ReadModelError::Corrupt(HdcError::invalid(
                "header",
                "parent dimension inconsistent with the pruned dimension",
            )));
        }
        let n_words = dim.div_ceil(64);
        let plane_stride = align_up(n_words * 8, PACKED_ALIGN);
        let norms_offset = PACKED_HEADER_LEN;
        let plane_pop_offset = norms_offset + align_up(n_classes * 8, PACKED_ALIGN);
        let planes_offset = plane_pop_offset + align_up(n_classes * n_planes * 8, PACKED_ALIGN);
        // Bounded by the plausibility checks above: ≤ 2^16 classes of
        // ≤ 17 planes of ≤ 2^18-word strides stays far below usize::MAX.
        let support_offset = planes_offset + n_classes * (1 + n_planes) * plane_stride;
        let support_len = if parent_dim == 0 {
            0
        } else {
            align_up(parent_dim.div_ceil(64) * 8, PACKED_ALIGN)
        };
        let total_len = support_offset + support_len + 4;
        Ok(PackedLayout {
            dim,
            n_classes,
            n_planes,
            bit_width,
            n_words,
            plane_stride,
            norms_offset,
            plane_pop_offset,
            planes_offset,
            support_offset,
            support_len,
            parent_dim,
            total_len,
        })
    }

    /// Parses and validates a v3 header against the buffer's length.
    /// Structural only — [`PackedLayout::validate`] adds the checksum.
    ///
    /// # Errors
    ///
    /// Returns the usual envelope errors plus
    /// [`ReadModelError::Truncated`] when the byte length disagrees with
    /// the header arithmetic.
    pub fn parse(bytes: &[u8]) -> Result<Self, ReadModelError> {
        if bytes.len() < 8 {
            if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
                return Err(ReadModelError::BadMagic);
            }
            return Err(unexpected_eof("stream shorter than a model header"));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(ReadModelError::BadMagic);
        }
        if bytes[4] != PACKED_VERSION {
            return Err(ReadModelError::UnsupportedVersion(bytes[4]));
        }
        if bytes[5] != KIND_PACKED {
            return Err(ReadModelError::WrongKind {
                found: bytes[5],
                expected: KIND_PACKED,
            });
        }
        if bytes.len() < PACKED_HEADER_LEN {
            return Err(ReadModelError::Truncated {
                expected: PACKED_HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let dim = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let n_classes = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let n_planes = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]) as usize;
        let parent_dim = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]) as usize;
        let layout = Self::from_geometry(dim, n_classes, n_planes, bytes[6], parent_dim)?;
        if bytes.len() != layout.total_len {
            return Err(ReadModelError::Truncated {
                expected: layout.total_len as u64,
                actual: bytes.len() as u64,
            });
        }
        Ok(layout)
    }

    /// Parses the header *and* verifies the CRC32 footer — the full
    /// integrity gate a file must pass before a view may be built over
    /// it or a tenant may serve from it.
    ///
    /// # Errors
    ///
    /// Everything [`PackedLayout::parse`] returns, plus
    /// [`ReadModelError::ChecksumMismatch`].
    pub fn validate(bytes: &[u8]) -> Result<Self, ReadModelError> {
        let layout = Self::parse(bytes)?;
        let body = layout.total_len - 4;
        let mut footer = [0u8; 4];
        footer.copy_from_slice(&bytes[body..]);
        let stored = u32::from_le_bytes(footer);
        let computed = crc32(&bytes[..body]);
        if stored != computed {
            return Err(ReadModelError::ChecksumMismatch { stored, computed });
        }
        layout.check_support(bytes)?;
        Ok(layout)
    }

    /// Verifies a pruned stream's support mask against its header: the
    /// mask must carry exactly `dim` set bits, none at or beyond
    /// `parent_dim`, and the alignment padding after the mask words must
    /// be zero. A no-op for full-support streams. Runs inside
    /// [`PackedLayout::validate`] and again when a view is constructed
    /// over pre-validated bytes, so no scoring path ever sees a mask
    /// whose population disagrees with the stored model.
    ///
    /// # Errors
    ///
    /// Returns [`ReadModelError::SupportMismatch`] on a population-count
    /// disagreement and [`ReadModelError::Corrupt`] for set padding bits.
    pub(crate) fn check_support(&self, bytes: &[u8]) -> Result<(), ReadModelError> {
        if self.parent_dim == 0 {
            return Ok(());
        }
        let words = self.parent_dim.div_ceil(64);
        let mut pop = 0usize;
        for w in 0..words {
            let word = u64::from_le_bytes(read_8(bytes, self.support_offset + w * 8));
            pop += word.count_ones() as usize;
        }
        // Bits past `parent_dim` in the last mask word, and every byte of
        // the alignment padding, must be zero: they are outside the
        // parent space and would corrupt query compaction.
        let rem = self.parent_dim % 64;
        if rem != 0 {
            let last = u64::from_le_bytes(read_8(bytes, self.support_offset + (words - 1) * 8));
            if last >> rem != 0 {
                return Err(ReadModelError::Corrupt(HdcError::invalid(
                    "support",
                    "support mask sets bits beyond the parent dimensionality",
                )));
            }
        }
        let pad = &bytes[self.support_offset + words * 8..self.support_offset + self.support_len];
        if pad.iter().any(|&b| b != 0) {
            return Err(ReadModelError::Corrupt(HdcError::invalid(
                "support",
                "support mask padding must be zero",
            )));
        }
        if pop != self.dim {
            return Err(ReadModelError::SupportMismatch {
                expected: self.dim,
                actual: pop,
            });
        }
        Ok(())
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Magnitude bit planes per class (uniform; 0 for an all-zero
    /// model).
    pub fn n_planes(&self) -> usize {
        self.n_planes
    }

    /// Effective bit-width of the source model.
    pub fn bit_width(&self) -> u8 {
        self.bit_width
    }

    /// `u64` words per plane (`ceil(dim / 64)`).
    pub fn n_words(&self) -> usize {
        self.n_words
    }

    /// Bytes between consecutive planes (`n_words × 8` rounded up to
    /// [`PACKED_ALIGN`]).
    pub fn plane_stride(&self) -> usize {
        self.plane_stride
    }

    /// Byte offset of the norms section.
    pub fn norms_offset(&self) -> usize {
        self.norms_offset
    }

    /// Byte offset of the plane-popcount section.
    pub fn plane_pop_offset(&self) -> usize {
        self.plane_pop_offset
    }

    /// Byte offset of the first class's signs plane.
    pub fn planes_offset(&self) -> usize {
        self.planes_offset
    }

    /// Byte offset of class `c`'s signs plane.
    pub fn class_offset(&self, c: usize) -> usize {
        self.planes_offset + c * (1 + self.n_planes) * self.plane_stride
    }

    /// Byte offset of the support-mask section (meaningful only when
    /// [`PackedLayout::is_pruned`]; otherwise the end of the planes
    /// region).
    pub fn support_offset(&self) -> usize {
        self.support_offset
    }

    /// Whether the stream stores a pruned model with a support mask.
    pub fn is_pruned(&self) -> bool {
        self.parent_dim != 0
    }

    /// Parent-space dimensionality of a pruned stream (`dim` for a
    /// full-support stream). This is the dimensionality queries arrive
    /// at — the dimension the registry and the serving encoders agree
    /// on.
    pub fn parent_dim(&self) -> usize {
        if self.parent_dim == 0 {
            self.dim
        } else {
            self.parent_dim
        }
    }

    /// `u64` words in the support mask (`ceil(parent_dim / 64)`; 0 for a
    /// full-support stream, which stores no mask).
    pub fn support_words(&self) -> usize {
        if self.parent_dim == 0 {
            0
        } else {
            self.parent_dim.div_ceil(64)
        }
    }

    /// Copies the support-mask words out of a pruned stream (`None` for
    /// a full-support stream).
    pub fn support_mask(&self, bytes: &[u8]) -> Option<Vec<u64>> {
        if self.parent_dim == 0 {
            return None;
        }
        Some(
            (0..self.support_words())
                .map(|w| u64::from_le_bytes(read_8(bytes, self.support_offset + w * 8)))
                .collect(),
        )
    }

    /// Exact stream length in bytes, CRC footer included.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// ‖C‖ of class `c`, read straight out of the stream bytes.
    pub(crate) fn norm(&self, bytes: &[u8], c: usize) -> f64 {
        let off = self.norms_offset + c * 8;
        f64::from_le_bytes(read_8(bytes, off))
    }

    /// Hoisted popcount of class `c`'s magnitude plane `k`.
    pub(crate) fn plane_pop(&self, bytes: &[u8], c: usize, k: usize) -> i64 {
        let off = self.plane_pop_offset + (c * self.n_planes + k) * 8;
        i64::from_le_bytes(read_8(bytes, off))
    }
}

fn read_8(bytes: &[u8], off: usize) -> [u8; 8] {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[off..off + 8]);
    word
}

/// Serializes a quantized model as a GHDC v3 packed stream — the
/// sign/magnitude bit-plane decomposition of
/// [`QuantizedModel::pack`](crate::QuantizedModel::pack) at rest, ready
/// for zero-copy mapped scoring.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_packed<W: Write>(model: &QuantizedModel, mut writer: W) -> io::Result<()> {
    let buf = packed_bytes(model).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    writer.write_all(&buf)
}

/// Serializes a pruned quantized model as a GHDC v3 packed stream with a
/// trailing support mask: `model` holds the compacted (support-sized)
/// class elements, `parent_dim` the original dimensionality, and
/// `support` the parent-space membership mask (`ceil(parent_dim/64)`
/// little-endian words with exactly `model.dim()` set bits).
///
/// # Errors
///
/// Returns an `InvalidInput` error when the mask disagrees with the
/// model geometry, plus any underlying I/O error.
pub fn write_packed_pruned<W: Write>(
    model: &QuantizedModel,
    parent_dim: usize,
    support: &[u64],
    mut writer: W,
) -> io::Result<()> {
    let buf = packed_bytes_pruned(model, parent_dim, support)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    writer.write_all(&buf)
}

/// Builds the complete v3 byte image of `model`.
pub(crate) fn packed_bytes(model: &QuantizedModel) -> Result<Vec<u8>, ReadModelError> {
    packed_bytes_pruned(model, 0, &[])
}

/// Builds the complete v3 byte image of a pruned `model`
/// (`parent_dim == 0` writes the full-support layout, byte-identical to
/// [`packed_bytes`]).
pub(crate) fn packed_bytes_pruned(
    model: &QuantizedModel,
    parent_dim: usize,
    support: &[u64],
) -> Result<Vec<u8>, ReadModelError> {
    let dim = model.dim();
    let n_classes = model.n_classes();
    let max_mag: u16 = (0..n_classes)
        .flat_map(|c| model.class(c).iter())
        .map(|&v| v.unsigned_abs())
        .max()
        .unwrap_or(0);
    let n_planes = (16 - max_mag.leading_zeros()) as usize;
    let layout =
        PackedLayout::from_geometry(dim, n_classes, n_planes, model.bit_width(), parent_dim)?;
    if parent_dim == 0 && !support.is_empty() {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "support",
            "full-support streams must not carry a mask",
        )));
    }
    if parent_dim != 0 && support.len() != layout.support_words() {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "support",
            "support mask word count disagrees with the parent dimension",
        )));
    }

    let mut buf = vec![0u8; layout.total_len];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4] = PACKED_VERSION;
    buf[5] = KIND_PACKED;
    buf[6] = model.bit_width();
    buf[8..12].copy_from_slice(&(dim as u32).to_le_bytes());
    buf[12..16].copy_from_slice(&(n_classes as u32).to_le_bytes());
    buf[16..20].copy_from_slice(&(n_planes as u32).to_le_bytes());
    buf[20..24].copy_from_slice(&(parent_dim as u32).to_le_bytes());
    for (w, &word) in support.iter().enumerate() {
        let off = layout.support_offset + w * 8;
        buf[off..off + 8].copy_from_slice(&word.to_le_bytes());
    }

    for c in 0..n_classes {
        let values = model.class(c);
        // Same left-to-right fold as `QuantizedModel::pack`, so mapped
        // scores divide by bit-identical norms.
        let norm = values
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        let norm_off = layout.norms_offset + c * 8;
        buf[norm_off..norm_off + 8].copy_from_slice(&norm.to_le_bytes());

        let class_off = layout.class_offset(c);
        for (i, &v) in values.iter().enumerate() {
            let (byte, bit) = (i / 8, 1u8 << (i % 8));
            if v < 0 {
                buf[class_off + byte] |= bit;
            }
            let mag = v.unsigned_abs();
            for k in 0..n_planes {
                if (mag >> k) & 1 == 1 {
                    buf[class_off + (1 + k) * layout.plane_stride + byte] |= bit;
                }
            }
        }
        for k in 0..n_planes {
            let plane_off = class_off + (1 + k) * layout.plane_stride;
            let pop: i64 = buf[plane_off..plane_off + layout.n_words * 8]
                .iter()
                .map(|b| i64::from(b.count_ones()))
                .sum();
            let pop_off = layout.plane_pop_offset + (c * n_planes + k) * 8;
            buf[pop_off..pop_off + 8].copy_from_slice(&pop.to_le_bytes());
        }
    }

    // Never seal an image whose mask disagrees with its geometry: the
    // same gate every reader applies, applied at write time.
    layout.check_support(&buf)?;
    let body = layout.total_len - 4;
    let crc = crc32(&buf[..body]);
    buf[body..].copy_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

/// Reads a v3 packed stream back into a heap [`QuantizedModel`] — the
/// scalar-side inverse of [`write_packed`], and the deserialization
/// oracle the conformance registry stage replays mapped scores against.
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure, a malformed stream, a
/// length/alignment lie, or a checksum mismatch.
pub fn read_packed<R: Read>(mut reader: R) -> Result<QuantizedModel, ReadModelError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let layout = PackedLayout::validate(&bytes)?;
    let mut classes = Vec::with_capacity(layout.n_classes);
    for c in 0..layout.n_classes {
        let class_off = layout.class_offset(c);
        let mut values = Vec::with_capacity(layout.dim);
        for i in 0..layout.dim {
            let (byte, bit) = (i / 8, i % 8);
            let mut mag: i32 = 0;
            for k in 0..layout.n_planes {
                let plane_off = class_off + (1 + k) * layout.plane_stride;
                mag |= i32::from((bytes[plane_off + byte] >> bit) & 1) << k;
            }
            let negative = (bytes[class_off + byte] >> bit) & 1 == 1;
            let v = if negative { -mag } else { mag };
            let clamped = i16::try_from(v).map_err(|_| {
                ReadModelError::Corrupt(HdcError::invalid(
                    "payload",
                    "plane magnitude exceeds the i16 element range",
                ))
            })?;
            values.push(clamped);
        }
        classes.push(values);
    }
    Ok(QuantizedModel::from_parts(
        layout.dim,
        layout.bit_width,
        classes,
    )?)
}

struct Header {
    bit_width: u8,
    dim: usize,
    n_classes: usize,
}

fn write_header(buf: &mut Vec<u8>, kind: u8, bit_width: u8, dim: usize, n_classes: usize) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&[VERSION, kind, bit_width, 0]);
    buf.extend_from_slice(&(dim as u32).to_le_bytes());
    buf.extend_from_slice(&(n_classes as u32).to_le_bytes());
}

fn read_header<R: Read>(reader: &mut R, expected_kind: u8) -> Result<Header, ReadModelError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ReadModelError::BadMagic);
    }
    let mut meta = [0u8; 4];
    reader.read_exact(&mut meta)?;
    if meta[0] != VERSION && meta[0] != LEGACY_VERSION {
        return Err(ReadModelError::UnsupportedVersion(meta[0]));
    }
    if meta[1] != expected_kind {
        return Err(ReadModelError::WrongKind {
            found: meta[1],
            expected: expected_kind,
        });
    }
    let mut word = [0u8; 4];
    reader.read_exact(&mut word)?;
    let dim = u32::from_le_bytes(word) as usize;
    reader.read_exact(&mut word)?;
    let n_classes = u32::from_le_bytes(word) as usize;
    if dim == 0 || n_classes == 0 {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "header",
            "zero dimension or class count",
        )));
    }
    // Plausibility bounds so a hostile header cannot trigger a huge
    // allocation before the payload read fails.
    if dim > 1 << 24 || n_classes > 1 << 16 {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "header",
            "implausible dimension or class count",
        )));
    }
    Ok(Header {
        bit_width: meta[2],
        dim,
        n_classes,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    fn sample_model() -> HdcModel {
        let encoded: Vec<IntHv> = (0..3u64)
            .map(|s| IntHv::from(BinaryHv::random_seeded(256, s).expect("dim > 0")))
            .collect();
        HdcModel::fit(&encoded, &[0, 1, 2], 3).expect("valid inputs")
    }

    /// The same stream [`write_model`] produced before the CRC footer
    /// existed: a version-1 header followed by the bare payload.
    fn legacy_v1_stream(model: &HdcModel) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&[LEGACY_VERSION, KIND_FULL, 16, 0]);
        buf.extend_from_slice(&(model.dim() as u32).to_le_bytes());
        buf.extend_from_slice(&(model.n_classes() as u32).to_le_bytes());
        for class in model.iter() {
            for &v in class.values() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn full_model_round_trips() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        let restored = read_model(buf.as_slice()).expect("well-formed stream");
        assert_eq!(model, restored);
    }

    #[test]
    fn quantized_model_round_trips() {
        for bw in [1u8, 2, 4, 8, 16] {
            let q = QuantizedModel::from_model(&sample_model(), bw).expect("valid width");
            let mut buf = Vec::new();
            write_quantized(&q, &mut buf).expect("vec write cannot fail");
            let restored = read_quantized(buf.as_slice()).expect("well-formed stream");
            assert_eq!(q, restored, "bw = {bw}");
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn legacy_v1_stream_still_loads() {
        let model = sample_model();
        let restored =
            read_model(legacy_v1_stream(&model).as_slice()).expect("v1 must stay readable");
        assert_eq!(model, restored);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_model(&b"NOPE...."[..]).expect_err("must fail");
        assert!(matches!(err, ReadModelError::BadMagic));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let q = QuantizedModel::from_model(&sample_model(), 4).expect("valid width");
        let mut buf = Vec::new();
        write_quantized(&q, &mut buf).expect("vec write cannot fail");
        let err = read_model(buf.as_slice()).expect_err("kind mismatch");
        assert!(matches!(err, ReadModelError::WrongKind { .. }));
    }

    #[test]
    fn truncated_stream_fails_the_checksum() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf.truncate(buf.len() / 2);
        let err = read_model(buf.as_slice()).expect_err("truncated");
        assert!(matches!(err, ReadModelError::ChecksumMismatch { .. }));
    }

    #[test]
    fn any_single_flipped_byte_is_rejected() {
        let model = sample_model();
        let mut clean = Vec::new();
        write_model(&model, &mut clean).expect("vec write cannot fail");
        for pos in 0..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 0x40;
            let err = read_model(buf.as_slice()).expect_err("flip must be caught");
            match pos {
                0..=3 => assert!(matches!(err, ReadModelError::BadMagic), "pos {pos}"),
                4 => assert!(
                    matches!(err, ReadModelError::UnsupportedVersion(_)),
                    "pos {pos}"
                ),
                _ => assert!(
                    matches!(err, ReadModelError::ChecksumMismatch { .. }),
                    "pos {pos}: {err}"
                ),
            }
        }
    }

    #[test]
    fn version_byte_flipped_to_v1_cannot_smuggle_a_sealed_stream() {
        // A v2 stream whose version byte degrades to 1 must not decode
        // through the legacy path: the CRC footer becomes trailing bytes.
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf[4] = LEGACY_VERSION;
        let err = read_model(buf.as_slice()).expect_err("footer must not be payload");
        assert!(matches!(err, ReadModelError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf[4] = 99; // version byte
        let err = read_model(buf.as_slice()).expect_err("bad version");
        assert!(matches!(err, ReadModelError::UnsupportedVersion(99)));
    }

    fn packed_stream(bw: u8) -> (QuantizedModel, Vec<u8>) {
        let q = QuantizedModel::from_model(&sample_model(), bw).expect("valid width");
        let mut buf = Vec::new();
        write_packed(&q, &mut buf).expect("vec write cannot fail");
        (q, buf)
    }

    #[test]
    fn packed_v3_round_trips_every_bit_width() {
        for bw in [1u8, 2, 4, 8, 16] {
            let (q, buf) = packed_stream(bw);
            let restored = read_packed(buf.as_slice()).expect("well-formed stream");
            assert_eq!(q, restored, "bw = {bw}");
        }
    }

    #[test]
    fn packed_v3_sections_are_64_byte_aligned() {
        let (_, buf) = packed_stream(8);
        let layout = PackedLayout::validate(&buf).expect("sealed stream");
        assert_eq!(layout.norms_offset() % PACKED_ALIGN, 0);
        assert_eq!(layout.plane_pop_offset() % PACKED_ALIGN, 0);
        assert_eq!(layout.planes_offset() % PACKED_ALIGN, 0);
        assert_eq!(layout.plane_stride() % PACKED_ALIGN, 0);
        for c in 0..layout.n_classes() {
            assert_eq!(layout.class_offset(c) % PACKED_ALIGN, 0, "class {c}");
        }
        assert_eq!(layout.total_len(), buf.len());
    }

    #[test]
    fn packed_v3_length_mismatch_is_a_typed_truncation() {
        let (_, buf) = packed_stream(4);
        // One byte short: header-computed length disagrees.
        let err = PackedLayout::parse(&buf[..buf.len() - 1]).expect_err("short stream");
        assert!(matches!(err, ReadModelError::Truncated { .. }), "{err}");
        // One byte long is just as wrong — a mapped file must be exact.
        let mut long = buf.clone();
        long.push(0);
        let err = PackedLayout::parse(&long).expect_err("oversized stream");
        assert!(matches!(err, ReadModelError::Truncated { .. }), "{err}");
    }

    #[test]
    fn packed_v3_any_single_flipped_byte_is_rejected() {
        let (_, buf) = packed_stream(2);
        // Exhaustive over the stream: every byte is covered by either a
        // header check or the CRC footer.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                PackedLayout::validate(&bad).is_err(),
                "flipped byte {i} must not validate"
            );
        }
    }

    #[test]
    fn packed_v3_header_is_pinned() {
        let (q, buf) = packed_stream(8);
        assert_eq!(&buf[..4], &MAGIC);
        assert_eq!(buf[4], PACKED_VERSION);
        assert_eq!(buf[5], KIND_PACKED);
        assert_eq!(buf[6], q.bit_width());
        assert_eq!(&buf[8..12], &(q.dim() as u32).to_le_bytes());
        assert_eq!(&buf[12..16], &(q.n_classes() as u32).to_le_bytes());
        assert!(buf[20..64].iter().all(|&b| b == 0), "reserved must be zero");
    }

    /// A deterministic pruned stream: a 200-dim parent space keeping
    /// every third dimension (67 kept — deliberately not a multiple of
    /// 64 so the mask has a partial last word).
    fn pruned_stream(bw: u8) -> (QuantizedModel, usize, Vec<u64>, Vec<u8>) {
        let parent_dim = 200usize;
        let keep: Vec<usize> = (0..parent_dim).filter(|i| i % 3 == 0).collect();
        let dim = keep.len();
        let q_max = if bw == 1 { 1 } else { (1i32 << (bw - 1)) - 1 };
        let classes: Vec<Vec<i16>> = (0..3i32)
            .map(|c| {
                (0..dim as i32)
                    .map(|i| {
                        let v = ((i * 7 + c * 5) % (2 * q_max + 1)) - q_max;
                        if bw == 1 {
                            if v < 0 {
                                -1
                            } else {
                                1
                            }
                        } else {
                            v as i16
                        }
                    })
                    .collect()
            })
            .collect();
        let q = QuantizedModel::from_parts(dim, bw, classes).expect("values fit bw");
        let mut mask = vec![0u64; parent_dim.div_ceil(64)];
        for &i in &keep {
            mask[i / 64] |= 1 << (i % 64);
        }
        let mut buf = Vec::new();
        write_packed_pruned(&q, parent_dim, &mask, &mut buf).expect("vec write cannot fail");
        (q, parent_dim, mask, buf)
    }

    /// Recomputes the CRC footer after deliberate in-place edits, so the
    /// tests below exercise the *semantic* support checks rather than
    /// the checksum.
    fn reseal(buf: &mut [u8]) {
        let body = buf.len() - 4;
        let crc = crc32(&buf[..body]);
        buf[body..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn pruned_v3_round_trips_every_bit_width() {
        for bw in [1u8, 2, 4, 8, 16] {
            let (q, parent_dim, mask, buf) = pruned_stream(bw);
            let layout = PackedLayout::validate(&buf).expect("sealed pruned stream");
            assert!(layout.is_pruned());
            assert_eq!(layout.dim(), q.dim(), "bw = {bw}");
            assert_eq!(layout.parent_dim(), parent_dim);
            assert_eq!(layout.support_mask(&buf).as_deref(), Some(&mask[..]));
            let restored = read_packed(buf.as_slice()).expect("well-formed stream");
            assert_eq!(q, restored, "bw = {bw}");
        }
    }

    #[test]
    fn pruned_v3_sections_are_64_byte_aligned() {
        let (_, _, _, buf) = pruned_stream(4);
        let layout = PackedLayout::validate(&buf).expect("sealed stream");
        assert_eq!(layout.support_offset() % PACKED_ALIGN, 0);
        assert_eq!(layout.total_len(), buf.len());
        assert!(layout.support_offset() > layout.class_offset(layout.n_classes() - 1));
    }

    #[test]
    fn full_support_streams_carry_no_mask_and_stay_byte_identical() {
        let (q, buf) = packed_stream(8);
        let layout = PackedLayout::validate(&buf).expect("sealed stream");
        assert!(!layout.is_pruned());
        assert_eq!(layout.parent_dim(), q.dim());
        assert_eq!(layout.support_words(), 0);
        assert!(layout.support_mask(&buf).is_none());
        let via_pruned = packed_bytes_pruned(&q, 0, &[]).expect("full support");
        assert_eq!(
            via_pruned, buf,
            "full-support writer must be byte-identical"
        );
    }

    #[test]
    fn pruned_v3_writer_rejects_inconsistent_masks() {
        let (q, parent_dim, mask, _) = pruned_stream(4);
        // One support bit short of the model's dimension.
        let mut short = mask.clone();
        short[0] &= !1u64;
        let mut out = Vec::new();
        assert!(write_packed_pruned(&q, parent_dim, &short, &mut out).is_err());
        // Wrong word count for the parent space.
        let mut out = Vec::new();
        assert!(write_packed_pruned(&q, parent_dim, &mask[..1], &mut out).is_err());
        // Parent smaller than the pruned dimension.
        let mut out = Vec::new();
        assert!(write_packed_pruned(&q, q.dim() - 1, &[u64::MAX], &mut out).is_err());
        // Full-support images must not smuggle a mask.
        let mut out = Vec::new();
        assert!(write_packed_pruned(&q, 0, &mask, &mut out).is_err());
    }

    #[test]
    fn pruned_v3_population_mismatch_is_typed() {
        // Clear one support bit and reseal: the CRC passes, so only the
        // semantic population check can refuse the stream — before any
        // view is constructed over it.
        let (_, _, _, mut buf) = pruned_stream(2);
        let layout = PackedLayout::parse(&buf).expect("structural parse");
        buf[layout.support_offset()] &= !1u8;
        reseal(&mut buf);
        match PackedLayout::validate(&buf) {
            Err(ReadModelError::SupportMismatch { expected, actual }) => {
                assert_eq!(expected, layout.dim());
                assert_eq!(actual, layout.dim() - 1);
            }
            other => panic!("expected SupportMismatch, got {other:?}"),
        }
    }

    #[test]
    fn pruned_v3_mask_bits_beyond_parent_are_rejected() {
        let (_, parent_dim, _, mut buf) = pruned_stream(2);
        let layout = PackedLayout::parse(&buf).expect("structural parse");
        // Set a bit at parent_dim (position 200 = word 3, bit 8) and
        // clear an in-range bit so the population still matches.
        let word_off = layout.support_offset() + (parent_dim / 64) * 8;
        buf[word_off + (parent_dim % 64) / 8] |= 1 << (parent_dim % 8);
        buf[layout.support_offset()] &= !1u8;
        reseal(&mut buf);
        assert!(matches!(
            PackedLayout::validate(&buf),
            Err(ReadModelError::Corrupt(_))
        ));
    }

    #[test]
    fn pruned_v3_parent_smaller_than_dim_is_rejected() {
        let (_, _, _, mut buf) = pruned_stream(2);
        // Rewrite parent_dim to 1 (< dim): structurally impossible.
        buf[20..24].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            PackedLayout::parse(&buf),
            Err(ReadModelError::Corrupt(_))
        ));
    }

    #[test]
    fn pruned_v3_truncation_is_typed() {
        let (_, _, _, buf) = pruned_stream(2);
        let err = PackedLayout::parse(&buf[..buf.len() - 1]).expect_err("short stream");
        assert!(matches!(err, ReadModelError::Truncated { .. }), "{err}");
        // Cutting the whole mask section leaves a stream whose length
        // matches *no* header arithmetic: still a typed truncation.
        let layout = PackedLayout::parse(&buf).expect("structural parse");
        let err =
            PackedLayout::parse(&buf[..layout.support_offset()]).expect_err("maskless stream");
        assert!(matches!(err, ReadModelError::Truncated { .. }), "{err}");
    }

    #[test]
    fn pruned_v3_any_single_flipped_byte_is_rejected() {
        let (_, _, _, buf) = pruned_stream(2);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                PackedLayout::validate(&bad).is_err(),
                "flipped byte {i} must not validate"
            );
        }
    }
}
