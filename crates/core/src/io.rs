//! Compact binary serialization of trained models.
//!
//! Edge deployments train offline and ship the model over the
//! accelerator's `config` port (§4.1), so models need a stable,
//! allocation-light wire format. The format is versioned little-endian:
//!
//! ```text
//! magic "GHDC" | u8 version | u8 kind | u8 bit_width | pad
//! u32 dim | u32 n_classes | payload (class elements, LE)
//! ```
//!
//! `kind` 0 = full-precision [`HdcModel`] (i32 elements),
//! `kind` 1 = [`QuantizedModel`] (i16 elements).

use std::io::{self, Read, Write};

use crate::{HdcError, HdcModel, IntHv, QuantizedModel};

const MAGIC: [u8; 4] = *b"GHDC";
const VERSION: u8 = 1;
const KIND_FULL: u8 = 0;
const KIND_QUANTIZED: u8 = 1;

/// Errors produced while reading a serialized model.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a GHDC model (bad magic).
    BadMagic,
    /// The stream uses an unsupported format version.
    UnsupportedVersion(u8),
    /// The stream encodes a different model kind than requested.
    WrongKind {
        /// Kind byte found in the stream.
        found: u8,
        /// Kind byte the caller expected.
        expected: u8,
    },
    /// The decoded header or payload is inconsistent.
    Corrupt(HdcError),
}

impl std::fmt::Display for ReadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadModelError::Io(e) => write!(f, "i/o failure: {e}"),
            ReadModelError::BadMagic => write!(f, "not a GHDC model stream"),
            ReadModelError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            ReadModelError::WrongKind { found, expected } => {
                write!(f, "model kind {found} found where kind {expected} expected")
            }
            ReadModelError::Corrupt(e) => write!(f, "corrupt model payload: {e}"),
        }
    }
}

impl std::error::Error for ReadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadModelError::Io(e) => Some(e),
            ReadModelError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadModelError {
    fn from(e: io::Error) -> Self {
        ReadModelError::Io(e)
    }
}

impl From<HdcError> for ReadModelError {
    fn from(e: HdcError) -> Self {
        ReadModelError::Corrupt(e)
    }
}

/// Writes a full-precision model. A `&mut` writer works too.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_model<W: Write>(model: &HdcModel, mut writer: W) -> io::Result<()> {
    write_header(&mut writer, KIND_FULL, 16, model.dim(), model.n_classes())?;
    for class in model.iter() {
        for &v in class.values() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a full-precision model written by [`write_model`].
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure or a malformed stream.
pub fn read_model<R: Read>(mut reader: R) -> Result<HdcModel, ReadModelError> {
    let header = read_header(&mut reader, KIND_FULL)?;
    let mut classes = Vec::with_capacity(header.n_classes);
    let mut buf = [0u8; 4];
    for _ in 0..header.n_classes {
        let mut values = Vec::with_capacity(header.dim);
        for _ in 0..header.dim {
            reader.read_exact(&mut buf)?;
            values.push(i32::from_le_bytes(buf));
        }
        classes.push(IntHv::from_values(values)?);
    }
    Ok(HdcModel::from_class_vectors(classes)?)
}

/// Writes a quantized model.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_quantized<W: Write>(model: &QuantizedModel, mut writer: W) -> io::Result<()> {
    write_header(
        &mut writer,
        KIND_QUANTIZED,
        model.bit_width(),
        model.dim(),
        model.n_classes(),
    )?;
    for c in 0..model.n_classes() {
        for &v in model.class(c) {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a quantized model written by [`write_quantized`].
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure or a malformed stream.
pub fn read_quantized<R: Read>(mut reader: R) -> Result<QuantizedModel, ReadModelError> {
    let header = read_header(&mut reader, KIND_QUANTIZED)?;
    let mut classes = Vec::with_capacity(header.n_classes);
    let mut buf = [0u8; 2];
    for _ in 0..header.n_classes {
        let mut values = Vec::with_capacity(header.dim);
        for _ in 0..header.dim {
            reader.read_exact(&mut buf)?;
            values.push(i16::from_le_bytes(buf));
        }
        classes.push(values);
    }
    Ok(QuantizedModel::from_parts(
        header.dim,
        header.bit_width,
        classes,
    )?)
}

struct Header {
    bit_width: u8,
    dim: usize,
    n_classes: usize,
}

fn write_header<W: Write>(
    writer: &mut W,
    kind: u8,
    bit_width: u8,
    dim: usize,
    n_classes: usize,
) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&[VERSION, kind, bit_width, 0])?;
    writer.write_all(&(dim as u32).to_le_bytes())?;
    writer.write_all(&(n_classes as u32).to_le_bytes())?;
    Ok(())
}

fn read_header<R: Read>(reader: &mut R, expected_kind: u8) -> Result<Header, ReadModelError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ReadModelError::BadMagic);
    }
    let mut meta = [0u8; 4];
    reader.read_exact(&mut meta)?;
    if meta[0] != VERSION {
        return Err(ReadModelError::UnsupportedVersion(meta[0]));
    }
    if meta[1] != expected_kind {
        return Err(ReadModelError::WrongKind {
            found: meta[1],
            expected: expected_kind,
        });
    }
    let mut word = [0u8; 4];
    reader.read_exact(&mut word)?;
    let dim = u32::from_le_bytes(word) as usize;
    reader.read_exact(&mut word)?;
    let n_classes = u32::from_le_bytes(word) as usize;
    if dim == 0 || n_classes == 0 {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "header",
            "zero dimension or class count",
        )));
    }
    // Plausibility bounds so a hostile header cannot trigger a huge
    // allocation before the payload read fails.
    if dim > 1 << 24 || n_classes > 1 << 16 {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "header",
            "implausible dimension or class count",
        )));
    }
    Ok(Header {
        bit_width: meta[2],
        dim,
        n_classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    fn sample_model() -> HdcModel {
        let encoded: Vec<IntHv> = (0..3u64)
            .map(|s| IntHv::from(BinaryHv::random_seeded(256, s).expect("dim > 0")))
            .collect();
        HdcModel::fit(&encoded, &[0, 1, 2], 3).expect("valid inputs")
    }

    #[test]
    fn full_model_round_trips() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        let restored = read_model(buf.as_slice()).expect("well-formed stream");
        assert_eq!(model, restored);
    }

    #[test]
    fn quantized_model_round_trips() {
        for bw in [1u8, 2, 4, 8, 16] {
            let q = QuantizedModel::from_model(&sample_model(), bw).expect("valid width");
            let mut buf = Vec::new();
            write_quantized(&q, &mut buf).expect("vec write cannot fail");
            let restored = read_quantized(buf.as_slice()).expect("well-formed stream");
            assert_eq!(q, restored, "bw = {bw}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_model(&b"NOPE...."[..]).expect_err("must fail");
        assert!(matches!(err, ReadModelError::BadMagic));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let q = QuantizedModel::from_model(&sample_model(), 4).expect("valid width");
        let mut buf = Vec::new();
        write_quantized(&q, &mut buf).expect("vec write cannot fail");
        let err = read_model(buf.as_slice()).expect_err("kind mismatch");
        assert!(matches!(err, ReadModelError::WrongKind { .. }));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf.truncate(buf.len() / 2);
        let err = read_model(buf.as_slice()).expect_err("truncated");
        assert!(matches!(err, ReadModelError::Io(_)));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("vec write cannot fail");
        buf[4] = 99; // version byte
        let err = read_model(buf.as_slice()).expect_err("bad version");
        assert!(matches!(err, ReadModelError::UnsupportedVersion(99)));
    }
}
