//! HDC clustering (unsupervised learning on the accelerator, §2.1 / §4.2.3).

use crate::{HdcError, IntHv};

/// Configuration for [`HdcClustering::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdcClusteringSpec {
    /// Number of clusters *k*.
    pub k: usize,
    /// Maximum number of epochs over the data.
    pub max_epochs: usize,
}

impl HdcClusteringSpec {
    /// Creates a spec with the given `k` and a default epoch budget of 20.
    pub fn new(k: usize) -> Self {
        HdcClusteringSpec { k, max_epochs: 20 }
    }

    /// Overrides the epoch budget.
    pub fn with_max_epochs(mut self, max_epochs: usize) -> Self {
        self.max_epochs = max_epochs;
        self
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringOutcome {
    /// Cluster index assigned to each input, in input order.
    pub assignments: Vec<usize>,
    /// Number of epochs actually executed (≤ `max_epochs`).
    pub epochs_run: usize,
    /// Whether assignments stabilized before the epoch budget ran out.
    pub converged: bool,
}

/// HDC clustering in hyperspace.
///
/// ```
/// use generic_hdc::{BinaryHv, HdcClustering, HdcClusteringSpec, IntHv};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// // Two quasi-orthogonal groups of inputs.
/// let encoded: Vec<IntHv> = (0..8)
///     .map(|i| IntHv::from(BinaryHv::random_seeded(512, (i % 2) as u64).expect("dim > 0")))
///     .collect();
/// let (_, outcome) = HdcClustering::fit(&encoded, HdcClusteringSpec::new(2))?;
/// assert_ne!(outcome.assignments[0], outcome.assignments[1]);
/// assert_eq!(outcome.assignments[0], outcome.assignments[2]);
/// # Ok(())
/// # }
/// ```
///
/// Following §2.1 and §4.2.3: the first `k` encoded inputs seed the
/// centroids; each epoch compares every encoded input against the (frozen)
/// centroids with cosine similarity and bundles it into a *copy* centroid;
/// the copies replace the centroids for the next epoch. A copy that
/// received no members keeps the previous centroid so clusters never
/// silently die.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcClustering {
    centroids: Vec<IntHv>,
}

impl HdcClustering {
    /// Clusters `encoded` inputs into `spec.k` groups.
    ///
    /// # Errors
    ///
    /// Returns an error if `encoded` is empty, `k == 0`, `k` exceeds the
    /// number of inputs, or dimensions are inconsistent.
    pub fn fit(
        encoded: &[IntHv],
        spec: HdcClusteringSpec,
    ) -> Result<(Self, ClusteringOutcome), HdcError> {
        if encoded.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if spec.k == 0 {
            return Err(HdcError::invalid("k", "must be positive"));
        }
        if spec.k > encoded.len() {
            return Err(HdcError::invalid(
                "k",
                format!("k = {} exceeds input count {}", spec.k, encoded.len()),
            ));
        }
        let dim = encoded[0].dim();
        if let Some(bad) = encoded.iter().find(|hv| hv.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                expected: dim,
                actual: bad.dim(),
            });
        }

        // §4.2.3: the first k encoded inputs are the initial centroids.
        let mut centroids: Vec<IntHv> = encoded[..spec.k].to_vec();
        let mut assignments = vec![0usize; encoded.len()];
        let mut epochs_run = 0;
        let mut converged = false;

        for _ in 0..spec.max_epochs {
            epochs_run += 1;
            let mut copies: Vec<IntHv> = (0..spec.k)
                .map(|_| IntHv::zeros(dim))
                .collect::<Result<Vec<_>, _>>()?;
            let mut member_counts = vec![0usize; spec.k];
            let mut new_assignments = Vec::with_capacity(encoded.len());
            for hv in encoded {
                let best = nearest_centroid(hv, &centroids);
                copies[best].add_assign(hv)?;
                member_counts[best] += 1;
                new_assignments.push(best);
            }
            // Empty clusters retain the previous centroid.
            for (c, copy) in copies.iter_mut().enumerate() {
                if member_counts[c] == 0 {
                    copy.clone_from(&centroids[c]);
                }
            }
            let stable = new_assignments == assignments && epochs_run > 1;
            assignments = new_assignments;
            centroids = copies;
            if stable {
                converged = true;
                break;
            }
        }

        Ok((
            HdcClustering { centroids },
            ClusteringOutcome {
                assignments,
                epochs_run,
                converged,
            },
        ))
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.centroids[0].dim()
    }

    /// The centroid hypervector of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.k()`.
    pub fn centroid(&self, c: usize) -> &IntHv {
        &self.centroids[c]
    }

    /// Assigns an encoded input to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-dimension query.
    pub fn assign(&self, query: &IntHv) -> Result<usize, HdcError> {
        if query.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: query.dim(),
            });
        }
        Ok(nearest_centroid(query, &self.centroids))
    }
}

fn nearest_centroid(hv: &IntHv, centroids: &[IntHv]) -> usize {
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let score = hv.cosine(centroid).expect("dimensions checked by fit");
        if score > best_score {
            best_score = score;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    /// Three quasi-orthogonal bundles with per-sample noise.
    fn blob_data(dim: usize, per_cluster: usize) -> (Vec<IntHv>, Vec<usize>) {
        let protos: Vec<BinaryHv> = (0..3)
            .map(|i| BinaryHv::random_seeded(dim, 1000 + i).unwrap())
            .collect();
        let mut encoded = Vec::new();
        let mut truth = Vec::new();
        for i in 0..per_cluster {
            for (c, proto) in protos.iter().enumerate() {
                let mut hv = proto.clone();
                for k in 0..dim / 8 {
                    hv.flip_bit((k * 5 + i * 17 + c * 31) % dim);
                }
                encoded.push(IntHv::from(hv));
                truth.push(c);
            }
        }
        (encoded, truth)
    }

    #[test]
    fn recovers_separated_clusters() {
        let (encoded, truth) = blob_data(2048, 12);
        let (_, outcome) = HdcClustering::fit(&encoded, HdcClusteringSpec::new(3)).unwrap();
        let nmi =
            crate::metrics::normalized_mutual_information(&outcome.assignments, &truth).unwrap();
        assert!(nmi > 0.9, "nmi = {nmi}");
    }

    #[test]
    fn converges_on_separable_data() {
        let (encoded, _) = blob_data(1024, 8);
        let (_, outcome) =
            HdcClustering::fit(&encoded, HdcClusteringSpec::new(3).with_max_epochs(30)).unwrap();
        assert!(outcome.converged);
        assert!(outcome.epochs_run < 30);
    }

    #[test]
    fn assignment_count_matches_input() {
        let (encoded, _) = blob_data(512, 4);
        let (model, outcome) = HdcClustering::fit(&encoded, HdcClusteringSpec::new(3)).unwrap();
        assert_eq!(outcome.assignments.len(), encoded.len());
        assert!(outcome.assignments.iter().all(|&a| a < model.k()));
    }

    #[test]
    fn assign_matches_fit_assignments() {
        let (encoded, _) = blob_data(512, 6);
        let (model, outcome) = HdcClustering::fit(&encoded, HdcClusteringSpec::new(3)).unwrap();
        // After convergence the stored centroids reproduce the assignments.
        if outcome.converged {
            for (hv, &a) in encoded.iter().zip(&outcome.assignments) {
                assert_eq!(model.assign(hv).unwrap(), a);
            }
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (encoded, _) = blob_data(256, 2);
        assert!(HdcClustering::fit(&[], HdcClusteringSpec::new(2)).is_err());
        assert!(HdcClustering::fit(&encoded, HdcClusteringSpec::new(0)).is_err());
        assert!(HdcClustering::fit(&encoded, HdcClusteringSpec::new(encoded.len() + 1)).is_err());
    }

    #[test]
    fn k_equals_n_is_degenerate_but_valid() {
        let (encoded, _) = blob_data(256, 1);
        let (model, outcome) =
            HdcClustering::fit(&encoded, HdcClusteringSpec::new(encoded.len())).unwrap();
        assert_eq!(model.k(), encoded.len());
        assert_eq!(outcome.assignments.len(), encoded.len());
    }
}
